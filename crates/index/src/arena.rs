//! Columnar RCC arena: struct-of-arrays storage for the RCC table.
//!
//! The row-oriented `Rcc` struct interleaves every attribute (dates, SWLIN,
//! amount, type) in one ~40-byte record, so a Status Query aggregation that
//! only touches amounts and durations still drags whole records through the
//! cache. The arena stores each attribute in its own contiguous column —
//! ids, avail, type, SWLIN (interned to a dense `u32` symbol), created /
//! settled as `i32` day offsets from a common base date, settled amount,
//! and the logical projection (`t*_start`, `t*_end` of Equation 1) — so hot
//! loops stream exactly the columns they need and indexes hold `u32` row
//! ids into the arena instead of owned or cloned records.
//!
//! Bit-identity contract: the logical positions stored here are the *same*
//! `f64` values [`project_dataset`] produces (they are taken verbatim, or
//! computed with the identical `domd_data::logical_time` call on `push`),
//! and `duration(row)` reproduces `f64::from(rcc.duration_days())` exactly
//! because day offsets subtract to the same integer.

use crate::types::{HeapSize, LogicalRcc, RowId};
use domd_data::avail::{Avail, AvailId};
use domd_data::dataset::Dataset;
use domd_data::date::Date;
use domd_data::hash::FxHashMap;
use domd_data::rcc::{Rcc, RccType, Swlin};

use crate::types::project_dataset;

/// Struct-of-arrays RCC table with interned SWLINs and day-offset dates.
#[derive(Debug, Clone)]
pub struct RccArena {
    /// Base date; `created`/`settled` are day offsets from it.
    base: Date,
    /// External RCC identifier per row.
    rcc_ids: Vec<u32>,
    /// Owning avail per row.
    avails: Vec<AvailId>,
    /// RCC category per row (1 byte each).
    types: Vec<RccType>,
    /// Interned SWLIN symbol per row; index into `swlin_table`.
    swlin_syms: Vec<u32>,
    /// Symbol → packed 8-digit SWLIN code.
    swlin_table: Vec<u32>,
    /// Packed SWLIN code → symbol (the interner).
    intern: FxHashMap<u32, u32>,
    /// Creation date as days since `base` (may be negative).
    created: Vec<i32>,
    /// Settled date as days since `base`.
    settled: Vec<i32>,
    /// Settled amount ($) per row.
    amounts: Vec<f64>,
    /// Logical creation position `t*_start` (Equation 1).
    starts: Vec<f64>,
    /// Logical settlement position `t*_end`.
    ends: Vec<f64>,
}

impl RccArena {
    /// Builds the arena for `dataset`, computing the logical projection
    /// itself (identical to [`project_dataset`]).
    pub fn from_dataset(dataset: &Dataset) -> Self {
        let projected = project_dataset(dataset);
        Self::from_projected(dataset, &projected)
    }

    /// Builds the arena for `dataset` taking logical positions verbatim
    /// from `projected` (`projected[i]` must describe `dataset.rccs()[i]`),
    /// so arena-backed paths are bit-identical to record-backed ones no
    /// matter how the caller produced the projection.
    pub fn from_projected(dataset: &Dataset, projected: &[LogicalRcc]) -> Self {
        let rccs = dataset.rccs();
        assert_eq!(rccs.len(), projected.len(), "projection must cover the RCC table");
        let base = rccs.iter().map(|r| r.created).min().unwrap_or(Date::from_days(0));
        let mut arena = RccArena {
            base,
            rcc_ids: Vec::with_capacity(rccs.len()),
            avails: Vec::with_capacity(rccs.len()),
            types: Vec::with_capacity(rccs.len()),
            swlin_syms: Vec::with_capacity(rccs.len()),
            swlin_table: Vec::new(),
            intern: FxHashMap::default(),
            created: Vec::with_capacity(rccs.len()),
            settled: Vec::with_capacity(rccs.len()),
            amounts: Vec::with_capacity(rccs.len()),
            starts: Vec::with_capacity(rccs.len()),
            ends: Vec::with_capacity(rccs.len()),
        };
        for (r, lr) in rccs.iter().zip(projected) {
            arena.push_columns(r, lr.start, lr.end);
        }
        arena
    }

    /// Appends one RCC, computing its logical projection from `avail`
    /// exactly as [`project_dataset`] does. Returns the new dense row id.
    pub fn push(&mut self, rcc: &Rcc, avail: &Avail) -> RowId {
        assert_eq!(rcc.avail, avail.id, "RCC must reference the given avail");
        let planned = avail.planned_duration().max(1);
        let start = domd_data::logical_time(rcc.created, avail.actual_start, planned);
        let end = domd_data::logical_time(rcc.settled, avail.actual_start, planned);
        self.push_columns(rcc, start, end)
    }

    fn push_columns(&mut self, r: &Rcc, start: f64, end: f64) -> RowId {
        let row = self.len() as RowId;
        let packed = r.swlin.packed();
        let sym = match self.intern.get(&packed) {
            Some(&s) => s,
            None => {
                let s = self.swlin_table.len() as u32;
                self.swlin_table.push(packed);
                self.intern.insert(packed, s);
                s
            }
        };
        self.rcc_ids.push(r.id.0);
        self.avails.push(r.avail);
        self.types.push(r.rcc_type);
        self.swlin_syms.push(sym);
        self.created.push(r.created - self.base);
        self.settled.push(r.settled - self.base);
        self.amounts.push(r.amount);
        self.starts.push(start);
        self.ends.push(end);
        row
    }

    /// Re-settles `row` at `settled`, recomputing the logical end with the
    /// identical `domd_data::logical_time` call [`Self::push`] uses, so a
    /// settled row is bit-identical to one freshly pushed with that date.
    /// Returns the row's *old* logical record (the index entry a maintainer
    /// must retire before inserting [`Self::logical`] of the new state).
    pub fn settle(&mut self, row: RowId, settled: Date, avail: &Avail) -> LogicalRcc {
        assert_eq!(self.avails[row as usize], avail.id, "row must belong to the given avail");
        let old = self.logical(row);
        let planned = avail.planned_duration().max(1);
        self.settled[row as usize] = settled - self.base;
        self.ends[row as usize] = domd_data::logical_time(settled, avail.actual_start, planned);
        old
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        self.amounts.len()
    }

    /// True when the arena holds no rows.
    pub fn is_empty(&self) -> bool {
        self.amounts.is_empty()
    }

    /// Number of distinct SWLIN codes interned.
    pub fn n_symbols(&self) -> usize {
        self.swlin_table.len()
    }

    /// External RCC identifier of `row`.
    pub fn rcc_id(&self, row: RowId) -> u32 {
        self.rcc_ids[row as usize]
    }

    /// Owning avail of `row`.
    pub fn avail(&self, row: RowId) -> AvailId {
        self.avails[row as usize]
    }

    /// RCC category of `row`.
    pub fn rcc_type(&self, row: RowId) -> RccType {
        self.types[row as usize]
    }

    /// SWLIN code of `row`, reconstructed from the intern table.
    pub fn swlin(&self, row: RowId) -> Swlin {
        Swlin::from_packed(self.swlin_table[self.swlin_syms[row as usize] as usize])
            // domd-lint: allow(no-panic) — the intern table only ever stores packed codes of validated SWLINs
            .expect("interned SWLINs are valid")
    }

    /// Interned SWLIN symbol of `row`.
    pub fn swlin_sym(&self, row: RowId) -> u32 {
        self.swlin_syms[row as usize]
    }

    /// Creation date of `row`.
    pub fn created(&self, row: RowId) -> Date {
        self.base + self.created[row as usize]
    }

    /// Settled date of `row`.
    pub fn settled(&self, row: RowId) -> Date {
        self.base + self.settled[row as usize]
    }

    /// Settled amount ($) of `row`.
    pub fn amount(&self, row: RowId) -> f64 {
        self.amounts[row as usize]
    }

    /// Duration in days of `row` as `f64`; bit-identical to
    /// `f64::from(rcc.duration_days())` because the day offsets subtract to
    /// the same integer.
    pub fn duration(&self, row: RowId) -> f64 {
        f64::from(self.settled[row as usize] - self.created[row as usize])
    }

    /// Logical creation position of `row`.
    pub fn start(&self, row: RowId) -> f64 {
        self.starts[row as usize]
    }

    /// Logical settlement position of `row`.
    pub fn end(&self, row: RowId) -> f64 {
        self.ends[row as usize]
    }

    /// The full logical projection record of `row`.
    pub fn logical(&self, row: RowId) -> LogicalRcc {
        LogicalRcc {
            id: row,
            avail: self.avails[row as usize],
            start: self.starts[row as usize],
            end: self.ends[row as usize],
        }
    }

    /// Settled-amount column.
    pub fn amounts(&self) -> &[f64] {
        &self.amounts
    }

    /// Logical-start column.
    pub fn starts(&self) -> &[f64] {
        &self.starts
    }

    /// Logical-end column.
    pub fn ends(&self) -> &[f64] {
        &self.ends
    }

    /// RCC-category column.
    pub fn types(&self) -> &[RccType] {
        &self.types
    }

    /// Owning-avail column.
    pub fn avails(&self) -> &[AvailId] {
        &self.avails
    }

    /// Materializes the projection records (for `LogicalTimeIndex::build`).
    pub fn projected(&self) -> Vec<LogicalRcc> {
        (0..self.len() as RowId).map(|row| self.logical(row)).collect()
    }

    /// Iterator over `(type, row)` pairs for group-tree construction.
    pub fn type_rows(&self) -> impl Iterator<Item = (RccType, RowId)> + '_ {
        self.types.iter().enumerate().map(|(i, &t)| (t, i as RowId))
    }

    /// Iterator over `(swlin, row)` pairs for group-tree construction.
    pub fn swlin_rows(&self) -> impl Iterator<Item = (Swlin, RowId)> + '_ {
        self.swlin_syms.iter().enumerate().map(|(i, &s)| {
            let w = Swlin::from_packed(self.swlin_table[s as usize])
                // domd-lint: allow(no-panic) — the intern table only ever stores packed codes of validated SWLINs
                .expect("interned SWLINs are valid");
            (w, i as RowId)
        })
    }
}

impl HeapSize for RccArena {
    fn heap_bytes(&self) -> usize {
        self.rcc_ids.heap_bytes()
            + self.avails.heap_bytes()
            + self.types.capacity() * std::mem::size_of::<RccType>()
            + self.swlin_syms.heap_bytes()
            + self.swlin_table.heap_bytes()
            + self.intern.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.created.heap_bytes()
            + self.settled.heap_bytes()
            + self.amounts.heap_bytes()
            + self.starts.heap_bytes()
            + self.ends.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domd_data::{generate, GeneratorConfig};

    fn dataset() -> Dataset {
        generate(&GeneratorConfig { n_avails: 10, target_rccs: 800, scale: 1, seed: 21 })
    }

    #[test]
    fn columns_match_records() {
        let ds = dataset();
        let arena = RccArena::from_dataset(&ds);
        assert_eq!(arena.len(), ds.rccs().len());
        for (i, r) in ds.rccs().iter().enumerate() {
            let row = i as RowId;
            assert_eq!(arena.rcc_id(row), r.id.0);
            assert_eq!(arena.avail(row), r.avail);
            assert_eq!(arena.rcc_type(row), r.rcc_type);
            assert_eq!(arena.swlin(row), r.swlin);
            assert_eq!(arena.created(row), r.created);
            assert_eq!(arena.settled(row), r.settled);
            assert_eq!(arena.amount(row).to_bits(), r.amount.to_bits());
            assert_eq!(arena.duration(row).to_bits(), f64::from(r.duration_days()).to_bits());
        }
    }

    #[test]
    fn projection_is_bit_identical() {
        let ds = dataset();
        let proj = project_dataset(&ds);
        let arena = RccArena::from_projected(&ds, &proj);
        for (row, lr) in proj.iter().enumerate() {
            let got = arena.logical(row as RowId);
            assert_eq!(got.id, lr.id);
            assert_eq!(got.avail, lr.avail);
            assert_eq!(got.start.to_bits(), lr.start.to_bits());
            assert_eq!(got.end.to_bits(), lr.end.to_bits());
        }
        assert_eq!(arena.projected().len(), proj.len());
    }

    #[test]
    fn interning_dedupes_swlins() {
        let ds = dataset();
        let mut arena = RccArena::from_dataset(&ds);
        let mut distinct: Vec<u32> = ds.rccs().iter().map(|r| r.swlin.packed()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(arena.n_symbols(), distinct.len());

        // Re-pushing existing rows must reuse their interned symbols.
        let before = arena.n_symbols();
        for r in ds.rccs().iter().take(50) {
            let a = ds.avail(r.avail).expect("avail exists");
            arena.push(r, a);
        }
        assert_eq!(arena.n_symbols(), before, "duplicate SWLINs must not re-intern");
        assert_eq!(arena.len(), ds.rccs().len() + 50);
    }

    #[test]
    fn push_matches_from_dataset() {
        let ds = dataset();
        let bulk = RccArena::from_dataset(&ds);
        let mut grown = RccArena::from_projected(
            &Dataset::default(),
            &[],
        );
        // Same base as the bulk arena so day offsets agree.
        grown.base = bulk.base;
        for r in ds.rccs() {
            let a = ds.avail(r.avail).expect("avail exists");
            grown.push(r, a);
        }
        assert_eq!(grown.len(), bulk.len());
        for row in 0..bulk.len() as RowId {
            assert_eq!(grown.created(row), bulk.created(row));
            assert_eq!(grown.start(row).to_bits(), bulk.start(row).to_bits());
            assert_eq!(grown.end(row).to_bits(), bulk.end(row).to_bits());
        }
    }

    #[test]
    fn empty_arena() {
        let arena = RccArena::from_dataset(&Dataset::default());
        assert!(arena.is_empty());
        assert_eq!(arena.n_symbols(), 0);
        assert!(arena.projected().is_empty());
    }

    #[test]
    fn heap_bytes_counts_every_column() {
        let ds = dataset();
        let arena = RccArena::from_dataset(&ds);
        let n = arena.len();
        // Lower bound: the nine per-row columns alone.
        let per_row = 4 + 4 + 1 + 4 + 4 + 4 + 8 + 8 + 8;
        assert!(arena.heap_bytes() >= n * per_row, "heap accounting misses columns");
    }
}
