//! Dual-AVL-tree index (Section 4.1).
//!
//! The paper's AVL design keeps two self-balancing binary search trees —
//! one keyed on RCC logical *start* positions, one on logical *end*
//! positions — so both Status Query predicates (`creation_date <= t*`,
//! `settled_date <= t*`) are prefix range scans. Each node also carries the
//! opposite endpoint so the stab query (active set) is a filtered range
//! scan without a second lookup.
//!
//! The tree is arena-backed (`Vec<Node>` with `u32` child indices): no
//! per-node allocation, compact memory (relevant to Table 6), and O(log n)
//! insert/delete for the dynamic-maintenance story of Section 4.1.

use crate::traits::{LogicalTimeIndex, MaintainableIndex};
use crate::types::{HeapSize, LogicalRcc, RowId};

const NIL: u32 = u32::MAX;

/// One arena node of an AVL tree keyed by `(key, id)`.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Sort key: logical start (start tree) or logical end (end tree).
    key: f64,
    /// The opposite endpoint, carried so stab queries need no second tree.
    other: f64,
    /// RCC row id; also the key tiebreaker, making keys unique.
    id: RowId,
    left: u32,
    right: u32,
    height: u8,
}

/// An AVL tree over `(key, id)` pairs with payload `other`.
#[derive(Debug, Clone)]
pub struct AvlTree {
    nodes: Vec<Node>,
    root: u32,
    /// Arena slots freed by `remove`, reused by `insert`.
    free: Vec<u32>,
    len: usize,
    /// True while the arena is in in-order (sorted-by-key) layout — set by
    /// [`AvlTree::build_from_sorted`], cleared by any mutation. Range scans
    /// then run as sequential slice iterations instead of pointer chasing.
    sorted_layout: bool,
}

impl Default for AvlTree {
    fn default() -> Self {
        AvlTree::new()
    }
}

impl AvlTree {
    /// An empty tree.
    pub fn new() -> Self {
        AvlTree { nodes: Vec::new(), root: NIL, free: Vec::new(), len: 0, sorted_layout: false }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn height(&self, n: u32) -> i32 {
        if n == NIL {
            0
        } else {
            i32::from(self.nodes[n as usize].height)
        }
    }

    fn update_height(&mut self, n: u32) {
        let h = 1 + self.height(self.nodes[n as usize].left).max(self.height(self.nodes[n as usize].right));
        self.nodes[n as usize].height = h as u8;
    }

    fn balance_factor(&self, n: u32) -> i32 {
        self.height(self.nodes[n as usize].left) - self.height(self.nodes[n as usize].right)
    }

    fn rotate_right(&mut self, y: u32) -> u32 {
        let x = self.nodes[y as usize].left;
        let t2 = self.nodes[x as usize].right;
        self.nodes[x as usize].right = y;
        self.nodes[y as usize].left = t2;
        self.update_height(y);
        self.update_height(x);
        x
    }

    fn rotate_left(&mut self, x: u32) -> u32 {
        let y = self.nodes[x as usize].right;
        let t2 = self.nodes[y as usize].left;
        self.nodes[y as usize].left = x;
        self.nodes[x as usize].right = t2;
        self.update_height(x);
        self.update_height(y);
        y
    }

    fn rebalance(&mut self, n: u32) -> u32 {
        self.update_height(n);
        let bf = self.balance_factor(n);
        if bf > 1 {
            if self.balance_factor(self.nodes[n as usize].left) < 0 {
                let l = self.nodes[n as usize].left;
                self.nodes[n as usize].left = self.rotate_left(l);
            }
            self.rotate_right(n)
        } else if bf < -1 {
            if self.balance_factor(self.nodes[n as usize].right) > 0 {
                let r = self.nodes[n as usize].right;
                self.nodes[n as usize].right = self.rotate_right(r);
            }
            self.rotate_left(n)
        } else {
            n
        }
    }

    fn key_lt(a: (f64, RowId), b: (f64, RowId)) -> bool {
        match a.0.total_cmp(&b.0) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a.1 < b.1,
        }
    }

    fn alloc(&mut self, key: f64, other: f64, id: RowId) -> u32 {
        let node = Node { key, other, id, left: NIL, right: NIL, height: 1 };
        if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = node;
            slot
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Inserts `(key, id)` with payload `other`. Duplicate `(key, id)` pairs
    /// are rejected (returns `false`).
    pub fn insert(&mut self, key: f64, other: f64, id: RowId) -> bool {
        fn rec(tree: &mut AvlTree, n: u32, key: f64, other: f64, id: RowId) -> (u32, bool) {
            if n == NIL {
                let slot = tree.alloc(key, other, id);
                return (slot, true);
            }
            let nk = (tree.nodes[n as usize].key, tree.nodes[n as usize].id);
            if (key, id) == nk {
                return (n, false);
            }
            let inserted;
            if AvlTree::key_lt((key, id), nk) {
                let (child, ok) = rec(tree, tree.nodes[n as usize].left, key, other, id);
                tree.nodes[n as usize].left = child;
                inserted = ok;
            } else {
                let (child, ok) = rec(tree, tree.nodes[n as usize].right, key, other, id);
                tree.nodes[n as usize].right = child;
                inserted = ok;
            }
            (tree.rebalance(n), inserted)
        }
        let (root, ok) = rec(self, self.root, key, other, id);
        self.root = root;
        if ok {
            self.len += 1;
            self.sorted_layout = false;
        }
        ok
    }

    /// Removes `(key, id)`; returns `false` when absent.
    pub fn remove(&mut self, key: f64, id: RowId) -> bool {
        fn min_node(tree: &AvlTree, mut n: u32) -> u32 {
            while tree.nodes[n as usize].left != NIL {
                n = tree.nodes[n as usize].left;
            }
            n
        }
        fn rec(tree: &mut AvlTree, n: u32, key: f64, id: RowId) -> (u32, bool) {
            if n == NIL {
                return (NIL, false);
            }
            let nk = (tree.nodes[n as usize].key, tree.nodes[n as usize].id);
            let removed;
            if (key, id) == nk {
                let (l, r) = (tree.nodes[n as usize].left, tree.nodes[n as usize].right);
                let replacement = if l == NIL || r == NIL {
                    tree.free.push(n);
                    if l == NIL {
                        r
                    } else {
                        l
                    }
                } else {
                    // Two children: splice in the in-order successor.
                    let succ = min_node(tree, r);
                    let (sk, so, sid) = {
                        let s = &tree.nodes[succ as usize];
                        (s.key, s.other, s.id)
                    };
                    let (new_r, _) = rec(tree, r, sk, sid);
                    tree.nodes[n as usize].key = sk;
                    tree.nodes[n as usize].other = so;
                    tree.nodes[n as usize].id = sid;
                    tree.nodes[n as usize].right = new_r;
                    n
                };
                if replacement == NIL {
                    return (NIL, true);
                }
                return (tree.rebalance(replacement), true);
            }
            if AvlTree::key_lt((key, id), nk) {
                let (child, ok) = rec(tree, tree.nodes[n as usize].left, key, id);
                tree.nodes[n as usize].left = child;
                removed = ok;
            } else {
                let (child, ok) = rec(tree, tree.nodes[n as usize].right, key, id);
                tree.nodes[n as usize].right = child;
                removed = ok;
            }
            (tree.rebalance(n), removed)
        }
        let (root, ok) = rec(self, self.root, key, id);
        self.root = root;
        if ok {
            self.len -= 1;
            self.sorted_layout = false;
        }
        ok
    }

    /// Visits every entry with `key <= bound` (subtree-pruned in-order walk;
    /// a sequential slice scan while the arena is in sorted layout).
    pub fn for_each_leq<F: FnMut(f64, f64, RowId)>(&self, bound: f64, f: &mut F) {
        if self.sorted_layout {
            let end = self.nodes.partition_point(|n| n.key <= bound);
            for n in &self.nodes[..end] {
                f(n.key, n.other, n.id);
            }
            return;
        }
        fn rec<F: FnMut(f64, f64, RowId)>(tree: &AvlTree, n: u32, bound: f64, f: &mut F) {
            if n == NIL {
                return;
            }
            let node = tree.nodes[n as usize];
            if node.key <= bound {
                rec(tree, node.left, bound, f);
                f(node.key, node.other, node.id);
                rec(tree, node.right, bound, f);
            } else {
                // Entire right subtree exceeds the bound.
                rec(tree, node.left, bound, f);
            }
        }
        rec(self, self.root, bound, f);
    }

    /// Visits every entry with `lo < key <= hi` — the incremental-window
    /// scan used when advancing the logical timeline by one step. Runs as a
    /// sequential slice scan while the arena is in sorted layout.
    pub fn for_each_in<F: FnMut(f64, f64, RowId)>(&self, lo: f64, hi: f64, f: &mut F) {
        if self.sorted_layout {
            let start = self.nodes.partition_point(|n| n.key <= lo);
            let end = start + self.nodes[start..].partition_point(|n| n.key <= hi);
            for n in &self.nodes[start..end] {
                f(n.key, n.other, n.id);
            }
            return;
        }
        fn rec<F: FnMut(f64, f64, RowId)>(tree: &AvlTree, n: u32, lo: f64, hi: f64, f: &mut F) {
            if n == NIL {
                return;
            }
            let node = tree.nodes[n as usize];
            if node.key > lo {
                rec(tree, node.left, lo, hi, f);
            }
            if node.key > lo && node.key <= hi {
                f(node.key, node.other, node.id);
            }
            if node.key <= hi {
                rec(tree, node.right, lo, hi, f);
            }
        }
        rec(self, self.root, lo, hi, f);
    }

    /// Maximum node depth (testing hook: must stay O(log n)).
    pub fn depth(&self) -> usize {
        self.height(self.root) as usize
    }

    /// Total arena slots (live + freed); a stable value across balanced
    /// remove/insert churn shows slot reuse.
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Bulk-builds a perfectly balanced tree from entries pre-sorted by
    /// `(key, id)`. Nodes land at their *in-order* arena positions, so the
    /// pruned range scans of [`AvlTree::for_each_leq`] /
    /// [`AvlTree::for_each_in`] walk memory almost sequentially — the
    /// locality that makes the incremental sweep fast. O(n) after the
    /// caller's O(n log n) sort; this is why index creation is an order of
    /// magnitude cheaper than per-insert construction (Figure 5a).
    pub fn build_from_sorted(entries: &[(f64, f64, RowId)]) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| (w[0].0, w[0].2) < (w[1].0, w[1].2)),
            "entries must be strictly sorted by (key, id)"
        );
        let n = entries.len();
        let mut nodes = Vec::with_capacity(n);
        nodes.extend(entries.iter().map(|&(key, other, id)| Node {
            key,
            other,
            id,
            left: NIL,
            right: NIL,
            height: 1,
        }));
        let mut tree =
            AvlTree { nodes, root: NIL, free: Vec::new(), len: n, sorted_layout: true };

        /// Wires up `lo..hi` (exclusive) and returns (root index, height).
        fn rec(nodes: &mut [Node], lo: usize, hi: usize) -> (u32, u8) {
            if lo >= hi {
                return (NIL, 0);
            }
            let mid = lo + (hi - lo) / 2;
            let (l, hl) = rec(nodes, lo, mid);
            let (r, hr) = rec(nodes, mid + 1, hi);
            nodes[mid].left = l;
            nodes[mid].right = r;
            let h = 1 + hl.max(hr);
            nodes[mid].height = h;
            (mid as u32, h)
        }
        let (root, _) = rec(&mut tree.nodes, 0, n);
        tree.root = root;
        tree
    }
}

impl HeapSize for AvlTree {
    fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }
}

/// The dual-AVL logical-time index of Section 4.1.
#[derive(Debug, Clone, Default)]
pub struct AvlIndex {
    /// Keyed on logical start; `other` is the logical end.
    starts: AvlTree,
    /// Keyed on logical end; `other` is the logical start.
    ends: AvlTree,
    /// Bumped by every successful dynamic mutation; see [`AvlIndex::epoch`].
    epoch: u64,
}

impl AvlIndex {
    /// Inserts one RCC into both trees (O(log n) each), bumping the epoch.
    pub fn insert(&mut self, rcc: &LogicalRcc) -> bool {
        let a = self.starts.insert(rcc.start, rcc.end, rcc.id);
        let b = self.ends.insert(rcc.end, rcc.start, rcc.id);
        debug_assert_eq!(a, b, "trees must stay in lockstep");
        if a && b {
            self.epoch += 1;
        }
        a && b
    }

    /// Removes one RCC from both trees (O(log n) each), bumping the epoch.
    pub fn remove(&mut self, rcc: &LogicalRcc) -> bool {
        let a = self.starts.remove(rcc.start, rcc.id);
        let b = self.ends.remove(rcc.end, rcc.id);
        debug_assert_eq!(a, b, "trees must stay in lockstep");
        if a && b {
            self.epoch += 1;
        }
        a && b
    }

    /// Monotone mutation counter: snapshots cached under an older epoch are
    /// stale and must never be served (the cache keys on this value).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Visits RCCs *created* in the window `lo < start <= hi`, passing
    /// `(start, end, id)`. Drives incremental computation (Section 4.3).
    pub fn for_each_created_in<F: FnMut(f64, f64, RowId)>(&self, lo: f64, hi: f64, mut f: F) {
        self.starts.for_each_in(lo, hi, &mut |k, o, id| f(k, o, id));
    }

    /// Visits RCCs *settled* in the window `lo < end <= hi`, passing
    /// `(start, end, id)`.
    pub fn for_each_settled_in<F: FnMut(f64, f64, RowId)>(&self, lo: f64, hi: f64, mut f: F) {
        self.ends.for_each_in(lo, hi, &mut |k, o, id| f(o, k, id));
    }

    /// Testing/inspection hook: depths of the two trees.
    pub fn depths(&self) -> (usize, usize) {
        (self.starts.depth(), self.ends.depth())
    }

    /// Testing/inspection hook: arena sizes of the two trees.
    pub fn arena_lens(&self) -> (usize, usize) {
        (self.starts.arena_len(), self.ends.arena_len())
    }
}

impl crate::traits::EventRangeScan for AvlIndex {
    fn scan_created_in(&self, lo: f64, hi: f64, f: &mut dyn FnMut(f64, f64, RowId)) {
        self.for_each_created_in(lo, hi, f);
    }

    fn scan_settled_in(&self, lo: f64, hi: f64, f: &mut dyn FnMut(f64, f64, RowId)) {
        self.for_each_settled_in(lo, hi, f);
    }
}

impl HeapSize for AvlIndex {
    fn heap_bytes(&self) -> usize {
        self.starts.heap_bytes() + self.ends.heap_bytes()
    }
}

impl LogicalTimeIndex for AvlIndex {
    fn name(&self) -> &'static str {
        "avl"
    }

    fn build(rccs: &[LogicalRcc]) -> Self {
        // Bulk path: sort once per tree, then O(n) balanced construction
        // with in-order arena layout. `insert`/`remove` keep the trees
        // maintainable afterwards.
        let mut by_start: Vec<(f64, f64, RowId)> =
            rccs.iter().map(|r| (r.start, r.end, r.id)).collect();
        by_start.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        let mut by_end: Vec<(f64, f64, RowId)> =
            rccs.iter().map(|r| (r.end, r.start, r.id)).collect();
        by_end.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        AvlIndex {
            starts: AvlTree::build_from_sorted(&by_start),
            ends: AvlTree::build_from_sorted(&by_end),
            epoch: 0,
        }
    }

    fn len(&self) -> usize {
        self.starts.len()
    }

    fn active_at(&self, t_star: f64) -> Vec<RowId> {
        // Range scan on the start tree, filtering on the carried end.
        let mut out = Vec::new();
        self.starts.for_each_leq(t_star, &mut |_start, end, id| {
            if end > t_star {
                out.push(id);
            }
        });
        out.sort_unstable();
        out
    }

    fn settled_by(&self, t_star: f64) -> Vec<RowId> {
        let mut out = Vec::new();
        self.ends.for_each_leq(t_star, &mut |_end, _start, id| out.push(id));
        out.sort_unstable();
        out
    }

    fn created_by(&self, t_star: f64) -> Vec<RowId> {
        let mut out = Vec::new();
        self.starts.for_each_leq(t_star, &mut |_s, _e, id| out.push(id));
        out.sort_unstable();
        out
    }
}

impl MaintainableIndex for AvlIndex {
    fn insert_logical(&mut self, rcc: &LogicalRcc) -> bool {
        self.insert(rcc)
    }

    fn remove_logical(&mut self, rcc: &LogicalRcc) -> bool {
        self.remove(rcc)
    }

    fn current_epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rcc(id: RowId, start: f64, end: f64) -> LogicalRcc {
        LogicalRcc { id, avail: domd_data::AvailId(1), start, end }
    }

    #[test]
    fn insert_and_query_small() {
        let rs = [rcc(0, 0.0, 30.0), rcc(1, 10.0, 50.0), rcc(2, 40.0, 90.0), rcc(3, 95.0, 120.0)];
        let idx = AvlIndex::build(&rs);
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.active_at(20.0), vec![0, 1]);
        assert_eq!(idx.settled_by(20.0), Vec::<RowId>::new());
        assert_eq!(idx.created_by(20.0), vec![0, 1]);
        assert_eq!(idx.not_created_by(20.0), vec![2, 3]);
        assert_eq!(idx.active_at(50.0), vec![2]); // 1 settles exactly at 50
        assert_eq!(idx.settled_by(50.0), vec![0, 1]);
        assert_eq!(idx.created_by(100.0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut idx = AvlIndex::default();
        assert!(idx.insert(&rcc(7, 1.0, 2.0)));
        assert!(!idx.insert(&rcc(7, 1.0, 2.0)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn remove_then_query() {
        let rs: Vec<LogicalRcc> =
            (0..100).map(|i| rcc(i, i as f64, i as f64 + 10.0)).collect();
        let mut idx = AvlIndex::build(&rs);
        for r in rs.iter().step_by(2) {
            assert!(idx.remove(r));
        }
        assert_eq!(idx.len(), 50);
        assert!(!idx.remove(&rs[0]), "double remove must fail");
        let act = idx.active_at(15.0);
        // Remaining odd ids with start <= 15 < end: 7,9,11,13,15.
        assert_eq!(act, vec![7, 9, 11, 13, 15]);
    }

    #[test]
    fn balanced_depth_under_sequential_inserts() {
        let rs: Vec<LogicalRcc> =
            (0..4096).map(|i| rcc(i, i as f64 * 0.01, i as f64 * 0.01 + 5.0)).collect();
        let idx = AvlIndex::build(&rs);
        let (ds, de) = idx.depths();
        // AVL bound: height <= 1.44 log2(n+2); for 4096 that's ~18.
        assert!(ds <= 18 && de <= 18, "depths ({ds}, {de}) exceed AVL bound");
    }

    #[test]
    fn arena_slots_reused_after_remove() {
        let mut idx = AvlIndex::default();
        for i in 0..100 {
            idx.insert(&rcc(i, i as f64, i as f64 + 1.0));
        }
        let arena_before = idx.arena_lens();
        for i in 0..50 {
            idx.remove(&rcc(i, i as f64, i as f64 + 1.0));
        }
        for i in 100..150 {
            idx.insert(&rcc(i, i as f64, i as f64 + 1.0));
        }
        assert_eq!(idx.len(), 100);
        assert_eq!(idx.arena_lens(), arena_before, "freed slots must be reused");
    }

    #[test]
    fn window_scan_matches_filter() {
        let rs: Vec<LogicalRcc> =
            (0..500).map(|i| rcc(i, (i % 97) as f64, (i % 97) as f64 + (i % 13) as f64 + 1.0)).collect();
        let idx = AvlIndex::build(&rs);
        let mut got = Vec::new();
        idx.for_each_created_in(20.0, 40.0, |s, e, id| {
            assert!(s > 20.0 && s <= 40.0);
            assert!(e > s);
            got.push(id);
        });
        got.sort_unstable();
        let mut want: Vec<RowId> =
            rs.iter().filter(|r| r.start > 20.0 && r.start <= 40.0).map(|r| r.id).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn settled_window_scan_matches_filter() {
        let rs: Vec<LogicalRcc> =
            (0..500).map(|i| rcc(i, (i % 89) as f64, (i % 89) as f64 + (i % 17) as f64 + 1.0)).collect();
        let idx = AvlIndex::build(&rs);
        let mut got = Vec::new();
        idx.for_each_settled_in(30.0, 60.0, |s, e, id| {
            assert!(e > 30.0 && e <= 60.0);
            assert!(s < e);
            got.push(id);
        });
        got.sort_unstable();
        let mut want: Vec<RowId> =
            rs.iter().filter(|r| r.end > 30.0 && r.end <= 60.0).map(|r| r.id).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
