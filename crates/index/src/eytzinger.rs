//! Eytzinger (implicit BFS) event-array index — the cache-friendly search
//! variant of [`crate::sorted_array::SortedArrayIndex`].
//!
//! A classic binary search over a sorted array hops across the array with a
//! cache miss per probe. The Eytzinger layout stores the same keys in
//! breadth-first heap order (`children of slot k at 2k and 2k+1`), so the
//! first few levels of every search share a handful of cache lines and the
//! descent is a tight multiply-and-add loop with no unpredictable pointer
//! loads. Each search slot carries its in-order rank, so the descent
//! directly yields a *prefix length* into struct-of-arrays in-order columns
//! (`keys`, `ids`), which the retrieval scans then stream sequentially —
//! search in BFS order, scan in sorted order.
//!
//! Like the sorted array this is a static design: creation is two sorts,
//! queries are search + prefix scan, and there is no O(log n) maintenance.

use crate::traits::LogicalTimeIndex;
use crate::types::{HeapSize, LogicalRcc, RowId};

/// One event set: in-order key/id columns plus the implicit search tree.
#[derive(Debug, Clone, Default)]
struct EventColumn {
    /// Event positions ascending by `(key, id)`.
    keys: Vec<f64>,
    /// Row id of each event, parallel to `keys`.
    ids: Vec<RowId>,
    /// `keys` rearranged into 1-based BFS (Eytzinger) order; slot 0 unused.
    eyt: Vec<f64>,
    /// In-order rank of each Eytzinger slot (parallel to `eyt`).
    rank: Vec<u32>,
}

impl EventColumn {
    fn build(mut events: Vec<(f64, RowId)>) -> Self {
        events.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let n = events.len();
        let keys: Vec<f64> = events.iter().map(|e| e.0).collect();
        let ids: Vec<RowId> = events.iter().map(|e| e.1).collect();
        let mut eyt = vec![0.0; n + 1];
        let mut rank = vec![0u32; n + 1];

        /// In-order walk of the implicit tree assigning sorted keys to BFS
        /// slots (slot `k` has children `2k` / `2k+1`).
        fn fill(keys: &[f64], eyt: &mut [f64], rank: &mut [u32], k: usize, next: &mut usize) {
            if k >= eyt.len() {
                return;
            }
            fill(keys, eyt, rank, 2 * k, next);
            eyt[k] = keys[*next];
            rank[k] = *next as u32;
            *next += 1;
            fill(keys, eyt, rank, 2 * k + 1, next);
        }
        if n > 0 {
            let mut next = 0usize;
            fill(&keys, &mut eyt, &mut rank, 1, &mut next);
            debug_assert_eq!(next, n);
        }
        EventColumn { keys, ids, eyt, rank }
    }

    /// Number of events with `key <= bound`: an Eytzinger descent tracking
    /// the rank of the last slot entered rightward. Equals
    /// `keys.partition_point(|k| k <= bound)` on the in-order column.
    fn prefix_len(&self, bound: f64) -> usize {
        let n = self.eyt.len();
        let mut k = 1usize;
        let mut res = 0usize;
        while k < n {
            if self.eyt[k] <= bound {
                res = self.rank[k] as usize + 1;
                k = 2 * k + 1;
            } else {
                k *= 2;
            }
        }
        res
    }
}

impl HeapSize for EventColumn {
    fn heap_bytes(&self) -> usize {
        self.keys.heap_bytes() + self.ids.heap_bytes() + self.eyt.heap_bytes() + self.rank.heap_bytes()
    }
}

/// The Eytzinger-layout logical-time index.
#[derive(Debug, Clone, Default)]
pub struct EytzingerIndex {
    /// Events keyed on logical start.
    by_start: EventColumn,
    /// Events keyed on logical end.
    by_end: EventColumn,
    /// `ends[i]` = logical end of row `i` (stab filter during start scans).
    ends: Vec<f64>,
}

impl HeapSize for EytzingerIndex {
    fn heap_bytes(&self) -> usize {
        self.by_start.heap_bytes() + self.by_end.heap_bytes() + self.ends.heap_bytes()
    }
}

impl LogicalTimeIndex for EytzingerIndex {
    fn name(&self) -> &'static str {
        "eytzinger"
    }

    fn build(rccs: &[LogicalRcc]) -> Self {
        let by_start = EventColumn::build(rccs.iter().map(|r| (r.start, r.id)).collect());
        let by_end = EventColumn::build(rccs.iter().map(|r| (r.end, r.id)).collect());
        let max_id = rccs.iter().map(|r| r.id).max().map_or(0, |m| m as usize + 1);
        let mut ends = vec![f64::NEG_INFINITY; max_id];
        for r in rccs {
            ends[r.id as usize] = r.end;
        }
        EytzingerIndex { by_start, by_end, ends }
    }

    fn len(&self) -> usize {
        self.by_start.keys.len()
    }

    fn active_at(&self, t_star: f64) -> Vec<RowId> {
        let n = self.by_start.prefix_len(t_star);
        let mut out: Vec<RowId> = self.by_start.ids[..n]
            .iter()
            .filter(|&&id| self.ends[id as usize] > t_star)
            .copied()
            .collect();
        out.sort_unstable();
        out
    }

    fn settled_by(&self, t_star: f64) -> Vec<RowId> {
        let n = self.by_end.prefix_len(t_star);
        let mut out: Vec<RowId> = self.by_end.ids[..n].to_vec();
        out.sort_unstable();
        out
    }

    fn created_by(&self, t_star: f64) -> Vec<RowId> {
        let n = self.by_start.prefix_len(t_star);
        let mut out: Vec<RowId> = self.by_start.ids[..n].to_vec();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorted_array::SortedArrayIndex;
    use domd_data::AvailId;
    use rand::{Rng, SeedableRng};

    fn random_rccs(n: u32, seed: u64) -> Vec<LogicalRcc> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let s: f64 = rng.gen_range(0.0..100.0);
                LogicalRcc { id: i, avail: AvailId(1), start: s, end: s + rng.gen_range(0.5..40.0) }
            })
            .collect()
    }

    #[test]
    fn prefix_len_matches_partition_point() {
        for n in [0u32, 1, 2, 3, 7, 8, 100, 1023, 1024, 1777] {
            let col = EventColumn::build((0..n).map(|i| (f64::from(i % 50), i)).collect());
            for bound in [-1.0, 0.0, 10.5, 23.0, 49.0, 60.0] {
                assert_eq!(
                    col.prefix_len(bound),
                    col.keys.partition_point(|&k| k <= bound),
                    "n={n} bound={bound}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_sorted_array_on_random_data() {
        let rccs = random_rccs(1500, 7);
        let ey = EytzingerIndex::build(&rccs);
        let sa = SortedArrayIndex::build(&rccs);
        for t in [0.0, 13.7, 50.0, 88.8, 139.9, 200.0] {
            assert_eq!(ey.active_at(t), sa.active_at(t), "active at {t}");
            assert_eq!(ey.settled_by(t), sa.settled_by(t), "settled at {t}");
            assert_eq!(ey.created_by(t), sa.created_by(t), "created at {t}");
            assert_eq!(ey.not_created_by(t), sa.not_created_by(t), "not-created at {t}");
        }
    }

    #[test]
    fn handles_duplicate_keys() {
        // Many events share the same position: the descent must still count
        // the full run of equal keys.
        let rccs: Vec<LogicalRcc> = (0..64)
            .map(|i| LogicalRcc { id: i, avail: AvailId(1), start: 10.0, end: 20.0 + f64::from(i % 3) })
            .collect();
        let ey = EytzingerIndex::build(&rccs);
        assert_eq!(ey.created_by(10.0).len(), 64);
        assert_eq!(ey.created_by(9.99).len(), 0);
        assert_eq!(ey.settled_by(20.0).len(), 22); // i % 3 == 0 → end 20.0
    }

    #[test]
    fn empty_index() {
        let ey = EytzingerIndex::build(&[]);
        assert!(ey.is_empty());
        assert!(ey.active_at(50.0).is_empty());
        assert!(ey.settled_by(50.0).is_empty());
        assert_eq!(ey.heap_bytes() % 8, 0);
    }
}
