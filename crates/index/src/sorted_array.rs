//! Sorted event-array index (extension arm of the Section 4.1 study).
//!
//! Two flat arrays — `(start, id)` sorted by start and `(end, id)` sorted
//! by end — answer every Status Query predicate with a binary search plus
//! a sequential prefix scan. For a *static* RCC table this is the optimum
//! on every axis (creation = two sorts, memory = 32 bytes/RCC, queries =
//! branch-free scans); what it cannot do is O(log n) insert/delete, which
//! is exactly the capability the paper's dual-AVL design pays its extra
//! memory for. Including it quantifies that trade.

use crate::traits::LogicalTimeIndex;
use crate::types::{HeapSize, LogicalRcc, RowId};

/// `(position, id)` event entry.
type Event = (f64, RowId);

/// The sorted event-array index.
#[derive(Debug, Clone, Default)]
pub struct SortedArrayIndex {
    /// `(start, id)` ascending by start, then id.
    by_start: Vec<Event>,
    /// `(end, id)` ascending by end, then id.
    by_end: Vec<Event>,
    /// `ends[i]` = logical end of the RCC with row id `i` (for the stab
    /// filter during start-prefix scans).
    ends: Vec<f64>,
}

impl SortedArrayIndex {
    fn prefix_len(events: &[Event], bound: f64) -> usize {
        events.partition_point(|&(pos, _)| pos <= bound)
    }
}

impl HeapSize for SortedArrayIndex {
    fn heap_bytes(&self) -> usize {
        self.by_start.capacity() * std::mem::size_of::<Event>()
            + self.by_end.capacity() * std::mem::size_of::<Event>()
            + self.ends.capacity() * std::mem::size_of::<f64>()
    }
}

impl LogicalTimeIndex for SortedArrayIndex {
    fn name(&self) -> &'static str {
        "sorted-array"
    }

    fn build(rccs: &[LogicalRcc]) -> Self {
        let mut by_start: Vec<Event> = rccs.iter().map(|r| (r.start, r.id)).collect();
        by_start.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut by_end: Vec<Event> = rccs.iter().map(|r| (r.end, r.id)).collect();
        by_end.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        // Dense row ids are positions; fall back to max-id sizing if sparse.
        let max_id = rccs.iter().map(|r| r.id).max().map_or(0, |m| m as usize + 1);
        let mut ends = vec![f64::NEG_INFINITY; max_id];
        for r in rccs {
            ends[r.id as usize] = r.end;
        }
        SortedArrayIndex { by_start, by_end, ends }
    }

    fn len(&self) -> usize {
        self.by_start.len()
    }

    fn active_at(&self, t_star: f64) -> Vec<RowId> {
        let n = Self::prefix_len(&self.by_start, t_star);
        let mut out: Vec<RowId> = self.by_start[..n]
            .iter()
            .filter(|&&(_, id)| self.ends[id as usize] > t_star)
            .map(|&(_, id)| id)
            .collect();
        out.sort_unstable();
        out
    }

    fn settled_by(&self, t_star: f64) -> Vec<RowId> {
        let n = Self::prefix_len(&self.by_end, t_star);
        let mut out: Vec<RowId> = self.by_end[..n].iter().map(|&(_, id)| id).collect();
        out.sort_unstable();
        out
    }

    fn created_by(&self, t_star: f64) -> Vec<RowId> {
        let n = Self::prefix_len(&self.by_start, t_star);
        let mut out: Vec<RowId> = self.by_start[..n].iter().map(|&(_, id)| id).collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avl::AvlIndex;
    use domd_data::AvailId;
    use rand::{Rng, SeedableRng};

    fn random_rccs(n: u32, seed: u64) -> Vec<LogicalRcc> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let s: f64 = rng.gen_range(0.0..100.0);
                LogicalRcc { id: i, avail: AvailId(1), start: s, end: s + rng.gen_range(0.5..40.0) }
            })
            .collect()
    }

    #[test]
    fn agrees_with_avl_on_random_data() {
        let rccs = random_rccs(1500, 7);
        let sa = SortedArrayIndex::build(&rccs);
        let avl = AvlIndex::build(&rccs);
        for t in [0.0, 13.7, 50.0, 88.8, 139.9, 200.0] {
            assert_eq!(sa.active_at(t), avl.active_at(t), "active at {t}");
            assert_eq!(sa.settled_by(t), avl.settled_by(t), "settled at {t}");
            assert_eq!(sa.created_by(t), avl.created_by(t), "created at {t}");
            assert_eq!(sa.not_created_by(t), avl.not_created_by(t), "not-created at {t}");
        }
    }

    #[test]
    fn most_compact_design() {
        let rccs = random_rccs(10_000, 8);
        let sa = SortedArrayIndex::build(&rccs);
        let avl = AvlIndex::build(&rccs);
        assert!(
            sa.heap_bytes() < avl.heap_bytes(),
            "sorted array {} must undercut the dual AVL {}",
            sa.heap_bytes(),
            avl.heap_bytes()
        );
    }

    #[test]
    fn empty_index() {
        let sa = SortedArrayIndex::build(&[]);
        assert!(sa.is_empty());
        assert!(sa.active_at(50.0).is_empty());
        assert!(sa.settled_by(50.0).is_empty());
    }
}
