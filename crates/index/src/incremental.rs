//! Incremental Status Query computation over the logical timeline
//! (Section 4.3).
//!
//! Answering a DoMD query means running Status Queries at every grid point
//! `0, x, 2x, …, t*`. A naive executor recomputes each point from scratch —
//! O(steps × |RCC|). The incremental `StatStructure` instead carries the
//! running per-group aggregates forward: advancing from `j·x` to `(j+1)·x`
//! only touches RCCs whose creation or settlement falls inside the window
//! `(j·x, (j+1)·x]`, which the dual-AVL index enumerates in
//! O(log n + Δ) via pruned range scans.
//!
//! Group assignment is pluggable (a dense `RowId → group` map), so the same
//! sweeper serves both the scalability study (groups = RCC type × SWLIN
//! first digit) and feature engineering (groups = avail × type × subsystem).

use crate::traits::{EventRangeScan, LogicalTimeIndex};
use crate::types::{HeapSize, LogicalRcc, RowId};

/// Running aggregates of one (group × status) cell. Supports removal
/// (needed for the active set, which RCCs leave when they settle), so only
/// sum-based statistics are maintained here.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accum {
    /// Row count.
    pub count: f64,
    /// Sum of settled amounts.
    pub sum_amount: f64,
    /// Sum of squared settled amounts (for variance features).
    pub sum_amount_sq: f64,
    /// Sum of durations (days).
    pub sum_duration: f64,
    /// Sum of squared durations.
    pub sum_duration_sq: f64,
}

impl Accum {
    /// Adds one row's contribution.
    pub fn add(&mut self, amount: f64, duration: f64) {
        self.count += 1.0;
        self.sum_amount += amount;
        self.sum_amount_sq += amount * amount;
        self.sum_duration += duration;
        self.sum_duration_sq += duration * duration;
    }

    /// Folds another accumulator into this one (used to roll cells up the
    /// type / SWLIN hierarchies).
    pub fn merge(&mut self, other: &Accum) {
        self.count += other.count;
        self.sum_amount += other.sum_amount;
        self.sum_amount_sq += other.sum_amount_sq;
        self.sum_duration += other.sum_duration;
        self.sum_duration_sq += other.sum_duration_sq;
    }

    /// Removes one row's contribution (exact inverse of [`Accum::add`]).
    pub fn sub(&mut self, amount: f64, duration: f64) {
        self.count -= 1.0;
        self.sum_amount -= amount;
        self.sum_amount_sq -= amount * amount;
        self.sum_duration -= duration;
        self.sum_duration_sq -= duration * duration;
    }

    /// Mean amount (0 when empty).
    pub fn avg_amount(&self) -> f64 {
        if self.count <= 0.0 {
            0.0
        } else {
            self.sum_amount / self.count
        }
    }

    /// Mean duration (0 when empty).
    pub fn avg_duration(&self) -> f64 {
        if self.count <= 0.0 {
            0.0
        } else {
            self.sum_duration / self.count
        }
    }

    /// Population standard deviation of amounts (0 when count < 2).
    pub fn std_amount(&self) -> f64 {
        if self.count < 2.0 {
            return 0.0;
        }
        let mean = self.sum_amount / self.count;
        (self.sum_amount_sq / self.count - mean * mean).max(0.0).sqrt()
    }

    /// Population standard deviation of durations (0 when count < 2).
    pub fn std_duration(&self) -> f64 {
        if self.count < 2.0 {
            return 0.0;
        }
        let mean = self.sum_duration / self.count;
        (self.sum_duration_sq / self.count - mean * mean).max(0.0).sqrt()
    }
}

/// The `StatStructure(t*_xj)` of Section 4.3: per-group running aggregates
/// for the active / settled / created sets at the last processed timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct StatStructure {
    /// Last processed logical timestamp.
    pub t_star: f64,
    /// Active aggregates per group.
    pub active: Vec<Accum>,
    /// Settled aggregates per group (insert-only: rows never leave).
    pub settled: Vec<Accum>,
    /// Created aggregates per group (insert-only).
    pub created: Vec<Accum>,
}

impl StatStructure {
    /// An empty structure positioned before the timeline origin.
    pub fn new(n_groups: usize) -> Self {
        StatStructure {
            t_star: f64::NEG_INFINITY,
            active: vec![Accum::default(); n_groups],
            settled: vec![Accum::default(); n_groups],
            created: vec![Accum::default(); n_groups],
        }
    }

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.active.len()
    }
}

impl HeapSize for StatStructure {
    fn heap_bytes(&self) -> usize {
        (self.active.capacity() + self.settled.capacity() + self.created.capacity())
            * std::mem::size_of::<Accum>()
    }
}

/// Row attribute columns consulted by the sweepers.
#[derive(Debug, Clone, Copy)]
pub struct RowColumns<'a> {
    /// Settled amount per row id.
    pub amounts: &'a [f64],
    /// Duration (days) per row id.
    pub durations: &'a [f64],
    /// Dense group index per row id.
    pub groups: &'a [usize],
}

/// Incremental sweeper over a logical-time grid backed by either dual-AVL
/// index (pointer-based or arena-backed). Calls `visit(step, t*, &stats)`
/// once per grid point, after the structure has been advanced to it.
pub fn sweep_incremental<I: EventRangeScan, F: FnMut(usize, f64, &StatStructure)>(
    index: &I,
    cols: RowColumns<'_>,
    n_groups: usize,
    grid: &[f64],
    mut visit: F,
) -> StatStructure {
    let mut st = StatStructure::new(n_groups);
    let mut prev = f64::NEG_INFINITY;
    for (step, &t) in grid.iter().enumerate() {
        debug_assert!(t >= prev, "grid must ascend");
        // Rows created inside (prev, t] enter the created and active sets.
        index.scan_created_in(prev, t, &mut |_s, _e, id| {
            let (g, a, d) = row(cols, id);
            st.created[g].add(a, d);
            st.active[g].add(a, d);
        });
        // Rows settled inside (prev, t] move from active to settled.
        index.scan_settled_in(prev, t, &mut |s, _e, id| {
            let (g, a, d) = row(cols, id);
            // A row both created and settled inside the window was just
            // added to active above; rows created before `prev` were added
            // in an earlier step. Either way it is in active now — unless it
            // settled before it was created, which projection forbids.
            debug_assert!(s <= t, "settle implies created");
            st.active[g].sub(a, d);
            st.settled[g].add(a, d);
        });
        st.t_star = t;
        visit(step, t, &st);
        prev = t;
    }
    st
}

/// From-scratch counterpart: recomputes every grid point independently with
/// full index queries. Same output as [`sweep_incremental`]; used as the
/// baseline in the Figure 5b comparison and as a correctness oracle.
pub fn sweep_from_scratch<I, F>(
    index: &I,
    cols: RowColumns<'_>,
    n_groups: usize,
    grid: &[f64],
    mut visit: F,
) -> StatStructure
where
    I: LogicalTimeIndex,
    F: FnMut(usize, f64, &StatStructure),
{
    let mut last = StatStructure::new(n_groups);
    for (step, &t) in grid.iter().enumerate() {
        let mut st = StatStructure::new(n_groups);
        st.t_star = t;
        for id in index.active_at(t) {
            let (g, a, d) = row(cols, id);
            st.active[g].add(a, d);
            st.created[g].add(a, d);
        }
        for id in index.settled_by(t) {
            let (g, a, d) = row(cols, id);
            st.settled[g].add(a, d);
            st.created[g].add(a, d);
        }
        visit(step, t, &st);
        last = st;
    }
    last
}

#[inline]
fn row(cols: RowColumns<'_>, id: RowId) -> (usize, f64, f64) {
    let i = id as usize;
    (cols.groups[i], cols.amounts[i], cols.durations[i])
}

/// Convenience: builds the column arrays for a projected RCC set using a
/// caller-provided group assignment.
pub fn columns_from<FG: Fn(&LogicalRcc) -> usize>(
    projected: &[LogicalRcc],
    amounts: Vec<f64>,
    durations: Vec<f64>,
    group_of: FG,
) -> (Vec<f64>, Vec<f64>, Vec<usize>) {
    assert_eq!(projected.len(), amounts.len());
    assert_eq!(projected.len(), durations.len());
    let groups = projected.iter().map(group_of).collect();
    (amounts, durations, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avl::AvlIndex;
    use domd_data::AvailId;

    fn rcc(id: RowId, start: f64, end: f64) -> LogicalRcc {
        LogicalRcc { id, avail: AvailId(1), start, end }
    }

    fn setup(n: usize, seed: u64) -> (Vec<LogicalRcc>, Vec<f64>, Vec<f64>, Vec<usize>) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let rs: Vec<LogicalRcc> = (0..n as u32)
            .map(|i| {
                let s: f64 = rng.gen_range(0.0..100.0);
                rcc(i, s, s + rng.gen_range(0.5..30.0))
            })
            .collect();
        let amounts: Vec<f64> = (0..n).map(|_| rng.gen_range(100.0..9000.0)).collect();
        let durations: Vec<f64> = rs.iter().map(|r| r.end - r.start).collect();
        let groups: Vec<usize> = (0..n).map(|i| i % 7).collect();
        (rs, amounts, durations, groups)
    }

    #[test]
    fn accum_add_sub_roundtrip() {
        let mut a = Accum::default();
        a.add(10.0, 2.0);
        a.add(30.0, 4.0);
        assert_eq!(a.count, 2.0);
        assert!((a.avg_amount() - 20.0).abs() < 1e-12);
        assert!((a.std_amount() - 10.0).abs() < 1e-9);
        a.sub(10.0, 2.0);
        assert_eq!(a.count, 1.0);
        assert!((a.avg_amount() - 30.0).abs() < 1e-12);
        assert_eq!(a.std_amount(), 0.0);
    }

    #[test]
    fn incremental_equals_from_scratch() {
        let (rs, amounts, durations, groups) = setup(800, 21);
        let cols = RowColumns { amounts: &amounts, durations: &durations, groups: &groups };
        let avl = AvlIndex::build(&rs);
        let grid: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();

        let mut inc_snapshots = Vec::new();
        sweep_incremental(&avl, cols, 7, &grid, |_, t, st| {
            inc_snapshots.push((t, st.clone()));
        });
        let mut scratch_snapshots = Vec::new();
        sweep_from_scratch(&avl, cols, 7, &grid, |_, t, st| {
            scratch_snapshots.push((t, st.clone()));
        });
        assert_eq!(inc_snapshots.len(), scratch_snapshots.len());
        for ((t1, a), (t2, b)) in inc_snapshots.iter().zip(&scratch_snapshots) {
            assert_eq!(t1, t2);
            for g in 0..7 {
                assert!((a.active[g].count - b.active[g].count).abs() < 1e-9, "active count at {t1} g{g}");
                assert!((a.active[g].sum_amount - b.active[g].sum_amount).abs() < 1e-6);
                assert!((a.settled[g].count - b.settled[g].count).abs() < 1e-9);
                assert!((a.settled[g].sum_duration - b.settled[g].sum_duration).abs() < 1e-6);
                assert!((a.created[g].count - b.created[g].count).abs() < 1e-9);
                assert!((a.created[g].sum_amount - b.created[g].sum_amount).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn final_state_counts_everything_created() {
        let (rs, amounts, durations, groups) = setup(300, 3);
        let cols = RowColumns { amounts: &amounts, durations: &durations, groups: &groups };
        let avl = AvlIndex::build(&rs);
        // All generated starts are < 100, ends < 130.
        let st = sweep_incremental(&avl, cols, 7, &[150.0], |_, _, _| {});
        let created: f64 = st.created.iter().map(|a| a.count).sum();
        let settled: f64 = st.settled.iter().map(|a| a.count).sum();
        let active: f64 = st.active.iter().map(|a| a.count).sum();
        assert_eq!(created, 300.0);
        assert_eq!(settled, 300.0);
        assert_eq!(active, 0.0);
    }

    #[test]
    fn created_equals_active_plus_settled_invariant() {
        let (rs, amounts, durations, groups) = setup(500, 9);
        let cols = RowColumns { amounts: &amounts, durations: &durations, groups: &groups };
        let avl = AvlIndex::build(&rs);
        let grid: Vec<f64> = (0..=20).map(|i| i as f64 * 5.0).collect();
        sweep_incremental(&avl, cols, 7, &grid, |_, t, st| {
            for g in 0..7 {
                let lhs = st.created[g].count;
                let rhs = st.active[g].count + st.settled[g].count;
                assert!((lhs - rhs).abs() < 1e-9, "invariant broken at t={t} g={g}");
                let lhs_amt = st.created[g].sum_amount;
                let rhs_amt = st.active[g].sum_amount + st.settled[g].sum_amount;
                assert!((lhs_amt - rhs_amt).abs() < 1e-6);
            }
        });
    }

    #[test]
    fn row_created_and_settled_within_one_window() {
        // An RCC entirely inside one grid window must land directly in
        // settled without corrupting active.
        let rs = [rcc(0, 12.0, 14.0)];
        let amounts = [500.0];
        let durations = [2.0];
        let groups = [0usize];
        let cols = RowColumns { amounts: &amounts, durations: &durations, groups: &groups };
        let avl = AvlIndex::build(&rs);
        let st = sweep_incremental(&avl, cols, 1, &[0.0, 10.0, 20.0], |_, _, _| {});
        assert_eq!(st.active[0].count, 0.0);
        assert_eq!(st.settled[0].count, 1.0);
        assert_eq!(st.created[0].count, 1.0);
    }
}
