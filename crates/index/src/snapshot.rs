//! Epoch-pinned snapshot publication over maintainable indexes.
//!
//! A serving loop needs two guarantees that `StatusQueryEngine`'s
//! epoch counter alone does not give it:
//!
//! 1. **Pinned reads** — a request that starts against epoch `e` must see
//!    epoch `e` for its whole lifetime, even if ingest publishes `e + 1`
//!    mid-request. A torn read (half old columns, half new) must be
//!    impossible by construction, not by discipline.
//! 2. **Non-blocking reads** — pinning must never wait on a writer that is
//!    busy building the next epoch.
//!
//! [`EpochStore`] provides both with plain `std` primitives: the current
//! snapshot lives behind an `Arc` swapped under a mutex that is only ever
//! held for the duration of a pointer clone/store — never while a snapshot
//! is being *built*. Writers serialize among themselves on a separate
//! build lock (so no published epoch is ever lost to a concurrent-clone
//! race), clone the current snapshot **outside** the swap lock, mutate the
//! private clone, and then swap it in. Readers pin with one short lock
//! acquisition and afterwards hold an immutable `Arc` that no writer can
//! touch; the previous epoch is freed when its last pinned reader drops.
//!
//! The store is payload-generic (`EpochStore<S>`): `domd serve` publishes
//! a bundle of `StatusQueryEngine` + dataset + trained model as one
//! atomically-versioned unit, and the property suite in `domd-serve`
//! proves `to_bits`-identical reads across concurrent swaps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::status_query::StatusQueryEngine;
use crate::traits::MaintainableIndex;

/// A snapshot pinned at publication epoch `epoch`. The payload is shared,
/// immutable, and survives unchanged for as long as the pin is held.
#[derive(Debug)]
pub struct Pinned<S> {
    snapshot: Arc<S>,
    epoch: u64,
}

impl<S> Pinned<S> {
    /// The publication epoch this pin observes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shared payload (also reachable via `Deref`).
    pub fn snapshot(&self) -> &S {
        &self.snapshot
    }

    /// Clones the underlying `Arc` (cheap; shares the same snapshot).
    pub fn share(&self) -> Arc<S> {
        Arc::clone(&self.snapshot)
    }
}

impl<S> Clone for Pinned<S> {
    fn clone(&self) -> Self {
        Pinned { snapshot: Arc::clone(&self.snapshot), epoch: self.epoch }
    }
}

impl<S> std::ops::Deref for Pinned<S> {
    type Target = S;
    fn deref(&self) -> &S {
        &self.snapshot
    }
}

/// Atomically-swapped epoch snapshots: lock-free-in-spirit pinned reads
/// (one pointer clone under a lock that writers hold only for a pointer
/// store), serialized copy-on-write publication for writers.
#[derive(Debug)]
pub struct EpochStore<S> {
    /// Swap point. Held only for `Arc` clone (readers) or store (writers).
    current: Mutex<Arc<S>>,
    /// Serializes snapshot *construction* so concurrent writers cannot
    /// both clone epoch `e` and silently discard each other's `e + 1`.
    build: Mutex<()>,
    /// Publication count; epoch `n` is the snapshot after `n` publishes.
    epoch: AtomicU64,
}

impl<S> EpochStore<S> {
    /// Wraps `initial` as epoch 0.
    pub fn new(initial: S) -> Self {
        EpochStore {
            current: Mutex::new(Arc::new(initial)),
            build: Mutex::new(()),
            epoch: AtomicU64::new(0),
        }
    }

    fn swap_lock(&self) -> std::sync::MutexGuard<'_, Arc<S>> {
        // domd-lint: allow(no-panic) — the swap lock is held only across a pointer clone/store, which cannot panic, so it is never poisoned
        self.current.lock().expect("epoch swap lock")
    }

    /// Pins the current snapshot. The returned [`Pinned`] keeps observing
    /// the same epoch no matter how many publishes happen after it.
    pub fn pin(&self) -> Pinned<S> {
        let guard = self.swap_lock();
        let snapshot = Arc::clone(&guard);
        // Read the epoch while still under the swap lock so the pair
        // (snapshot, epoch) is consistent even against a racing publish.
        let epoch = self.epoch.load(Ordering::Acquire);
        drop(guard);
        Pinned { snapshot, epoch }
    }

    /// The current publication epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Replaces the snapshot wholesale and returns the new epoch. Pins
    /// taken before the call keep their old snapshot.
    pub fn publish(&self, next: S) -> u64 {
        let _build = self.build_lock();
        self.install(Arc::new(next))
    }

    /// Copy-on-write publication: clones the current snapshot, lets
    /// `mutate` edit the private clone (no reader can observe the
    /// intermediate states), swaps it in, and returns the new epoch plus
    /// `mutate`'s result. Writers serialize here; readers never wait.
    pub fn update<R>(&self, mutate: impl FnOnce(&mut S) -> R) -> (u64, R)
    where
        S: Clone,
    {
        let _build = self.build_lock();
        // Clone outside the swap lock: building the next epoch may be
        // expensive and must never stall `pin`.
        let mut next = (*self.pin().share()).clone();
        let out = mutate(&mut next);
        (self.install(Arc::new(next)), out)
    }

    fn build_lock(&self) -> std::sync::MutexGuard<'_, ()> {
        // domd-lint: allow(no-panic) — a poisoned build lock means a writer already panicked; propagating is the only sound exit
        self.build.lock().expect("epoch build lock")
    }

    fn install(&self, next: Arc<S>) -> u64 {
        let mut guard = self.swap_lock();
        *guard = next;
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        drop(guard);
        epoch
    }
}

/// The `MaintainableIndex` tie-in: an [`EpochStore`] over a
/// [`StatusQueryEngine`] whose publishes are proven monotone in the
/// engine's own maintenance epoch.
pub type EngineStore<I> = EpochStore<StatusQueryEngine<I>>;

impl<I: MaintainableIndex + Clone> EngineStore<I> {
    /// Copy-on-write maintenance: applies `mutate` to a private clone of
    /// the current engine and publishes the result, asserting the engine's
    /// internal maintenance epoch never moved backwards (a regression
    /// would mean a stale clone overwrote a newer publish).
    pub fn maintain<R>(&self, mutate: impl FnOnce(&mut StatusQueryEngine<I>) -> R) -> (u64, R) {
        let before = self.pin().snapshot().epoch();
        let (epoch, (after, out)) = self.update(|engine| {
            let r = mutate(engine);
            (engine.epoch(), r)
        });
        debug_assert!(after >= before, "maintenance epoch regressed: {after} < {before}");
        (epoch, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat_avl::FlatAvlIndex;
    use crate::status_query::{StatusQuery, StatusQueryEngine};
    use domd_data::generator::{generate, GeneratorConfig};
    use domd_data::rcc::RccStatus;

    fn small_engine() -> (domd_data::dataset::Dataset, StatusQueryEngine<FlatAvlIndex>) {
        let ds = generate(&GeneratorConfig { n_avails: 8, target_rccs: 600, scale: 1, seed: 11 });
        let arena = Arc::new(crate::arena::RccArena::from_dataset(&ds));
        let engine = StatusQueryEngine::<FlatAvlIndex>::from_arena(arena);
        (ds, engine)
    }

    fn count_all(engine: &StatusQueryEngine<FlatAvlIndex>) -> usize {
        let q = StatusQuery {
            rcc_type: None,
            swlin_prefix: None,
            status: RccStatus::Created,
            t_star: f64::INFINITY,
        };
        engine.aggregate(&q).count
    }

    #[test]
    fn pins_survive_publishes() {
        let (ds, engine) = small_engine();
        let rows = count_all(&engine);
        let store = EpochStore::new(engine);
        let old = store.pin();
        assert_eq!(old.epoch(), 0);

        let rcc = ds.rccs()[0].clone();
        let avail = ds.avail(rcc.avail).unwrap().clone();
        let (epoch, row) = store.maintain(|e| e.insert(&rcc, &avail));
        assert_eq!(epoch, 1);
        assert!(row as usize >= rows);

        // The pre-swap pin still sees the old epoch's contents.
        assert_eq!(count_all(old.snapshot()), rows);
        assert_eq!(old.epoch(), 0);
        // A fresh pin sees the new epoch.
        let new = store.pin();
        assert_eq!(new.epoch(), 1);
        assert_eq!(count_all(new.snapshot()), rows + 1);
    }

    #[test]
    fn concurrent_publishes_never_lose_updates() {
        let (ds, engine) = small_engine();
        let base = count_all(&engine);
        let store = EpochStore::new(engine);
        let rcc = ds.rccs()[0].clone();
        let avail = ds.avail(rcc.avail).unwrap().clone();
        const WRITERS: usize = 4;
        const EACH: usize = 8;
        domd_runtime::run_workers(WRITERS, |_| {
            for _ in 0..EACH {
                store.maintain(|e| e.insert(&rcc, &avail));
            }
        });
        let total = WRITERS * EACH;
        assert_eq!(store.epoch(), total as u64);
        assert_eq!(count_all(store.pin().snapshot()), base + total);
    }

    #[test]
    fn pinned_reads_are_bit_identical_under_swaps() {
        let (ds, engine) = small_engine();
        let q = StatusQuery {
            rcc_type: None,
            swlin_prefix: None,
            status: RccStatus::Active,
            t_star: 0.75,
        };
        let expect = engine.aggregate(&q);
        let store = EpochStore::new(engine);
        let pinned = store.pin();
        let rcc = ds.rccs()[0].clone();
        let avail = ds.avail(rcc.avail).unwrap().clone();
        for _ in 0..5 {
            store.maintain(|e| e.insert(&rcc, &avail));
            let got = pinned.aggregate(&q);
            assert_eq!(got.count, expect.count);
            assert_eq!(got.sum_amount.to_bits(), expect.sum_amount.to_bits());
            assert_eq!(got.sum_duration.to_bits(), expect.sum_duration.to_bits());
        }
    }
}
