//! Centered interval tree index (Section 4.1).
//!
//! The classic centered interval tree: each node owns a center point and
//! every interval containing that center, stored twice — sorted by start
//! and sorted by end — so stab queries touch only the qualifying prefix or
//! suffix of each node list. Intervals entirely left (right) of the center
//! recurse into the left (right) child. Construction is O(n log n), stab
//! and range retrieval are O(log n + k).
//!
//! The double bookkeeping per interval is why this design carries slightly
//! more memory than the dual-AVL index (Table 6 reports the same ordering).
//! This variant is static: dynamic maintenance in the paper's pipeline uses
//! the AVL design, which the paper also found superior in practice.

use crate::traits::LogicalTimeIndex;
use crate::types::{HeapSize, LogicalRcc, RowId};

const NIL: u32 = u32::MAX;

/// `(key endpoint, other endpoint, id)` entry in a node list.
type Entry = (f64, f64, RowId);

#[derive(Debug, Clone)]
struct Node {
    center: f64,
    left: u32,
    right: u32,
    /// Intervals containing `center`, ascending by start.
    by_start: Vec<Entry>,
    /// The same intervals, ascending by end.
    by_end: Vec<Entry>,
}

/// Centered interval tree over logical RCC intervals.
#[derive(Debug, Clone, Default)]
pub struct IntervalTreeIndex {
    nodes: Vec<Node>,
    root: u32,
    len: usize,
}

impl IntervalTreeIndex {
    fn build_rec(&mut self, mut items: Vec<(f64, f64, RowId)>) -> u32 {
        if items.is_empty() {
            return NIL;
        }
        // Center = median endpoint; the interval contributing it always
        // contains it, so the node list is never empty and recursion
        // terminates.
        let mut endpoints: Vec<f64> = Vec::with_capacity(items.len() * 2);
        for &(s, e, _) in &items {
            endpoints.push(s);
            endpoints.push(e);
        }
        endpoints.sort_by(f64::total_cmp);
        let center = endpoints[endpoints.len() / 2];

        let mut left_items = Vec::new();
        let mut right_items = Vec::new();
        let mut here = Vec::new();
        for (s, e, id) in items.drain(..) {
            if e < center {
                left_items.push((s, e, id));
            } else if s > center {
                right_items.push((s, e, id));
            } else {
                here.push((s, e, id));
            }
        }
        debug_assert!(!here.is_empty(), "median endpoint's interval must land here");

        let mut by_start: Vec<Entry> = here.iter().map(|&(s, e, id)| (s, e, id)).collect();
        by_start.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        let mut by_end: Vec<Entry> = here.iter().map(|&(s, e, id)| (e, s, id)).collect();
        by_end.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        by_start.shrink_to_fit();
        by_end.shrink_to_fit();

        let slot = self.nodes.len() as u32;
        self.nodes.push(Node { center, left: NIL, right: NIL, by_start, by_end });
        let l = self.build_rec(left_items);
        let r = self.build_rec(right_items);
        self.nodes[slot as usize].left = l;
        self.nodes[slot as usize].right = r;
        slot
    }

    /// Emits every id stored in the subtree rooted at `n`.
    fn collect_subtree(&self, n: u32, out: &mut Vec<RowId>) {
        if n == NIL {
            return;
        }
        let node = &self.nodes[n as usize];
        out.extend(node.by_start.iter().map(|&(_, _, id)| id));
        self.collect_subtree(node.left, out);
        self.collect_subtree(node.right, out);
    }

    fn stab(&self, n: u32, t: f64, out: &mut Vec<RowId>) {
        if n == NIL {
            return;
        }
        let node = &self.nodes[n as usize];
        if t < node.center {
            // Node intervals end at or past the center (> t); qualify by start.
            for &(s, _e, id) in &node.by_start {
                if s > t {
                    break;
                }
                out.push(id);
            }
            self.stab(node.left, t, out);
        } else {
            // t >= center: node intervals start at or before the center
            // (<= t); qualify by the half-open end (end > t).
            for &(e, _s, id) in node.by_end.iter().rev() {
                if e <= t {
                    break;
                }
                out.push(id);
            }
            if t > node.center {
                self.stab(node.right, t, out);
            }
            // t == center: left subtree ends < center = t (settled), right
            // subtree starts > center = t (not created) — both pruned.
        }
    }

    fn settled(&self, n: u32, t: f64, out: &mut Vec<RowId>) {
        if n == NIL {
            return;
        }
        let node = &self.nodes[n as usize];
        if node.center <= t {
            for &(e, _s, id) in &node.by_end {
                if e > t {
                    break;
                }
                out.push(id);
            }
            // Left subtree ends strictly before the center <= t: all settled.
            self.collect_subtree(node.left, out);
            self.settled(node.right, t, out);
        } else {
            // Node intervals end at or past center > t: none settled here or
            // to the right (starts > center > t).
            self.settled(node.left, t, out);
        }
    }

    fn created(&self, n: u32, t: f64, out: &mut Vec<RowId>) {
        if n == NIL {
            return;
        }
        let node = &self.nodes[n as usize];
        if node.center <= t {
            // Node intervals start at or before center <= t: all created;
            // left subtree lies entirely before the center: all created.
            out.extend(node.by_start.iter().map(|&(_, _, id)| id));
            self.collect_subtree(node.left, out);
            self.created(node.right, t, out);
        } else {
            for &(s, _e, id) in &node.by_start {
                if s > t {
                    break;
                }
                out.push(id);
            }
            self.created(node.left, t, out);
        }
    }

    /// Maximum node depth (testing hook).
    pub fn depth(&self) -> usize {
        fn rec(tree: &IntervalTreeIndex, n: u32) -> usize {
            if n == NIL {
                return 0;
            }
            let node = &tree.nodes[n as usize];
            1 + rec(tree, node.left).max(rec(tree, node.right))
        }
        rec(self, self.root)
    }

    /// Number of tree nodes (testing/diagnostics hook).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl HeapSize for IntervalTreeIndex {
    fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self
                .nodes
                .iter()
                .map(|n| {
                    n.by_start.capacity() * std::mem::size_of::<Entry>()
                        + n.by_end.capacity() * std::mem::size_of::<Entry>()
                })
                .sum::<usize>()
    }
}

impl LogicalTimeIndex for IntervalTreeIndex {
    fn name(&self) -> &'static str {
        "interval-tree"
    }

    fn build(rccs: &[LogicalRcc]) -> Self {
        let mut tree = IntervalTreeIndex { nodes: Vec::new(), root: NIL, len: rccs.len() };
        let items: Vec<(f64, f64, RowId)> = rccs.iter().map(|r| (r.start, r.end, r.id)).collect();
        tree.root = tree.build_rec(items);
        tree
    }

    fn len(&self) -> usize {
        self.len
    }

    fn active_at(&self, t_star: f64) -> Vec<RowId> {
        let mut out = Vec::new();
        self.stab(self.root, t_star, &mut out);
        out.sort_unstable();
        out
    }

    fn settled_by(&self, t_star: f64) -> Vec<RowId> {
        let mut out = Vec::new();
        self.settled(self.root, t_star, &mut out);
        out.sort_unstable();
        out
    }

    fn created_by(&self, t_star: f64) -> Vec<RowId> {
        let mut out = Vec::new();
        self.created(self.root, t_star, &mut out);
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rcc(id: RowId, start: f64, end: f64) -> LogicalRcc {
        LogicalRcc { id, avail: domd_data::AvailId(1), start, end }
    }

    #[test]
    fn small_case_semantics() {
        let rs = [rcc(0, 0.0, 30.0), rcc(1, 10.0, 50.0), rcc(2, 40.0, 90.0), rcc(3, 95.0, 120.0)];
        let idx = IntervalTreeIndex::build(&rs);
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.active_at(20.0), vec![0, 1]);
        assert_eq!(idx.active_at(50.0), vec![2]);
        assert_eq!(idx.settled_by(50.0), vec![0, 1]);
        assert_eq!(idx.created_by(100.0), vec![0, 1, 2, 3]);
        assert_eq!(idx.not_created_by(20.0), vec![2, 3]);
    }

    #[test]
    fn stab_at_exact_center_endpoint() {
        // Identical intervals force the center onto shared endpoints.
        let rs = [rcc(0, 10.0, 20.0), rcc(1, 10.0, 20.0), rcc(2, 10.0, 20.0)];
        let idx = IntervalTreeIndex::build(&rs);
        assert_eq!(idx.active_at(10.0), vec![0, 1, 2]);
        assert_eq!(idx.active_at(15.0), vec![0, 1, 2]);
        assert_eq!(idx.active_at(20.0), Vec::<RowId>::new()); // half-open end
        assert_eq!(idx.settled_by(20.0), vec![0, 1, 2]);
    }

    #[test]
    fn empty_tree() {
        let idx = IntervalTreeIndex::build(&[]);
        assert!(idx.is_empty());
        assert!(idx.active_at(10.0).is_empty());
        assert!(idx.settled_by(10.0).is_empty());
        assert!(idx.created_by(10.0).is_empty());
    }

    #[test]
    fn agrees_with_brute_force_on_random_data() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let rs: Vec<LogicalRcc> = (0..2000)
            .map(|i| {
                let s: f64 = rng.gen_range(0.0..100.0);
                let w: f64 = rng.gen_range(0.5..40.0);
                rcc(i, s, s + w)
            })
            .collect();
        let idx = IntervalTreeIndex::build(&rs);
        for t in [0.0, 7.3, 25.0, 50.0, 77.7, 99.9, 120.0] {
            let mut want_a: Vec<RowId> =
                rs.iter().filter(|r| r.start <= t && r.end > t).map(|r| r.id).collect();
            want_a.sort_unstable();
            assert_eq!(idx.active_at(t), want_a, "active at {t}");
            let mut want_s: Vec<RowId> = rs.iter().filter(|r| r.end <= t).map(|r| r.id).collect();
            want_s.sort_unstable();
            assert_eq!(idx.settled_by(t), want_s, "settled at {t}");
            let mut want_c: Vec<RowId> = rs.iter().filter(|r| r.start <= t).map(|r| r.id).collect();
            want_c.sort_unstable();
            assert_eq!(idx.created_by(t), want_c, "created at {t}");
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let rs: Vec<LogicalRcc> = (0..8192)
            .map(|i| {
                let s: f64 = rng.gen_range(0.0..100.0);
                rcc(i, s, s + rng.gen_range(0.1..5.0))
            })
            .collect();
        let idx = IntervalTreeIndex::build(&rs);
        assert!(idx.depth() <= 2 * 14, "depth {} too deep for n=8192", idx.depth());
    }
}
