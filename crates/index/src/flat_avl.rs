//! Struct-of-arrays dual-AVL index — the flat-layout contender.
//!
//! [`crate::avl::AvlTree`] is already arena-backed, but its arena is an
//! array of 32-byte `Node` records: a range scan that only compares keys
//! still pulls the ids, child links, and heights of every visited node
//! through the cache. `FlatAvlTree` splits the node into parallel columns
//! (`keys`, `others`, `ids`, `lefts`, `rights`, `heights`) built in *in-order*
//! arena positions by [`FlatAvlTree::build_from_sorted`], so the pruned
//! range scans of the incremental sweep walk the 8-byte key column
//! sequentially and touch the payload columns only for rows that match.
//!
//! Semantics are identical to the AoS tree: same `(key, id)` ordering, same
//! rebalancing, same sorted-layout fast paths, same O(log n) dynamic
//! maintenance (Section 4.1) — only the memory layout differs.

use crate::traits::{LogicalTimeIndex, MaintainableIndex};
use crate::types::{HeapSize, LogicalRcc, RowId};

const NIL: u32 = u32::MAX;

/// An AVL tree over `(key, id)` pairs with payload `other`, stored as
/// parallel columns.
#[derive(Debug, Clone)]
pub struct FlatAvlTree {
    /// Sort key per arena slot.
    keys: Vec<f64>,
    /// Opposite endpoint per slot (carried for stab queries).
    others: Vec<f64>,
    /// RCC row id per slot; also the key tiebreaker.
    ids: Vec<RowId>,
    lefts: Vec<u32>,
    rights: Vec<u32>,
    heights: Vec<u8>,
    root: u32,
    /// Slots freed by `remove`, reused by `insert`.
    free: Vec<u32>,
    len: usize,
    /// True while slots are in in-order (sorted-by-key) positions — set by
    /// [`FlatAvlTree::build_from_sorted`], cleared by any mutation.
    sorted_layout: bool,
}

impl Default for FlatAvlTree {
    fn default() -> Self {
        FlatAvlTree::new()
    }
}

impl FlatAvlTree {
    /// An empty tree.
    pub fn new() -> Self {
        FlatAvlTree {
            keys: Vec::new(),
            others: Vec::new(),
            ids: Vec::new(),
            lefts: Vec::new(),
            rights: Vec::new(),
            heights: Vec::new(),
            root: NIL,
            free: Vec::new(),
            len: 0,
            sorted_layout: false,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn height(&self, n: u32) -> i32 {
        if n == NIL {
            0
        } else {
            i32::from(self.heights[n as usize])
        }
    }

    fn update_height(&mut self, n: u32) {
        let h = 1 + self.height(self.lefts[n as usize]).max(self.height(self.rights[n as usize]));
        self.heights[n as usize] = h as u8;
    }

    fn balance_factor(&self, n: u32) -> i32 {
        self.height(self.lefts[n as usize]) - self.height(self.rights[n as usize])
    }

    fn rotate_right(&mut self, y: u32) -> u32 {
        let x = self.lefts[y as usize];
        let t2 = self.rights[x as usize];
        self.rights[x as usize] = y;
        self.lefts[y as usize] = t2;
        self.update_height(y);
        self.update_height(x);
        x
    }

    fn rotate_left(&mut self, x: u32) -> u32 {
        let y = self.rights[x as usize];
        let t2 = self.lefts[y as usize];
        self.lefts[y as usize] = x;
        self.rights[x as usize] = t2;
        self.update_height(x);
        self.update_height(y);
        y
    }

    fn rebalance(&mut self, n: u32) -> u32 {
        self.update_height(n);
        let bf = self.balance_factor(n);
        if bf > 1 {
            if self.balance_factor(self.lefts[n as usize]) < 0 {
                let l = self.lefts[n as usize];
                self.lefts[n as usize] = self.rotate_left(l);
            }
            self.rotate_right(n)
        } else if bf < -1 {
            if self.balance_factor(self.rights[n as usize]) > 0 {
                let r = self.rights[n as usize];
                self.rights[n as usize] = self.rotate_right(r);
            }
            self.rotate_left(n)
        } else {
            n
        }
    }

    fn key_lt(a: (f64, RowId), b: (f64, RowId)) -> bool {
        match a.0.total_cmp(&b.0) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a.1 < b.1,
        }
    }

    fn alloc(&mut self, key: f64, other: f64, id: RowId) -> u32 {
        if let Some(slot) = self.free.pop() {
            let i = slot as usize;
            self.keys[i] = key;
            self.others[i] = other;
            self.ids[i] = id;
            self.lefts[i] = NIL;
            self.rights[i] = NIL;
            self.heights[i] = 1;
            slot
        } else {
            self.keys.push(key);
            self.others.push(other);
            self.ids.push(id);
            self.lefts.push(NIL);
            self.rights.push(NIL);
            self.heights.push(1);
            (self.keys.len() - 1) as u32
        }
    }

    /// Inserts `(key, id)` with payload `other`. Duplicate `(key, id)` pairs
    /// are rejected (returns `false`).
    pub fn insert(&mut self, key: f64, other: f64, id: RowId) -> bool {
        fn rec(tree: &mut FlatAvlTree, n: u32, key: f64, other: f64, id: RowId) -> (u32, bool) {
            if n == NIL {
                let slot = tree.alloc(key, other, id);
                return (slot, true);
            }
            let nk = (tree.keys[n as usize], tree.ids[n as usize]);
            if (key, id) == nk {
                return (n, false);
            }
            let inserted;
            if FlatAvlTree::key_lt((key, id), nk) {
                let (child, ok) = rec(tree, tree.lefts[n as usize], key, other, id);
                tree.lefts[n as usize] = child;
                inserted = ok;
            } else {
                let (child, ok) = rec(tree, tree.rights[n as usize], key, other, id);
                tree.rights[n as usize] = child;
                inserted = ok;
            }
            (tree.rebalance(n), inserted)
        }
        let (root, ok) = rec(self, self.root, key, other, id);
        self.root = root;
        if ok {
            self.len += 1;
            self.sorted_layout = false;
        }
        ok
    }

    /// Removes `(key, id)`; returns `false` when absent.
    pub fn remove(&mut self, key: f64, id: RowId) -> bool {
        fn min_node(tree: &FlatAvlTree, mut n: u32) -> u32 {
            while tree.lefts[n as usize] != NIL {
                n = tree.lefts[n as usize];
            }
            n
        }
        fn rec(tree: &mut FlatAvlTree, n: u32, key: f64, id: RowId) -> (u32, bool) {
            if n == NIL {
                return (NIL, false);
            }
            let nk = (tree.keys[n as usize], tree.ids[n as usize]);
            let removed;
            if (key, id) == nk {
                let (l, r) = (tree.lefts[n as usize], tree.rights[n as usize]);
                let replacement = if l == NIL || r == NIL {
                    tree.free.push(n);
                    if l == NIL {
                        r
                    } else {
                        l
                    }
                } else {
                    // Two children: splice in the in-order successor.
                    let succ = min_node(tree, r);
                    let (sk, so, sid) =
                        (tree.keys[succ as usize], tree.others[succ as usize], tree.ids[succ as usize]);
                    let (new_r, _) = rec(tree, r, sk, sid);
                    tree.keys[n as usize] = sk;
                    tree.others[n as usize] = so;
                    tree.ids[n as usize] = sid;
                    tree.rights[n as usize] = new_r;
                    n
                };
                if replacement == NIL {
                    return (NIL, true);
                }
                return (tree.rebalance(replacement), true);
            }
            if FlatAvlTree::key_lt((key, id), nk) {
                let (child, ok) = rec(tree, tree.lefts[n as usize], key, id);
                tree.lefts[n as usize] = child;
                removed = ok;
            } else {
                let (child, ok) = rec(tree, tree.rights[n as usize], key, id);
                tree.rights[n as usize] = child;
                removed = ok;
            }
            (tree.rebalance(n), removed)
        }
        let (root, ok) = rec(self, self.root, key, id);
        self.root = root;
        if ok {
            self.len -= 1;
            self.sorted_layout = false;
        }
        ok
    }

    /// Visits every entry with `key <= bound`. While the arena is in sorted
    /// layout this scans only the key column to find the cut, then streams
    /// the prefix of each column sequentially.
    pub fn for_each_leq<F: FnMut(f64, f64, RowId)>(&self, bound: f64, f: &mut F) {
        if self.sorted_layout {
            let end = self.keys.partition_point(|&k| k <= bound);
            for i in 0..end {
                f(self.keys[i], self.others[i], self.ids[i]);
            }
            return;
        }
        fn rec<F: FnMut(f64, f64, RowId)>(tree: &FlatAvlTree, n: u32, bound: f64, f: &mut F) {
            if n == NIL {
                return;
            }
            let i = n as usize;
            if tree.keys[i] <= bound {
                rec(tree, tree.lefts[i], bound, f);
                f(tree.keys[i], tree.others[i], tree.ids[i]);
                rec(tree, tree.rights[i], bound, f);
            } else {
                // Entire right subtree exceeds the bound.
                rec(tree, tree.lefts[i], bound, f);
            }
        }
        rec(self, self.root, bound, f);
    }

    /// Visits every entry with `lo < key <= hi` — the incremental-window
    /// scan. Binary searches touch only the key column in sorted layout.
    pub fn for_each_in<F: FnMut(f64, f64, RowId)>(&self, lo: f64, hi: f64, f: &mut F) {
        if self.sorted_layout {
            let start = self.keys.partition_point(|&k| k <= lo);
            let end = start + self.keys[start..].partition_point(|&k| k <= hi);
            for i in start..end {
                f(self.keys[i], self.others[i], self.ids[i]);
            }
            return;
        }
        fn rec<F: FnMut(f64, f64, RowId)>(tree: &FlatAvlTree, n: u32, lo: f64, hi: f64, f: &mut F) {
            if n == NIL {
                return;
            }
            let i = n as usize;
            let key = tree.keys[i];
            if key > lo {
                rec(tree, tree.lefts[i], lo, hi, f);
            }
            if key > lo && key <= hi {
                f(key, tree.others[i], tree.ids[i]);
            }
            if key <= hi {
                rec(tree, tree.rights[i], lo, hi, f);
            }
        }
        rec(self, self.root, lo, hi, f);
    }

    /// Maximum node depth (testing hook: must stay O(log n)).
    pub fn depth(&self) -> usize {
        self.height(self.root) as usize
    }

    /// Total arena slots (live + freed).
    pub fn arena_len(&self) -> usize {
        self.keys.len()
    }

    /// Bulk-builds a perfectly balanced tree from entries pre-sorted by
    /// `(key, id)`, with every slot at its in-order column position. O(n).
    pub fn build_from_sorted(entries: &[(f64, f64, RowId)]) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| (w[0].0, w[0].2) < (w[1].0, w[1].2)),
            "entries must be strictly sorted by (key, id)"
        );
        let n = entries.len();
        let mut tree = FlatAvlTree {
            keys: entries.iter().map(|e| e.0).collect(),
            others: entries.iter().map(|e| e.1).collect(),
            ids: entries.iter().map(|e| e.2).collect(),
            lefts: vec![NIL; n],
            rights: vec![NIL; n],
            heights: vec![1; n],
            root: NIL,
            free: Vec::new(),
            len: n,
            sorted_layout: true,
        };

        /// Wires up `lo..hi` (exclusive) and returns (root index, height).
        fn rec(lefts: &mut [u32], rights: &mut [u32], heights: &mut [u8], lo: usize, hi: usize) -> (u32, u8) {
            if lo >= hi {
                return (NIL, 0);
            }
            let mid = lo + (hi - lo) / 2;
            let (l, hl) = rec(lefts, rights, heights, lo, mid);
            let (r, hr) = rec(lefts, rights, heights, mid + 1, hi);
            lefts[mid] = l;
            rights[mid] = r;
            let h = 1 + hl.max(hr);
            heights[mid] = h;
            (mid as u32, h)
        }
        let (root, _) = rec(&mut tree.lefts, &mut tree.rights, &mut tree.heights, 0, n);
        tree.root = root;
        tree
    }
}

impl HeapSize for FlatAvlTree {
    fn heap_bytes(&self) -> usize {
        self.keys.heap_bytes()
            + self.others.heap_bytes()
            + self.ids.heap_bytes()
            + self.lefts.heap_bytes()
            + self.rights.heap_bytes()
            + self.heights.heap_bytes()
            + self.free.heap_bytes()
    }
}

/// The dual flat-AVL logical-time index: column-layout twin of
/// [`crate::avl::AvlIndex`], with an epoch counter for cache invalidation.
#[derive(Debug, Clone, Default)]
pub struct FlatAvlIndex {
    /// Keyed on logical start; `other` is the logical end.
    starts: FlatAvlTree,
    /// Keyed on logical end; `other` is the logical start.
    ends: FlatAvlTree,
    /// Bumped by every dynamic mutation; see [`FlatAvlIndex::epoch`].
    epoch: u64,
}

impl FlatAvlIndex {
    /// Inserts one RCC into both trees (O(log n) each), bumping the epoch.
    pub fn insert(&mut self, rcc: &LogicalRcc) -> bool {
        let a = self.starts.insert(rcc.start, rcc.end, rcc.id);
        let b = self.ends.insert(rcc.end, rcc.start, rcc.id);
        debug_assert_eq!(a, b, "trees must stay in lockstep");
        if a && b {
            self.epoch += 1;
        }
        a && b
    }

    /// Removes one RCC from both trees (O(log n) each), bumping the epoch.
    pub fn remove(&mut self, rcc: &LogicalRcc) -> bool {
        let a = self.starts.remove(rcc.start, rcc.id);
        let b = self.ends.remove(rcc.end, rcc.id);
        debug_assert_eq!(a, b, "trees must stay in lockstep");
        if a && b {
            self.epoch += 1;
        }
        a && b
    }

    /// Monotone mutation counter: any cached result derived from this index
    /// is stale once the epoch it was computed under no longer matches.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Visits RCCs *created* in the window `lo < start <= hi`.
    pub fn for_each_created_in<F: FnMut(f64, f64, RowId)>(&self, lo: f64, hi: f64, mut f: F) {
        self.starts.for_each_in(lo, hi, &mut |k, o, id| f(k, o, id));
    }

    /// Visits RCCs *settled* in the window `lo < end <= hi`.
    pub fn for_each_settled_in<F: FnMut(f64, f64, RowId)>(&self, lo: f64, hi: f64, mut f: F) {
        self.ends.for_each_in(lo, hi, &mut |k, o, id| f(o, k, id));
    }

    /// Testing/inspection hook: depths of the two trees.
    pub fn depths(&self) -> (usize, usize) {
        (self.starts.depth(), self.ends.depth())
    }
}

impl crate::traits::EventRangeScan for FlatAvlIndex {
    fn scan_created_in(&self, lo: f64, hi: f64, f: &mut dyn FnMut(f64, f64, RowId)) {
        self.for_each_created_in(lo, hi, f);
    }

    fn scan_settled_in(&self, lo: f64, hi: f64, f: &mut dyn FnMut(f64, f64, RowId)) {
        self.for_each_settled_in(lo, hi, f);
    }
}

impl HeapSize for FlatAvlIndex {
    fn heap_bytes(&self) -> usize {
        self.starts.heap_bytes() + self.ends.heap_bytes()
    }
}

impl LogicalTimeIndex for FlatAvlIndex {
    fn name(&self) -> &'static str {
        "flat-avl"
    }

    fn build(rccs: &[LogicalRcc]) -> Self {
        let mut by_start: Vec<(f64, f64, RowId)> =
            rccs.iter().map(|r| (r.start, r.end, r.id)).collect();
        by_start.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        let mut by_end: Vec<(f64, f64, RowId)> =
            rccs.iter().map(|r| (r.end, r.start, r.id)).collect();
        by_end.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        FlatAvlIndex {
            starts: FlatAvlTree::build_from_sorted(&by_start),
            ends: FlatAvlTree::build_from_sorted(&by_end),
            epoch: 0,
        }
    }

    fn len(&self) -> usize {
        self.starts.len()
    }

    fn active_at(&self, t_star: f64) -> Vec<RowId> {
        let mut out = Vec::new();
        self.starts.for_each_leq(t_star, &mut |_start, end, id| {
            if end > t_star {
                out.push(id);
            }
        });
        out.sort_unstable();
        out
    }

    fn settled_by(&self, t_star: f64) -> Vec<RowId> {
        let mut out = Vec::new();
        self.ends.for_each_leq(t_star, &mut |_end, _start, id| out.push(id));
        out.sort_unstable();
        out
    }

    fn created_by(&self, t_star: f64) -> Vec<RowId> {
        let mut out = Vec::new();
        self.starts.for_each_leq(t_star, &mut |_s, _e, id| out.push(id));
        out.sort_unstable();
        out
    }
}

impl MaintainableIndex for FlatAvlIndex {
    fn insert_logical(&mut self, rcc: &LogicalRcc) -> bool {
        self.insert(rcc)
    }

    fn remove_logical(&mut self, rcc: &LogicalRcc) -> bool {
        self.remove(rcc)
    }

    fn current_epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avl::AvlIndex;

    fn rcc(id: RowId, start: f64, end: f64) -> LogicalRcc {
        LogicalRcc { id, avail: domd_data::AvailId(1), start, end }
    }

    fn random_rccs(n: u32, seed: u64) -> Vec<LogicalRcc> {
        // Small deterministic LCG; collisions in start/end values are
        // intentional to exercise the (key, id) tiebreaker.
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        (0..n)
            .map(|i| {
                let s = f64::from(next() % 120);
                let w = f64::from(next() % 40) + 1.0;
                rcc(i, s, s + w)
            })
            .collect()
    }

    #[test]
    fn matches_aos_avl_on_random_sets() {
        let rs = random_rccs(700, 9);
        let flat = FlatAvlIndex::build(&rs);
        let avl = AvlIndex::build(&rs);
        for t in [0.0, 10.0, 33.3, 60.0, 99.9, 120.0, 161.0] {
            assert_eq!(flat.active_at(t), avl.active_at(t), "active t={t}");
            assert_eq!(flat.settled_by(t), avl.settled_by(t), "settled t={t}");
            assert_eq!(flat.created_by(t), avl.created_by(t), "created t={t}");
            assert_eq!(flat.not_created_by(t), avl.not_created_by(t), "not-created t={t}");
        }
    }

    #[test]
    fn dynamic_maintenance_matches_aos_avl() {
        let rs = random_rccs(300, 77);
        let mut flat = FlatAvlIndex::build(&rs);
        let mut avl = AvlIndex::build(&rs);
        for r in rs.iter().step_by(3) {
            assert!(flat.remove(r));
            assert!(avl.remove(r));
        }
        for i in 0..100u32 {
            let r = rcc(1000 + i, f64::from(i % 50), f64::from(i % 50) + 7.0);
            assert!(flat.insert(&r));
            assert!(avl.insert(&r));
        }
        assert_eq!(flat.len(), avl.len());
        for t in [5.0, 25.0, 48.0, 90.0] {
            assert_eq!(flat.active_at(t), avl.active_at(t), "active t={t}");
            assert_eq!(flat.settled_by(t), avl.settled_by(t), "settled t={t}");
        }
    }

    #[test]
    fn epoch_bumps_on_mutation_only() {
        let rs = random_rccs(50, 5);
        let mut idx = FlatAvlIndex::build(&rs);
        assert_eq!(idx.epoch(), 0);
        idx.active_at(10.0);
        assert_eq!(idx.epoch(), 0, "queries must not bump the epoch");
        let r = rcc(999, 1.0, 2.0);
        assert!(idx.insert(&r));
        assert_eq!(idx.epoch(), 1);
        assert!(!idx.insert(&r), "duplicate insert rejected");
        assert_eq!(idx.epoch(), 1, "failed insert must not bump");
        assert!(idx.remove(&r));
        assert_eq!(idx.epoch(), 2);
        assert!(!idx.remove(&r));
        assert_eq!(idx.epoch(), 2, "failed remove must not bump");
    }

    #[test]
    fn balanced_depth_after_bulk_build() {
        let rs: Vec<LogicalRcc> =
            (0..4096).map(|i| rcc(i, f64::from(i) * 0.01, f64::from(i) * 0.01 + 5.0)).collect();
        let idx = FlatAvlIndex::build(&rs);
        let (ds, de) = idx.depths();
        assert!(ds <= 18 && de <= 18, "depths ({ds}, {de}) exceed AVL bound");
    }

    #[test]
    fn window_scans_match_filter() {
        let rs = random_rccs(500, 13);
        let idx = FlatAvlIndex::build(&rs);
        let mut got = Vec::new();
        idx.for_each_created_in(20.0, 40.0, |s, _e, id| {
            assert!(s > 20.0 && s <= 40.0);
            got.push(id);
        });
        got.sort_unstable();
        let mut want: Vec<RowId> =
            rs.iter().filter(|r| r.start > 20.0 && r.start <= 40.0).map(|r| r.id).collect();
        want.sort_unstable();
        assert_eq!(got, want);

        let mut got = Vec::new();
        idx.for_each_settled_in(30.0, 60.0, |_s, e, id| {
            assert!(e > 30.0 && e <= 60.0);
            got.push(id);
        });
        got.sort_unstable();
        let mut want: Vec<RowId> =
            rs.iter().filter(|r| r.end > 30.0 && r.end <= 60.0).map(|r| r.id).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn mutation_clears_sorted_layout_but_scans_stay_correct() {
        let rs = random_rccs(200, 3);
        let mut idx = FlatAvlIndex::build(&rs);
        // Mutate so scans fall back to the pointer walk, then verify.
        let extra = rcc(5000, 15.5, 55.5);
        idx.insert(&extra);
        let act = idx.active_at(20.0);
        assert!(act.contains(&5000));
        let mut want: Vec<RowId> = rs
            .iter()
            .filter(|r| r.start <= 20.0 && r.end > 20.0)
            .map(|r| r.id)
            .chain(std::iter::once(5000))
            .collect();
        want.sort_unstable();
        assert_eq!(act, want);
    }
}
