//! Shared types for Status Query processing.
//!
//! The index structures of Section 4 store `(t*_start, t*_end, ID)` per RCC:
//! the creation and settlement positions of the RCC mapped onto its avail's
//! logical timeline (Equation 1), plus a dense row id back into the RCC
//! table. All three index designs (naive join, dual AVL, interval tree)
//! answer the four retrieval sets of Equations 3–6 at a logical timestamp.

use domd_data::avail::AvailId;
use domd_data::dataset::Dataset;
use domd_data::rcc::RccStatus;
use std::cmp::Ordering;

/// A dense row id into the RCC table slice the index was built from.
pub type RowId = u32;

/// Totally-ordered `f64` wrapper so logical times can key search trees.
#[derive(Debug, Clone, Copy)]
pub struct OrderedF64(pub f64);

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One RCC projected onto the logical timeline: `(t*_start, t*_end, ID)`
/// plus its owning avail (needed for per-avail feature grouping).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogicalRcc {
    /// Dense row id into the source RCC slice.
    pub id: RowId,
    /// Owning avail.
    pub avail: AvailId,
    /// Logical creation position `t*_start` (percent of planned duration).
    pub start: f64,
    /// Logical settlement position `t*_end`; `start <= end` always.
    pub end: f64,
}

impl LogicalRcc {
    /// Status of this RCC at logical time `t_star` (Equations 3–6).
    pub fn status_at(&self, t_star: f64) -> RccStatus {
        domd_data::rcc::status_at(self.start, self.end, t_star)
    }
}

/// Projects every RCC of `dataset` onto its avail's logical timeline.
/// Row ids are positions in `dataset.rccs()`.
pub fn project_dataset(dataset: &Dataset) -> Vec<LogicalRcc> {
    let rccs = dataset.rccs();
    let mut out = Vec::with_capacity(rccs.len());
    for (i, r) in rccs.iter().enumerate() {
        // domd-lint: allow(no-panic) — the generator and loaders only emit RCCs for avails present in the table
        let a = dataset.avail(r.avail).expect("RCC references existing avail");
        let planned = a.planned_duration().max(1);
        let start = domd_data::logical_time(r.created, a.actual_start, planned);
        let end = domd_data::logical_time(r.settled, a.actual_start, planned);
        out.push(LogicalRcc { id: i as RowId, avail: r.avail, start, end });
    }
    out
}

/// Heap-memory accounting used for the Table 6 comparison: exact owned
/// heap bytes of an index structure (excluding the shallow `size_of` of the
/// handle itself).
pub trait HeapSize {
    /// Owned heap bytes reachable from `self`.
    fn heap_bytes(&self) -> usize;
}

impl<T> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domd_data::{generate, GeneratorConfig};

    #[test]
    fn ordered_f64_total_order() {
        let mut v = vec![OrderedF64(3.0), OrderedF64(-1.0), OrderedF64(2.5)];
        v.sort();
        assert_eq!(v, vec![OrderedF64(-1.0), OrderedF64(2.5), OrderedF64(3.0)]);
        assert!(OrderedF64(f64::NAN) == OrderedF64(f64::NAN)); // total_cmp semantics
    }

    #[test]
    fn projection_matches_dataset() {
        let cfg = GeneratorConfig { n_avails: 10, target_rccs: 500, scale: 1, seed: 3 };
        let ds = generate(&cfg);
        let proj = project_dataset(&ds);
        assert_eq!(proj.len(), ds.rccs().len());
        for (i, lr) in proj.iter().enumerate() {
            assert_eq!(lr.id as usize, i);
            assert!(lr.start <= lr.end, "interval must be well formed");
            let r = &ds.rccs()[i];
            assert_eq!(lr.avail, r.avail);
            // Durations of at least a day map to a positive logical width.
            assert!(lr.end > lr.start);
        }
    }

    #[test]
    fn vec_heap_bytes_tracks_capacity() {
        let v: Vec<u64> = Vec::with_capacity(16);
        assert_eq!(v.heap_bytes(), 16 * 8);
    }
}
