//! Group-by index structures of Algorithm StatusQ: the RCC-Type-Tree and
//! the SWLIN tree (Section 4.2).
//!
//! Status Queries group by RCC type and by SWLIN hierarchy level (Figure 3).
//! * The **RCC-Type-Tree** partitions row ids by the three RCC categories.
//! * The **SWLIN tree** exploits that the 8-digit codes form a radix
//!   hierarchy (Figure 1): sorting `(packed_swlin, id)` pairs makes every
//!   hierarchy node a contiguous range, so "subtree of hierarchies
//!   specified in the GROUP BY conditions" is a pair of binary searches.

use crate::types::{HeapSize, RowId};
use domd_data::rcc::{RccType, Swlin};

/// Partition of row ids by RCC type, each list ascending.
#[derive(Debug, Clone, Default)]
pub struct RccTypeTree {
    by_type: [Vec<RowId>; 3],
}

impl RccTypeTree {
    /// Builds from `(type, id)` pairs (ids need not be presorted).
    pub fn build(rows: impl IntoIterator<Item = (RccType, RowId)>) -> Self {
        let mut by_type: [Vec<RowId>; 3] = Default::default();
        for (t, id) in rows {
            by_type[t.index()].push(id);
        }
        for v in &mut by_type {
            v.sort_unstable();
        }
        RccTypeTree { by_type }
    }

    /// Ascending row ids of the given type.
    pub fn ids_of(&self, t: RccType) -> &[RowId] {
        &self.by_type[t.index()]
    }

    /// Inserts one `(type, id)` pair, keeping the partition ascending.
    /// `false` when the id is already present for that type.
    pub fn insert(&mut self, t: RccType, id: RowId) -> bool {
        let v = &mut self.by_type[t.index()];
        match v.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                v.insert(pos, id);
                true
            }
        }
    }

    /// Removes one `(type, id)` pair; `false` when absent.
    pub fn remove(&mut self, t: RccType, id: RowId) -> bool {
        let v = &mut self.by_type[t.index()];
        match v.binary_search(&id) {
            Ok(pos) => {
                v.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Total rows indexed.
    pub fn len(&self) -> usize {
        self.by_type.iter().map(Vec::len).sum()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl HeapSize for RccTypeTree {
    fn heap_bytes(&self) -> usize {
        self.by_type.iter().map(|v| v.capacity() * std::mem::size_of::<RowId>()).sum()
    }
}

/// Radix view of the SWLIN hierarchy: `(packed code, row id)` pairs sorted
/// by code, where each hierarchy node (prefix) owns a contiguous range.
#[derive(Debug, Clone, Default)]
pub struct SwlinTree {
    entries: Vec<(u32, RowId)>,
}

impl SwlinTree {
    /// Builds from `(swlin, id)` pairs.
    pub fn build(rows: impl IntoIterator<Item = (Swlin, RowId)>) -> Self {
        let mut entries: Vec<(u32, RowId)> =
            rows.into_iter().map(|(w, id)| (w.packed(), id)).collect();
        entries.sort_unstable();
        SwlinTree { entries }
    }

    /// Total rows indexed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts one `(swlin, id)` pair, keeping entries sorted. `false` when
    /// the exact pair is already present.
    pub fn insert(&mut self, swlin: Swlin, id: RowId) -> bool {
        let entry = (swlin.packed(), id);
        match self.entries.binary_search(&entry) {
            Ok(_) => false,
            Err(pos) => {
                self.entries.insert(pos, entry);
                true
            }
        }
    }

    /// Removes one `(swlin, id)` pair; `false` when absent.
    pub fn remove(&mut self, swlin: Swlin, id: RowId) -> bool {
        let entry = (swlin.packed(), id);
        match self.entries.binary_search(&entry) {
            Ok(pos) => {
                self.entries.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// The contiguous entry range of the hierarchy node `prefix` at depth
    /// `len` digits (e.g. `prefix=434, len=3` for subtree "434").
    pub fn range_for_prefix(&self, prefix: u32, len: u32) -> &[(u32, RowId)] {
        assert!((1..=8).contains(&len), "SWLIN depth must be 1..=8");
        let unit = 10u32.pow(8 - len);
        let lo = prefix * unit;
        let hi = lo + unit; // exclusive
        let start = self.entries.partition_point(|&(w, _)| w < lo);
        let end = self.entries.partition_point(|&(w, _)| w < hi);
        &self.entries[start..end]
    }

    /// Ascending row ids under the hierarchy node `prefix` at depth `len`.
    pub fn ids_for_prefix(&self, prefix: u32, len: u32) -> Vec<RowId> {
        let mut ids: Vec<RowId> =
            self.range_for_prefix(prefix, len).iter().map(|&(_, id)| id).collect();
        ids.sort_unstable();
        ids
    }

    /// The distinct child prefixes (one digit deeper) under `prefix`/`len`;
    /// `len = 0` with `prefix = 0` enumerates the root's children (first
    /// digits present in the data).
    pub fn child_prefixes(&self, prefix: u32, len: u32) -> Vec<u32> {
        assert!(len < 8, "SWLIN codes have 8 digits");
        let slice = if len == 0 {
            assert_eq!(prefix, 0, "root enumeration takes prefix 0");
            &self.entries[..]
        } else {
            self.range_for_prefix(prefix, len)
        };
        let unit = 10u32.pow(8 - (len + 1));
        let mut out = Vec::new();
        for &(w, _) in slice {
            let child = w / unit;
            if out.last() != Some(&child) {
                out.push(child);
            }
        }
        out
    }
}

impl HeapSize for SwlinTree {
    fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(u32, RowId)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &str) -> Swlin {
        s.parse().unwrap()
    }

    #[test]
    fn type_tree_partitions() {
        let t = RccTypeTree::build([
            (RccType::Growth, 3),
            (RccType::NewWork, 1),
            (RccType::Growth, 0),
            (RccType::NewGrowth, 2),
        ]);
        assert_eq!(t.ids_of(RccType::Growth), &[0, 3]);
        assert_eq!(t.ids_of(RccType::NewWork), &[1]);
        assert_eq!(t.ids_of(RccType::NewGrowth), &[2]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn swlin_prefix_ranges() {
        let t = SwlinTree::build([
            (w("434-11-001"), 0),
            (w("434-12-900"), 1),
            (w("435-00-000"), 2),
            (w("911-90-001"), 3),
            (w("430-00-000"), 4),
        ]);
        assert_eq!(t.ids_for_prefix(4, 1), vec![0, 1, 2, 4]);
        assert_eq!(t.ids_for_prefix(43, 2), vec![0, 1, 2, 4]);
        assert_eq!(t.ids_for_prefix(434, 3), vec![0, 1]);
        assert_eq!(t.ids_for_prefix(43411, 5), vec![0]);
        assert_eq!(t.ids_for_prefix(9, 1), vec![3]);
        assert!(t.ids_for_prefix(5, 1).is_empty());
    }

    #[test]
    fn swlin_children_enumeration() {
        let t = SwlinTree::build([
            (w("434-11-001"), 0),
            (w("435-00-000"), 1),
            (w("911-90-001"), 2),
            (w("100-00-000"), 3),
        ]);
        assert_eq!(t.child_prefixes(0, 0), vec![1, 4, 9]);
        assert_eq!(t.child_prefixes(4, 1), vec![43]);
        assert_eq!(t.child_prefixes(43, 2), vec![434, 435]);
    }

    #[test]
    fn full_depth_prefix_is_exact_code() {
        let t = SwlinTree::build([(w("434-11-001"), 7), (w("434-11-002"), 8)]);
        assert_eq!(t.ids_for_prefix(43411001, 8), vec![7]);
        assert_eq!(t.ids_for_prefix(43411002, 8), vec![8]);
    }

    #[test]
    fn type_tree_dynamic_maintenance() {
        let mut t = RccTypeTree::build([(RccType::Growth, 0), (RccType::Growth, 4)]);
        assert!(t.insert(RccType::Growth, 2));
        assert!(!t.insert(RccType::Growth, 2), "duplicate rejected");
        assert_eq!(t.ids_of(RccType::Growth), &[0, 2, 4]);
        assert!(t.remove(RccType::Growth, 0));
        assert!(!t.remove(RccType::Growth, 0), "double remove rejected");
        assert_eq!(t.ids_of(RccType::Growth), &[2, 4]);
    }

    #[test]
    fn swlin_tree_dynamic_maintenance() {
        let mut t = SwlinTree::build([(w("434-11-001"), 0), (w("911-90-001"), 1)]);
        assert!(t.insert(w("435-00-000"), 2));
        assert!(!t.insert(w("435-00-000"), 2), "duplicate rejected");
        assert_eq!(t.ids_for_prefix(4, 1), vec![0, 2]);
        assert!(t.remove(w("434-11-001"), 0));
        assert!(!t.remove(w("434-11-001"), 0), "double remove rejected");
        assert_eq!(t.ids_for_prefix(4, 1), vec![2]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn leading_zero_codes_sort_first() {
        let t = SwlinTree::build([(w("004-11-001"), 0), (w("434-11-001"), 1)]);
        assert_eq!(t.ids_for_prefix(0, 1), vec![0]);
        assert_eq!(t.child_prefixes(0, 0), vec![0, 4]);
    }
}
