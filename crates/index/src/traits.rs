//! The retrieval interface every logical-time index design implements
//! (Equations 3–6 of the paper).

use crate::types::{HeapSize, LogicalRcc, RowId};

/// An index over `(t*_start, t*_end, ID)` triples answering the four
/// Status Query retrieval sets at any logical timestamp `t*`:
///
/// * `R^A` — **active**: point/stab query at `t*` (`start <= t* < end`);
/// * `R^S` — **settled**: overlap with `(-inf, t*]` on the end position
///   (`end <= t*`);
/// * `R^C` — **created**: `R^A ∪ R^S` (`start <= t*`);
/// * `R^N` — **not created**: the complement of `R^C`.
///
/// Implementations must return row ids in ascending order so set algebra
/// over results is cheap and deterministic.
pub trait LogicalTimeIndex: HeapSize {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;

    /// Builds the index over the given projected RCCs.
    fn build(rccs: &[LogicalRcc]) -> Self
    where
        Self: Sized;

    /// Number of indexed RCCs.
    fn len(&self) -> usize;

    /// True when no RCCs are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `R^A_{t*}`: ids of RCCs active at `t_star`, ascending.
    fn active_at(&self, t_star: f64) -> Vec<RowId>;

    /// `R^S_{t*}`: ids of RCCs settled by `t_star`, ascending.
    fn settled_by(&self, t_star: f64) -> Vec<RowId>;

    /// `R^C_{t*}`: ids of RCCs created by `t_star`, ascending.
    /// Default: merge of active and settled (they are disjoint).
    fn created_by(&self, t_star: f64) -> Vec<RowId> {
        let a = self.active_at(t_star);
        let s = self.settled_by(t_star);
        merge_disjoint_sorted(&a, &s)
    }

    /// `R^N_{t*}`: ids of RCCs not yet created at `t_star`, ascending.
    /// Default: complement of `created_by` against the dense id universe.
    fn not_created_by(&self, t_star: f64) -> Vec<RowId> {
        let created = self.created_by(t_star);
        complement_sorted(&created, self.len() as RowId)
    }
}

/// A [`LogicalTimeIndex`] supporting the O(log n) dynamic maintenance of
/// Section 4.1, with a monotone *epoch* counter that memoizing layers key
/// on: every successful mutation bumps the epoch, so a snapshot cached
/// under an older epoch can never be served again.
pub trait MaintainableIndex: LogicalTimeIndex {
    /// Inserts one projected RCC; `false` if `(positions, id)` already exist.
    fn insert_logical(&mut self, rcc: &LogicalRcc) -> bool;

    /// Removes one projected RCC; `false` when absent.
    fn remove_logical(&mut self, rcc: &LogicalRcc) -> bool;

    /// Mutation counter; bumped by every successful insert/remove.
    fn current_epoch(&self) -> u64;
}

/// Windowed event scans driving the incremental sweep of Section 4.3:
/// stream every row whose start (created) or end (settled) position falls
/// in `(lo, hi]`, as `(start, end, id)`. Implemented by both the
/// pointer-based and the arena-backed dual-AVL index.
pub trait EventRangeScan {
    /// Rows with `lo < start <= hi`.
    fn scan_created_in(&self, lo: f64, hi: f64, f: &mut dyn FnMut(f64, f64, RowId));

    /// Rows with `lo < end <= hi`.
    fn scan_settled_in(&self, lo: f64, hi: f64, f: &mut dyn FnMut(f64, f64, RowId));
}

/// Merges two ascending, disjoint id lists into one ascending list.
pub(crate) fn merge_disjoint_sorted(a: &[RowId], b: &[RowId]) -> Vec<RowId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Ascending ids in `0..universe` that are absent from ascending `present`.
pub(crate) fn complement_sorted(present: &[RowId], universe: RowId) -> Vec<RowId> {
    let mut out = Vec::with_capacity(universe as usize - present.len());
    let mut j = 0usize;
    for id in 0..universe {
        if j < present.len() && present[j] == id {
            j += 1;
        } else {
            out.push(id);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_preserves_order() {
        assert_eq!(merge_disjoint_sorted(&[1, 4, 9], &[2, 3, 10]), vec![1, 2, 3, 4, 9, 10]);
        assert_eq!(merge_disjoint_sorted(&[], &[5]), vec![5]);
        assert_eq!(merge_disjoint_sorted(&[5], &[]), vec![5]);
    }

    #[test]
    fn complement_basics() {
        assert_eq!(complement_sorted(&[1, 3], 5), vec![0, 2, 4]);
        assert_eq!(complement_sorted(&[], 3), vec![0, 1, 2]);
        assert_eq!(complement_sorted(&[0, 1, 2], 3), Vec::<RowId>::new());
    }
}
