//! Golden-output test for `--format json`: the byte-exact shape and the
//! stable (file, line, rule-id) ordering CI diffs rely on. A formatting
//! or ordering change must update this file deliberately.

use domd_analyzer::{Finding, Report, Rule, Waiver};

#[test]
fn json_report_is_byte_stable_and_sorted() {
    let f = |file: &str, line: usize, rule, message: &str| Finding {
        file: file.into(),
        line,
        rule,
        message: message.into(),
    };
    let mut r = Report { files_scanned: 2, ..Report::default() };
    // Deliberately scrambled: sort() must order by (file, line, rule id).
    r.violations = vec![
        f("b.rs", 1, Rule::AckOrder, "m3"),
        f("a.rs", 2, Rule::NoPanic, "m1"),
        f("a.rs", 2, Rule::LockOrder, "m2"),
    ];
    r.waivers = vec![Waiver {
        file: "a.rs".into(),
        line: 7,
        rule: Rule::WalOrder,
        justification: "derived \"safely\"".into(),
    }];
    r.sort();

    let golden = concat!(
        "{\n",
        "  \"clean\": false,\n",
        "  \"files_scanned\": 2,\n",
        "  \"violations\": [\n",
        "    {\"file\": \"a.rs\", \"line\": 2, \"rule\": \"lock-order\", \"message\": \"m2\"},\n",
        "    {\"file\": \"a.rs\", \"line\": 2, \"rule\": \"no-panic\", \"message\": \"m1\"},\n",
        "    {\"file\": \"b.rs\", \"line\": 1, \"rule\": \"ack-order\", \"message\": \"m3\"}\n",
        "  ],\n",
        "  \"waivers\": [\n",
        "    {\"file\": \"a.rs\", \"line\": 7, \"rule\": \"wal-order\", ",
        "\"justification\": \"derived \\\"safely\\\"\"}\n",
        "  ]\n",
        "}\n",
    );
    assert_eq!(r.render_json(), golden);
}

#[test]
fn empty_json_report_is_byte_stable() {
    let r = Report::default();
    assert_eq!(
        r.render_json(),
        "{\n  \"clean\": true,\n  \"files_scanned\": 0,\n  \"violations\": [],\n  \"waivers\": []\n}\n"
    );
}
