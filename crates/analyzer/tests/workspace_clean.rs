//! The workspace itself must stay lint-clean: this test makes the
//! invariant part of `cargo test`, so a change cannot land a stray
//! `unwrap()`, raw `thread::spawn`, wall-clock read, or unlogged index
//! mutation even when `scripts/lint.sh` is skipped.

use domd_analyzer::{scan_workspace, Rule};
use std::path::Path;

#[test]
fn workspace_has_zero_unwaived_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = scan_workspace(&root).expect("workspace is readable");
    assert!(report.files_scanned >= 60, "scan saw only {} files", report.files_scanned);
    assert!(
        report.is_clean(),
        "domd-lint violations in the workspace:\n{}",
        report.render_human()
    );
}

#[test]
fn every_waiver_is_justified_and_attributed() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = scan_workspace(&root).expect("workspace is readable");
    for w in &report.waivers {
        assert!(
            w.justification.len() >= 10,
            "{}:{} waives {} with a trivial justification: {:?}",
            w.file,
            w.line,
            w.rule.id(),
            w.justification
        );
    }
    // Mutating the index without a same-body append is only waivable in
    // the R4-governed files: the durable wrapper's replay path and the
    // delta module, whose applications are derived from the WAL's order.
    for w in report.waivers.iter().filter(|w| w.rule == Rule::WalOrder) {
        assert!(
            domd_analyzer::config::WAL_ORDER_FILES.contains(&w.file.as_str()),
            "unexpected wal-order waiver in {}",
            w.file
        );
    }
    // The interprocedural rules are similarly fenced: their waivers may
    // only appear in the files the rules govern, so an exemption cannot
    // quietly migrate into ungoverned code.
    for w in report.waivers.iter().filter(|w| w.rule == Rule::LockOrder) {
        assert!(
            domd_analyzer::config::LOCK_ORDER_FILES.contains(&w.file.as_str()),
            "unexpected lock-order waiver in {}",
            w.file
        );
    }
    for w in report.waivers.iter().filter(|w| w.rule == Rule::AckOrder) {
        assert!(
            domd_analyzer::config::ACK_ORDER_FILES.contains(&w.file.as_str()),
            "unexpected ack-order waiver in {}",
            w.file
        );
    }
    for w in report.waivers.iter().filter(|w| w.rule == Rule::ExitCodeMap) {
        assert!(
            w.file == domd_analyzer::config::EXIT_MAP_FILE
                || w.file == domd_analyzer::config::ERROR_ENUM_FILE,
            "unexpected exit-code-map waiver in {}",
            w.file
        );
    }
}
