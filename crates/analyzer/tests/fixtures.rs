//! The fixture corpus is the analyzer's ground truth: every rule has a
//! violating and a conforming case with exact expected findings, and
//! the same corpus backs `domd-lint --self-check`, so CI's gate and
//! this suite can never drift apart.

use domd_analyzer::{scan_file, self_check, Rule};
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn read(name: &str) -> String {
    let path = fixtures_dir().join(name);
    match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!("fixture {} unreadable: {e}", path.display()),
    }
}

#[test]
fn self_check_passes_on_the_shipped_corpus() {
    let report = self_check(&fixtures_dir());
    assert!(report.passed(), "{}", report.render());
    assert!(report.fixtures >= 10, "corpus shrank to {} fixtures", report.fixtures);
}

#[test]
fn self_check_fails_on_a_seeded_violation() {
    // Render a fixture that promises to be clean but is not: the gate
    // must fail it, proving `--self-check` cannot pass vacuously.
    let dir = std::env::temp_dir().join(format!("domd-lint-seeded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp fixture dir");
    std::fs::write(
        dir.join("seeded.rs"),
        "// lint-fixture: path=crates/core/src/seeded.rs\n\
         pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("write seeded fixture");
    let report = self_check(&dir);
    assert!(!report.passed(), "a seeded violation must fail the self-check");
    assert!(
        report.problems.iter().any(|p| p.contains("no-panic")),
        "the failure must name the rule: {:?}",
        report.problems
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn self_check_fails_when_a_rule_loses_corpus_coverage() {
    // A corpus with only one clean file is a corpus that tests nothing.
    let dir = std::env::temp_dir().join(format!("domd-lint-gap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp fixture dir");
    std::fs::write(dir.join("only.rs"), "pub fn ok() {}\n").expect("write fixture");
    let report = self_check(&dir);
    assert!(!report.passed());
    for rule in Rule::ALL {
        assert!(
            report.problems.iter().any(|p| p.contains(rule.id())),
            "missing coverage complaint for {}",
            rule.id()
        );
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn violating_fixtures_report_exactly_their_markers() {
    // Spot-check the per-rule counts so a rules regression cannot hide
    // behind marker edits.
    let cases = [
        ("r1_no_panic_violate.rs", Rule::NoPanic, 7),
        ("r2_thread_violate.rs", Rule::ThreadSpawn, 3),
        // Two default-hasher maps on one line produce two raw findings
        // (self-check dedupes per line; the raw scan does not).
        ("r3_nondet_violate.rs", Rule::Nondeterminism, 7),
        ("r4_wal_violate.rs", Rule::WalOrder, 3),
        ("r4_delta_violate.rs", Rule::WalOrder, 2),
        ("r5_header_violate.rs", Rule::LintHeader, 1),
        // Four lock-order findings: a same-body inversion, a same-body
        // re-acquire, and two held-across-call cases (one an inversion
        // through `relay` → `reindex`, one a same-class re-acquire).
        ("r7_lock_violate.rs", Rule::LockOrder, 4),
        ("r8_ack_violate.rs", Rule::AckOrder, 2),
        // Six: unmapped variant, stale arm + duplicate code (same line),
        // wildcard, a documented code nothing maps to, an omitted code.
        ("r9_exit_violate.rs", Rule::ExitCodeMap, 6),
    ];
    for (name, rule, expected) in cases {
        let source = read(name);
        let pretend = source
            .lines()
            .find_map(|l| {
                l.find("path=").map(|at| {
                    l[at + 5..].split_whitespace().next().unwrap_or_default().to_string()
                })
            })
            .unwrap_or_default();
        let scan = scan_file(&pretend, &source);
        let of_rule = scan.violations.iter().filter(|f| f.rule == rule).count();
        assert_eq!(of_rule, expected, "{name}: {:#?}", scan.violations);
        assert_eq!(
            scan.violations.len(),
            expected,
            "{name} must violate only {}: {:#?}",
            rule.id(),
            scan.violations
        );
    }
}

#[test]
fn conforming_fixtures_are_clean_and_waivers_are_inventoried() {
    for name in [
        "r1_no_panic_conform.rs",
        "r2_thread_conform.rs",
        "r3_nondet_conform.rs",
        "r5_header_conform.rs",
        "r7_lock_conform.rs",
        "r8_ack_conform.rs",
        "r9_exit_conform.rs",
    ] {
        let source = read(name);
        let pretend = source
            .lines()
            .find_map(|l| l.find("path=").map(|at| {
                l[at + 5..].split_whitespace().next().unwrap_or_default().to_string()
            }))
            .unwrap_or_default();
        let scan = scan_file(&pretend, &source);
        assert!(scan.violations.is_empty(), "{name}: {:#?}", scan.violations);
    }
    // The WAL conform fixtures each carry exactly one justified waiver:
    // the durable wrapper's replay helper and the delta module's
    // derived-from-the-log application site.
    for (path, name) in [
        ("crates/index/src/durable.rs", "r4_wal_conform.rs"),
        ("crates/index/src/delta.rs", "r4_delta_conform.rs"),
    ] {
        let scan = scan_file(path, &read(name));
        assert!(scan.violations.is_empty(), "{name}: {:#?}", scan.violations);
        assert_eq!(scan.waivers.len(), 1, "{name}: {:#?}", scan.waivers);
        assert_eq!(scan.waivers[0].rule, Rule::WalOrder);
        assert!(scan.waivers[0].justification.contains("already durable"));
    }
}

#[test]
fn waiver_fixture_separates_good_from_bad_waivers() {
    let scan = scan_file("crates/core/src/fixture_waivers.rs", &read("waivers.rs"));
    let policy = scan.violations.iter().filter(|f| f.rule == Rule::WaiverPolicy).count();
    let unwaived = scan.violations.iter().filter(|f| f.rule == Rule::NoPanic).count();
    assert_eq!(policy, 3, "{:#?}", scan.violations);
    assert_eq!(unwaived, 2, "{:#?}", scan.violations);
    assert_eq!(scan.waivers.len(), 2, "{:#?}", scan.waivers);
}
