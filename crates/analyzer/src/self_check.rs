//! `--self-check`: verify the rule set against the fixture corpus.
//!
//! Each fixture under `fixtures/` is a minimal `.rs` file annotated with
//! its *exact* expected findings, so a broken lexer or rule fails loudly
//! instead of passing vacuously:
//!
//! * a `// lint-fixture: path=<pretend-workspace-path>` directive tells
//!   the engine where the file should pretend to live (rules and
//!   exemptions are path-keyed);
//! * `//~ <rule-id>` on a line means "the scan must report exactly this
//!   rule on this line"; a fixture without markers must scan clean;
//! * `//~waiver <rule-id>` means "an applied waiver of this rule must be
//!   inventoried at this line".
//!
//! The corpus itself is validated: every rule must have at least one
//! violating fixture and at least one clean fixture must exist, so an
//! empty or unreadable corpus is a failure, not a pass.

use crate::report::Rule;
use crate::rules;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

/// Outcome of a self-check run.
#[derive(Debug, Default)]
pub struct SelfCheckReport {
    /// Fixtures examined.
    pub fixtures: usize,
    /// Every discrepancy found; empty means the rule set is healthy.
    pub problems: Vec<String>,
}

impl SelfCheckReport {
    /// True when the whole corpus matched its expectations.
    pub fn passed(&self) -> bool {
        self.fixtures > 0 && self.problems.is_empty()
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.problems {
            let _ = writeln!(out, "self-check: {p}");
        }
        let _ = writeln!(
            out,
            "domd-lint --self-check: {} fixture(s), {} problem(s): {}",
            self.fixtures,
            self.problems.len(),
            if self.passed() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Runs the rule engine over every fixture in `dir` and compares against
/// the inline expectations.
pub fn self_check(dir: &Path) -> SelfCheckReport {
    let mut report = SelfCheckReport::default();
    let mut names = match fixture_names(dir) {
        Ok(names) => names,
        Err(msg) => {
            report.problems.push(msg);
            return report;
        }
    };
    names.sort();
    if names.is_empty() {
        report.problems.push(format!("no fixtures found in {}", dir.display()));
        return report;
    }

    let mut covered: BTreeSet<&'static str> = BTreeSet::new();
    let mut has_clean_fixture = false;
    for name in &names {
        let path = dir.join(name);
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                report.problems.push(format!("{name}: unreadable: {e}"));
                continue;
            }
        };
        report.fixtures += 1;
        let pretend = directive_path(&source)
            .unwrap_or_else(|| format!("crates/core/src/{name}"));

        let mut expected: BTreeSet<(usize, &'static str)> = BTreeSet::new();
        let mut expected_waivers: BTreeSet<(usize, &'static str)> = BTreeSet::new();
        for (lineno, line) in source.lines().enumerate() {
            let lineno = lineno + 1;
            if let Some(at) = line.find("//~waiver ") {
                parse_marker(&line[at + "//~waiver ".len()..], lineno, name, &mut expected_waivers, &mut report.problems);
            } else if let Some(at) = line.find("//~ ") {
                parse_marker(&line[at + "//~ ".len()..], lineno, name, &mut expected, &mut report.problems);
            }
        }
        if expected.is_empty() {
            has_clean_fixture = true;
        }
        for (_, rule) in &expected {
            covered.insert(rule);
        }

        let scan = rules::scan_file(&pretend, &source);
        let found: BTreeSet<(usize, &'static str)> =
            scan.violations.iter().map(|f| (f.line, f.rule.id())).collect();
        let found_waivers: BTreeSet<(usize, &'static str)> =
            scan.waivers.iter().map(|w| (w.line, w.rule.id())).collect();

        for (line, rule) in expected.difference(&found) {
            report.problems.push(format!(
                "{name}:{line}: expected a [{rule}] finding that the scan missed \
                 (lexer or rule regression)"
            ));
        }
        for (line, rule) in found.difference(&expected) {
            report.problems.push(format!(
                "{name}:{line}: unexpected [{rule}] finding (false positive)"
            ));
        }
        for (line, rule) in expected_waivers.difference(&found_waivers) {
            report.problems.push(format!(
                "{name}:{line}: expected an applied [{rule}] waiver in the inventory"
            ));
        }
    }

    for rule in Rule::ALL {
        if !covered.contains(rule.id()) {
            report.problems.push(format!(
                "corpus gap: no fixture seeds a [{}] violation — the rule is untested",
                rule.id()
            ));
        }
    }
    if !has_clean_fixture {
        report
            .problems
            .push("corpus gap: no conforming (zero-finding) fixture exists".to_string());
    }
    report
}

fn parse_marker(
    rest: &str,
    lineno: usize,
    name: &str,
    into: &mut BTreeSet<(usize, &'static str)>,
    problems: &mut Vec<String>,
) {
    for id in rest.split_whitespace() {
        match Rule::from_id(id) {
            Some(rule) => {
                into.insert((lineno, rule.id()));
            }
            None => problems.push(format!("{name}:{lineno}: marker names unknown rule `{id}`")),
        }
    }
}

/// The `path=` value of the fixture directive, when present.
fn directive_path(source: &str) -> Option<String> {
    for line in source.lines() {
        if let Some(at) = line.find("lint-fixture:") {
            for kv in line[at + "lint-fixture:".len()..].split_whitespace() {
                if let Some(v) = kv.strip_prefix("path=") {
                    return Some(v.to_string());
                }
            }
        }
    }
    None
}

fn fixture_names(dir: &Path) -> Result<Vec<String>, String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("fixture corpus missing at {}: {e}", dir.display()))?;
    let mut names = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading fixture corpus: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".rs") {
            names.push(name);
        }
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_corpus_fails_instead_of_passing_vacuously() {
        let r = self_check(Path::new("/no/such/fixture/dir"));
        assert!(!r.passed());
        assert!(r.render().contains("FAIL"));
    }
}
