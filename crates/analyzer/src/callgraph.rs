//! The intra-workspace call graph and the interprocedural rules.
//!
//! # Name resolution and the over-approximation policy
//!
//! Edges are resolved by *identifier*: a call event `foo(…)` / `x.foo(…)`
//! links to every non-test workspace `fn foo`, regardless of receiver
//! type — the analyzer has no type information. This over-approximates
//! in both directions we accept:
//!
//! * **Too many callees** — `Foo::new()` links to every `fn new`. Harmless
//!   unless some same-named fn acquires a governed lock, in which case a
//!   spurious finding takes a justified waiver (none needed today).
//! * **Trait/closure indirection is invisible** — a call through a
//!   `dyn Fn` resolves to nothing and the path is not followed. The
//!   governed paths (ingest, publish, durable sync) are direct calls by
//!   construction, and the `workspace_clean` test keeps them that way.
//!
//! Lock guards are modeled as held from acquisition to the end of the
//! enclosing block — longer than true NLL drop points, never shorter —
//! except *chained* guards (`x.lock().expect("…").field.len()`), which
//! are statement temporaries: they participate as the inner acquisition
//! of an ordering check but are not held afterwards.
//!
//! The "can acquire" set of each fn is a fixpoint over the graph: direct
//! classified acquisitions plus everything reachable through calls, so a
//! violation is caught through any number of intervening frames.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use crate::config;
use crate::parser::{block_contains, EvKind, ExitMap};
use crate::report::{Finding, Rule};
use crate::rules::FileSummary;

/// FNV-1a 64 hasher for the graph's hot maps — std-only and
/// deterministic. The maps are only ever probed by key (never iterated
/// into output), so hash order cannot leak into findings; the worklist
/// seed below iterates one, but a fixpoint is order-independent.
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<Fnv>>;

/// One documented exit-code table found outside the workspace's Rust
/// sources (e.g. the README), as `(code, 1-based line)` rows.
#[derive(Debug, Clone, Default)]
pub struct DocTable {
    /// Path of the document, workspace-relative.
    pub file: String,
    /// Line of the table header (anchor for "missing row" findings).
    pub header_line: usize,
    /// Parsed `| N | … |` rows.
    pub rows: Vec<(u32, usize)>,
}

/// Runs R7, R8, and R9 over the summarized workspace (or a single
/// summarized fixture) and returns the raw, pre-waiver findings.
pub fn interprocedural(files: &[FileSummary], doc_tables: &[DocTable]) -> Vec<Finding> {
    let g = Graph::build(files);
    let mut out = Vec::new();
    lock_order(&g, &mut out);
    ack_order(&g, &mut out);
    exit_code_map(files, doc_tables, &mut out);
    out
}

/// A fn reference: (file index, fn index).
type FnRef = (usize, usize);

struct Graph<'a> {
    files: &'a [FileSummary],
    /// Bare fn name → every non-test definition.
    by_name: FnvMap<&'a str, Vec<FnRef>>,
    /// Transitively acquirable lock classes per fn (indices into
    /// [`config::LOCK_HIERARCHY`]).
    can_acquire: FnvMap<FnRef, BTreeSet<usize>>,
}

impl<'a> Graph<'a> {
    fn build(files: &'a [FileSummary]) -> Graph<'a> {
        let mut by_name: FnvMap<&str, Vec<FnRef>> = FnvMap::default();
        for (fi, f) in files.iter().enumerate() {
            for (ni, def) in f.fns.iter().enumerate() {
                if !def.is_test {
                    by_name.entry(&def.name).or_default().push((fi, ni));
                }
            }
        }

        // Direct acquisitions, plus call edges resolved by name exactly
        // once and kept as a *reverse* adjacency (callee → callers).
        let mut can_acquire: FnvMap<FnRef, BTreeSet<usize>> = FnvMap::default();
        let mut callers: FnvMap<FnRef, Vec<FnRef>> = FnvMap::default();
        for (fi, f) in files.iter().enumerate() {
            for (ni, def) in f.fns.iter().enumerate() {
                let caller = (fi, ni);
                let mut direct = BTreeSet::new();
                for ev in &def.events {
                    if ev.kind != EvKind::Call {
                        continue;
                    }
                    if let Some(ci) = acquisition_class(&ev.name, ev.recv.as_deref()) {
                        direct.insert(ci);
                    }
                    // A caller may land in a callee's list more than
                    // once (two call names resolving to one fn); the
                    // worklist extend is idempotent, so deduping here
                    // would cost more than the duplicate visit.
                    for callee in by_name.get(ev.name.as_str()).into_iter().flatten() {
                        callers.entry(*callee).or_default().push(caller);
                    }
                }
                can_acquire.insert(caller, direct);
            }
        }

        // Worklist fixpoint: when a fn's acquirable set grows, only its
        // callers can change, so only they are revisited. Converges
        // because sets only grow and are bounded by the hierarchy size;
        // cycles just stop re-enqueueing once saturated.
        let mut work: Vec<FnRef> =
            can_acquire.iter().filter(|(_, s)| !s.is_empty()).map(|(f, _)| *f).collect();
        while let Some(f) = work.pop() {
            let classes = can_acquire.get(&f).cloned().unwrap_or_default();
            for caller in callers.get(&f).into_iter().flatten() {
                let set = can_acquire.entry(*caller).or_default();
                let before = set.len();
                set.extend(classes.iter().copied());
                if set.len() != before {
                    work.push(*caller);
                }
            }
        }
        Graph { files, by_name, can_acquire }
    }

    fn callees(&self, name: &str) -> &[FnRef] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }
}

/// The hierarchy index acquired by a call event, if any: a lock method
/// on a classified receiver, or a guard-returning helper fn.
fn acquisition_class(name: &str, recv: Option<&str>) -> Option<usize> {
    if config::LOCK_METHODS.contains(&name) {
        let recv = recv?;
        return config::LOCK_HIERARCHY.iter().position(|(r, _, _)| *r == recv);
    }
    let class = config::GUARD_FNS.iter().find(|(f, _)| *f == name).map(|(_, c)| *c)?;
    config::LOCK_HIERARCHY.iter().position(|(_, c, _)| *c == class)
}

fn class_name(ci: usize) -> &'static str {
    config::LOCK_HIERARCHY[ci].1
}

fn class_rank(ci: usize) -> u8 {
    config::LOCK_HIERARCHY[ci].2
}

/// R7 — lock-order.
fn lock_order(g: &Graph<'_>, out: &mut Vec<Finding>) {
    for file in g.files {
        if !config::LOCK_ORDER_FILES.contains(&file.rel.as_str()) {
            continue;
        }
        for def in &file.fns {
            if def.is_test {
                continue;
            }
            struct Acq {
                class: usize,
                line: usize,
                seq: u32,
                block: u32,
                transient: bool,
            }
            let acqs: Vec<Acq> = def
                .events
                .iter()
                .filter(|e| e.kind == EvKind::Call)
                .filter_map(|e| {
                    acquisition_class(&e.name, e.recv.as_deref()).map(|class| Acq {
                        class,
                        line: e.line,
                        seq: e.seq,
                        block: e.block,
                        transient: e.chained,
                    })
                })
                .collect();

            // Nested-acquisition checks: same class is a self-deadlock,
            // a descending rank is a hierarchy inversion. Distinct
            // classes of equal rank are unordered and allowed.
            for a in &acqs {
                for h in &acqs {
                    let held = h.seq < a.seq
                        && !h.transient
                        && block_contains(&def.blocks, h.block, a.block);
                    if !held {
                        continue;
                    }
                    if h.class == a.class {
                        out.push(Finding {
                            file: file.rel.clone(),
                            line: a.line,
                            rule: Rule::LockOrder,
                            message: format!(
                                "re-acquires `{}` while the guard taken at line {} is \
                                 still held — self-deadlock (drop the first guard, end \
                                 its block, before acquiring again)",
                                class_name(a.class),
                                h.line
                            ),
                        });
                    } else if class_rank(a.class) < class_rank(h.class) {
                        out.push(Finding {
                            file: file.rel.clone(),
                            line: a.line,
                            rule: Rule::LockOrder,
                            message: format!(
                                "acquires `{}` (rank {}) while `{}` (rank {}, line {}) \
                                 is held — inverts the declared lock hierarchy \
                                 (DESIGN.md §14); acquire in ascending rank order",
                                class_name(a.class),
                                class_rank(a.class),
                                class_name(h.class),
                                class_rank(h.class),
                                h.line
                            ),
                        });
                    }
                }
            }

            // Held-across-call checks: a guard held while calling into
            // code that can (transitively) re-acquire its class, or
            // acquire down the hierarchy. Findings anchor at the
            // *acquisition* — a waiver on the call site must not
            // suppress them. Acquisition events themselves were checked
            // above and are skipped here.
            let mut seen: BTreeSet<(u32, usize, bool)> = BTreeSet::new();
            for ev in &def.events {
                if ev.kind != EvKind::Call
                    || acquisition_class(&ev.name, ev.recv.as_deref()).is_some()
                {
                    continue;
                }
                let callees = g.callees(&ev.name);
                if callees.is_empty() {
                    continue;
                }
                let mut classes: BTreeSet<usize> = BTreeSet::new();
                for c in callees {
                    if let Some(s) = g.can_acquire.get(c) {
                        classes.extend(s.iter().copied());
                    }
                }
                if classes.is_empty() {
                    continue;
                }
                for h in &acqs {
                    let held = h.seq < ev.seq
                        && !h.transient
                        && block_contains(&def.blocks, h.block, ev.block);
                    if !held {
                        continue;
                    }
                    if classes.contains(&h.class) && seen.insert((h.seq, h.class, true)) {
                        out.push(Finding {
                            file: file.rel.clone(),
                            line: h.line,
                            rule: Rule::LockOrder,
                            message: format!(
                                "`{}` guard held across the call to `{}` (line {}), \
                                 which can re-acquire `{}` through the call graph — \
                                 drop the guard before the call",
                                class_name(h.class),
                                ev.name,
                                ev.line,
                                class_name(h.class)
                            ),
                        });
                    } else if let Some(&low) = classes
                        .iter()
                        .find(|ci| class_rank(**ci) < class_rank(h.class))
                    {
                        if seen.insert((h.seq, low, false)) {
                            out.push(Finding {
                                file: file.rel.clone(),
                                line: h.line,
                                rule: Rule::LockOrder,
                                message: format!(
                                    "`{}` (rank {}) held across the call to `{}` \
                                     (line {}), which can acquire `{}` (rank {}) — \
                                     hierarchy inversion through the call graph",
                                    class_name(h.class),
                                    class_rank(h.class),
                                    ev.name,
                                    ev.line,
                                    class_name(low),
                                    class_rank(low)
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
}

/// A flattened R8 event.
enum FlatEv {
    Sync,
    Publish { file: String, line: usize, name: String },
    Ack { file: String, line: usize, name: String },
}

/// R8 — ack-order: from each ingest entry point, flatten the call graph
/// (calls take effect after their arguments) and require a sync before
/// every publish and every ack marker.
fn ack_order(g: &Graph<'_>, out: &mut Vec<Finding>) {
    for (fi, file) in g.files.iter().enumerate() {
        if !config::ACK_ORDER_FILES.contains(&file.rel.as_str()) {
            continue;
        }
        for (ni, def) in file.fns.iter().enumerate() {
            if def.is_test || !config::ACK_ENTRIES.contains(&def.name.as_str()) {
                continue;
            }
            let mut flat = Vec::new();
            let mut path = vec![(fi, ni)];
            flatten(g, (fi, ni), &mut path, &mut flat, 0);
            let mut synced = false;
            for ev in &flat {
                match ev {
                    FlatEv::Sync => synced = true,
                    FlatEv::Publish { file, line, name } if !synced => {
                        out.push(Finding {
                            file: file.clone(),
                            line: *line,
                            rule: Rule::AckOrder,
                            message: format!(
                                "`{}` publishes an epoch on the `{}` ingest path with \
                                 no dominating fsync (`{}`) — readers could see rows a \
                                 crash then loses; sync before publishing",
                                name,
                                def.name,
                                config::ACK_SYNC_FNS.join("`/`")
                            ),
                        });
                    }
                    FlatEv::Ack { file, line, name } if !synced => {
                        out.push(Finding {
                            file: file.clone(),
                            line: *line,
                            rule: Rule::AckOrder,
                            message: format!(
                                "`{}` acknowledges ingest with no dominating fsync on \
                                 the `{}` path — \"acked ⇒ durable\" (DESIGN.md §13) \
                                 requires the sync to precede the ack",
                                name, def.name
                            ),
                        });
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Appends `fun`'s R8-relevant events to `flat` in effect order,
/// inlining same-named callees defined in [`config::ACK_ORDER_FILES`].
/// `path` guards cycles; depth is capped defensively.
fn flatten(
    g: &Graph<'_>,
    fun: FnRef,
    path: &mut Vec<FnRef>,
    flat: &mut Vec<FlatEv>,
    depth: usize,
) {
    if depth > 16 {
        return;
    }
    let def = &g.files[fun.0].fns[fun.1];
    for ev in &def.events {
        match ev.kind {
            EvKind::Call if config::ACK_SYNC_FNS.contains(&ev.name.as_str()) => {
                flat.push(FlatEv::Sync);
            }
            EvKind::Call if config::ACK_PUBLISH_FNS.contains(&ev.name.as_str()) => {
                flat.push(FlatEv::Publish {
                    file: g.files[fun.0].rel.clone(),
                    line: ev.line,
                    name: ev.name.clone(),
                });
            }
            EvKind::Call => {
                for callee in g.callees(&ev.name) {
                    let in_scope =
                        config::ACK_ORDER_FILES.contains(&g.files[callee.0].rel.as_str());
                    if in_scope && !path.contains(callee) {
                        path.push(*callee);
                        flatten(g, *callee, path, flat, depth + 1);
                        path.pop();
                    }
                }
            }
            EvKind::Marker if config::ACK_MARKERS.contains(&ev.name.as_str()) => {
                flat.push(FlatEv::Ack {
                    file: g.files[fun.0].rel.clone(),
                    line: ev.line,
                    name: ev.name.clone(),
                });
            }
            EvKind::Marker => {}
        }
    }
}

/// R9 — exit-code-map: every error variant maps to exactly one code, no
/// wildcard hides new variants, and every documented table agrees.
fn exit_code_map(files: &[FileSummary], doc_tables: &[DocTable], out: &mut Vec<Finding>) {
    let Some(map_file) = files.iter().find(|f| f.rel == config::EXIT_MAP_FILE) else {
        return;
    };
    let Some(map) = &map_file.exit_map else {
        return;
    };
    let variants: Vec<(&str, &str, usize)> = files
        .iter()
        .flat_map(|f| {
            f.error_variants.iter().map(move |(v, l)| (v.as_str(), f.rel.as_str(), *l))
        })
        .collect();

    check_map(map, &map_file.rel, &variants, out);

    // Mapped codes drive the doc checks.
    let mapped: BTreeMap<u32, &str> = map
        .arms
        .iter()
        .filter_map(|(v, code, _)| code.parse::<u32>().ok().map(|c| (c, v.as_str())))
        .collect();

    // The map file's own doc-comment table (skipped when absent).
    if !map.doc_codes.is_empty() {
        check_doc(&map_file.rel, map.doc_codes.first().map_or(1, |(_, l)| *l), &map.doc_codes, &mapped, out);
    }
    for t in doc_tables {
        check_doc(&t.file, t.header_line, &t.rows, &mapped, out);
    }
}

/// The intra-map checks: unmapped variants, stale arms, duplicate codes,
/// non-literal codes, and wildcard arms.
fn check_map(
    map: &ExitMap,
    map_rel: &str,
    variants: &[(&str, &str, usize)],
    out: &mut Vec<Finding>,
) {
    let mut by_code: BTreeMap<&str, &str> = BTreeMap::new();
    let mut arm_variants: BTreeSet<&str> = BTreeSet::new();
    for (v, code, line) in &map.arms {
        if !arm_variants.insert(v.as_str()) {
            out.push(Finding {
                file: map_rel.to_string(),
                line: *line,
                rule: Rule::ExitCodeMap,
                message: format!(
                    "`{}::{v}` is matched by more than one exit-code arm — exactly \
                     one code per variant",
                    config::ERROR_ENUM
                ),
            });
            continue;
        }
        if code.is_empty() {
            out.push(Finding {
                file: map_rel.to_string(),
                line: *line,
                rule: Rule::ExitCodeMap,
                message: format!(
                    "the `{}::{v}` arm does not map to a literal exit code — the \
                     code must be auditable from the match arm",
                    config::ERROR_ENUM
                ),
            });
            continue;
        }
        if let Some(prev) = by_code.insert(code.as_str(), v.as_str()) {
            out.push(Finding {
                file: map_rel.to_string(),
                line: *line,
                rule: Rule::ExitCodeMap,
                message: format!(
                    "exit code {code} is assigned to both `{prev}` and `{v}` — \
                     callers cannot distinguish the failures"
                ),
            });
        }
        if !variants.is_empty() && !variants.iter().any(|(name, _, _)| name == v) {
            out.push(Finding {
                file: map_rel.to_string(),
                line: *line,
                rule: Rule::ExitCodeMap,
                message: format!(
                    "exit-code arm names `{}::{v}`, which is not a declared variant — \
                     stale arm",
                    config::ERROR_ENUM
                ),
            });
        }
    }
    for (v, vfile, vline) in variants {
        if !arm_variants.contains(v) {
            out.push(Finding {
                file: (*vfile).to_string(),
                line: *vline,
                rule: Rule::ExitCodeMap,
                message: format!(
                    "`{}::{v}` has no exit-code mapping in `{}` `fn {}` — every \
                     variant maps to exactly one code",
                    config::ERROR_ENUM,
                    config::EXIT_MAP_FILE,
                    config::EXIT_MAP_FN
                ),
            });
        }
    }
    if let Some(line) = map.wildcard {
        out.push(Finding {
            file: map_rel.to_string(),
            line,
            rule: Rule::ExitCodeMap,
            message: "wildcard `_ =>` arm in the exit-code map — a new error variant \
                      would silently share a code instead of failing this rule; \
                      enumerate every variant"
                .to_string(),
        });
    }
}

/// One documented table vs. the mapped codes.
fn check_doc(
    doc_file: &str,
    anchor_line: usize,
    rows: &[(u32, usize)],
    mapped: &BTreeMap<u32, &str>,
    out: &mut Vec<Finding>,
) {
    let documented: BTreeSet<u32> = rows.iter().map(|(c, _)| *c).collect();
    for (code, variant) in mapped {
        if !documented.contains(code) {
            out.push(Finding {
                file: doc_file.to_string(),
                line: anchor_line,
                rule: Rule::ExitCodeMap,
                message: format!(
                    "exit-code table omits code {code} (`{}::{variant}`) — the \
                     documented table must list every mapped code",
                    config::ERROR_ENUM
                ),
            });
        }
    }
    for (code, line) in rows {
        if !mapped.contains_key(code) && *code > 1 {
            out.push(Finding {
                file: doc_file.to_string(),
                line: *line,
                rule: Rule::ExitCodeMap,
                message: format!(
                    "exit-code table documents code {code}, which no `{}` variant \
                     maps to — drifted docs",
                    config::ERROR_ENUM
                ),
            });
        }
    }
}
