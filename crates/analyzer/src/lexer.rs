//! A minimal Rust lexer, sufficient for rule matching.
//!
//! The analyzer's rules match *token* sequences — `.unwrap()`,
//! `thread :: spawn`, `# ! [ deny ( unsafe_code ) ]` — so the one job of
//! this lexer is to never manufacture a token out of text that the Rust
//! compiler would not see as code: comments (line, nested block, doc),
//! string literals (plain, byte, raw with any `#` fence depth), char and
//! byte-char literals, and lifetimes must all be skipped or classified
//! correctly. A lexer that mistakes `"call .unwrap() here"` for code
//! produces false positives; one that mistakes `/* */ x.unwrap()` for a
//! comment produces false negatives. `domd-lint --self-check` exercises
//! both directions against the fixture corpus.
//!
//! Numeric literal shapes are handled loosely (the rules never match
//! inside numbers), but the lexer must not *lose* the token that follows
//! one.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unwrap`, `fn`, `HashMap`).
    Ident(String),
    /// A single punctuation character (`.`, `:`, `(`, `!`, …).
    Punct(char),
    /// Any literal: string, raw string, char, byte, or number. Only
    /// numeric text is retained (R9 reads exit codes out of match arms);
    /// string/char content is irrelevant to every rule and stays empty.
    Literal(String),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub tok: Tok,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

/// A comment (line, block, or doc) with its starting line — retained
/// because `// domd-lint: allow(...)` waivers live in comments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line number where the comment starts.
    pub line: usize,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source`. Unterminated constructs (string, block comment) are
/// tolerated by consuming to end of input — the analyzer must degrade to
/// "fewer tokens", never panic, on malformed input.
pub fn lex(source: &str) -> Lexed {
    let b: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = b.len();

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                out.comments.push(Comment { text: b[start..i].iter().collect(), line });
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let (start, start_line) = (i, line);
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments
                    .push(Comment { text: b[start..i].iter().collect(), line: start_line });
            }
            '"' => {
                let tok_line = line;
                i = consume_string(&b, i, &mut line);
                out.tokens.push(Token { tok: Tok::Literal(String::new()), line: tok_line });
            }
            '\'' => {
                // Char literal vs. lifetime: `'\…'` and `'x'` are chars;
                // `'ident` (no closing quote after one char) is a lifetime.
                if i + 1 < n && b[i + 1] == '\\' {
                    let tok_line = line;
                    i = consume_char_literal(&b, i, &mut line);
                    out.tokens.push(Token { tok: Tok::Literal(String::new()), line: tok_line });
                } else if i + 2 < n && b[i + 2] == '\'' {
                    out.tokens.push(Token { tok: Tok::Literal(String::new()), line });
                    if b[i + 1] == '\n' {
                        line += 1;
                    }
                    i += 3;
                } else {
                    // Lifetime: skip the quote; the label lexes as an ident.
                    i += 1;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let ident: String = b[start..i].iter().collect();
                // String-literal prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…'.
                let next = b.get(i).copied();
                let tok_line = line;
                match (ident.as_str(), next) {
                    ("r" | "br" | "rb", Some('"' | '#')) if raw_string_follows(&b, i) => {
                        i = consume_raw_string(&b, i, &mut line);
                        out.tokens.push(Token { tok: Tok::Literal(String::new()), line: tok_line });
                    }
                    ("b", Some('"')) => {
                        i = consume_string(&b, i, &mut line);
                        out.tokens.push(Token { tok: Tok::Literal(String::new()), line: tok_line });
                    }
                    ("b", Some('\'')) => {
                        i = consume_char_literal(&b, i, &mut line);
                        out.tokens.push(Token { tok: Tok::Literal(String::new()), line: tok_line });
                    }
                    _ => out.tokens.push(Token { tok: Tok::Ident(ident), line: tok_line }),
                }
            }
            c if c.is_ascii_digit() => {
                // Loose number: digits, `_`, alphanumerics (hex, suffixes,
                // exponents), a `.` only when a digit follows (so `1..n`
                // and `0.max(x)` keep their punctuation).
                let start = i;
                while i < n {
                    let d = b[i];
                    let digit_follows = i + 1 < n && b[i + 1].is_ascii_digit();
                    if d.is_alphanumeric()
                        || d == '_'
                        || (d == '.' && digit_follows)
                        || ((d == '+' || d == '-')
                            && matches!(b.get(i.wrapping_sub(1)), Some('e' | 'E'))
                            && digit_follows)
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens
                    .push(Token { tok: Tok::Literal(b[start..i].iter().collect()), line });
            }
            other => {
                out.tokens.push(Token { tok: Tok::Punct(other), line });
                i += 1;
            }
        }
    }
    out
}

/// True when the text at `i` (just past an `r`/`br` prefix) opens a raw
/// string: zero or more `#` then `"`.
fn raw_string_follows(b: &[char], mut i: usize) -> bool {
    while i < b.len() && b[i] == '#' {
        i += 1;
    }
    i < b.len() && b[i] == '"'
}

/// Consumes a raw string starting at `i` (at the `#`s or `"` after the
/// prefix); returns the index past the closing fence.
fn consume_raw_string(b: &[char], mut i: usize, line: &mut usize) -> usize {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < b.len() && b[j] == '#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Consumes a `"…"` string starting at the quote (or the `b` prefix's
/// quote); returns the index past the closing quote.
fn consume_string(b: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote (caller points at `"` or at `b` + 1 == `"`)
    while i < b.len() && b[i] != '"' {
        if b[i] == '\\' {
            i += 1; // the escaped character, even if it is a quote
        } else if b[i] == '\n' {
            *line += 1;
        }
        i += 1;
    }
    (i + 1).min(b.len())
}

/// Consumes a `'…'` char/byte-char literal starting at the quote;
/// returns the index past the closing quote.
fn consume_char_literal(b: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote
    while i < b.len() && b[i] != '\'' {
        if b[i] == '\\' {
            i += 1;
        } else if b[i] == '\n' {
            *line += 1;
        }
        i += 1;
    }
    (i + 1).min(b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(idents(r#"let x = "call .unwrap() now";"#), ["let", "x"]);
        assert_eq!(idents(r##"let x = r#"thread::spawn"#;"##), ["let", "x"]);
        assert_eq!(idents(r#"let x = b"panic!";"#), ["let", "x"]);
        assert_eq!(idents(r#"let x = "esc \" .expect( ";"#), ["let", "x"]);
    }

    #[test]
    fn comments_hide_their_contents_but_are_recorded() {
        let lx = lex("// has .unwrap()\n/* outer /* nested .expect( */ still */ fn f() {}");
        let ids: Vec<_> = lx
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(ids, ["fn", "f"]);
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].text.contains("unwrap"));
        assert!(lx.comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // `'a` must not swallow `, T.unwrap()` as literal content.
        let ids = idents("fn f<'a, T>(x: &'a T) { x.unwrap() }");
        assert!(ids.contains(&"unwrap".to_string()), "{ids:?}");
        // Real char literals, including escapes and quotes.
        assert_eq!(idents(r"let c = '\''; let d = 'x'; let e = '\u{41}';"), [
            "let", "c", "let", "d", "let", "e"
        ]);
        assert_eq!(idents(r"let c = b'\n';"), ["let", "c"]);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "fn a() {}\n\"two\nline string\"\nfn b() {}\n/* block\ncomment */ fn c() {}";
        let lx = lex(src);
        let line_of = |name: &str| {
            lx.tokens
                .iter()
                .find(|t| t.tok == Tok::Ident(name.to_string()))
                .map(|t| t.line)
        };
        assert_eq!(line_of("a"), Some(1));
        assert_eq!(line_of("b"), Some(4));
        assert_eq!(line_of("c"), Some(6));
    }

    #[test]
    fn numbers_do_not_eat_following_tokens() {
        let ids = idents("for i in 0..n { let y = 1.0e-5; q.unwrap(); }");
        assert!(ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(ids.contains(&"n".to_string()), "{ids:?}");
    }

    #[test]
    fn raw_fence_depths_match() {
        let src = r####"let x = r##"inner "# not the end" .unwrap()"## ; y.expect("m")"####;
        let ids = idents(src);
        assert_eq!(ids, ["let", "x", "y", "expect"]);
    }

    #[test]
    fn unterminated_input_never_panics() {
        for src in ["\"open", "/* open", "r#\"open", "'", "b'", "x.unwrap("] {
            let _ = lex(src);
        }
    }
}
