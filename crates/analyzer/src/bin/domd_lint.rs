//! `domd-lint` — the workspace invariant gate.
//!
//! ```text
//! domd-lint [--root DIR] [--format human|json]   scan the workspace
//! domd-lint --self-check [--fixtures DIR]        verify rules vs. corpus
//! ```
//!
//! Exit codes: `0` clean, `1` violations (or self-check failure),
//! `2` usage / I/O error. CI runs both modes (`scripts/lint.sh`) before
//! clippy, so a rule regression and a workspace regression both fail the
//! gate.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    format: Format,
    self_check: bool,
    fixtures: Option<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { root: None, format: Format::Human, self_check: false, fixtures: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => args.root = Some(PathBuf::from(v)),
                None => return Err("--root takes a directory".into()),
            },
            "--fixtures" => match it.next() {
                Some(v) => args.fixtures = Some(PathBuf::from(v)),
                None => return Err("--fixtures takes a directory".into()),
            },
            "--format" => match it.next().as_deref() {
                Some("human") => args.format = Format::Human,
                Some("json") => args.format = Format::Json,
                other => {
                    return Err(format!(
                        "--format takes human|json, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--self-check" => args.self_check = true,
            "--help" | "-h" => {
                return Err(
                    "usage: domd-lint [--root DIR] [--format human|json] \
                     [--self-check [--fixtures DIR]]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("domd-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if args.self_check {
        let fixtures = args
            .fixtures
            .unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures")));
        let report = domd_analyzer::self_check(&fixtures);
        print!("{}", report.render());
        return if report.passed() { ExitCode::SUCCESS } else { ExitCode::from(1) };
    }

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            domd_analyzer::find_root(&cwd).unwrap_or(cwd)
        }
    };
    match domd_analyzer::scan_workspace(&root) {
        Ok(report) => {
            match args.format {
                Format::Human => print!("{}", report.render_human()),
                Format::Json => print!("{}", report.render_json()),
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("domd-lint: {e}");
            ExitCode::from(2)
        }
    }
}
