//! `domd-lint` — the workspace invariant gate.
//!
//! ```text
//! domd-lint [--root DIR] [--format human|json]   scan the workspace
//!           [--no-cache | --cache FILE]          incremental cache control
//! domd-lint --self-check [--fixtures DIR]        verify rules vs. corpus
//! domd-lint --explain RULE                       print what a rule enforces
//! ```
//!
//! Exit codes: `0` clean, `1` violations (or self-check failure),
//! `2` usage / I/O error. CI runs both modes (`scripts/lint.sh`) before
//! clippy, so a rule regression and a workspace regression both fail the
//! gate.
//!
//! Workspace sweeps keep per-file summaries in `<root>/.domd-lint-cache`
//! keyed by content hash; the interprocedural rules and waiver
//! accounting always run fresh, so cached and cold sweeps report
//! identically. `--no-cache` forces a cold sweep; `--cache FILE` moves
//! the cache (the bench harness points it into a temp dir).

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    format: Format,
    self_check: bool,
    fixtures: Option<PathBuf>,
    explain: Option<String>,
    no_cache: bool,
    cache: Option<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Human,
        self_check: false,
        fixtures: None,
        explain: None,
        no_cache: false,
        cache: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => args.root = Some(PathBuf::from(v)),
                None => return Err("--root takes a directory".into()),
            },
            "--fixtures" => match it.next() {
                Some(v) => args.fixtures = Some(PathBuf::from(v)),
                None => return Err("--fixtures takes a directory".into()),
            },
            "--cache" => match it.next() {
                Some(v) => args.cache = Some(PathBuf::from(v)),
                None => return Err("--cache takes a file path".into()),
            },
            "--no-cache" => args.no_cache = true,
            "--explain" => match it.next() {
                Some(v) => args.explain = Some(v),
                None => return Err("--explain takes a rule id (e.g. lock-order)".into()),
            },
            "--format" => match it.next().as_deref() {
                Some("human") => args.format = Format::Human,
                Some("json") => args.format = Format::Json,
                other => {
                    return Err(format!(
                        "--format takes human|json, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--self-check" => args.self_check = true,
            "--help" | "-h" => {
                return Err(
                    "usage: domd-lint [--root DIR] [--format human|json] \
                     [--no-cache | --cache FILE] [--self-check [--fixtures DIR]] \
                     [--explain RULE]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("domd-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if let Some(id) = &args.explain {
        return match domd_analyzer::Rule::from_id(id) {
            Some(rule) => {
                print!("{}", rule.explain());
                ExitCode::SUCCESS
            }
            None => {
                let known: Vec<&str> = domd_analyzer::Rule::ALL
                    .iter()
                    .map(|r| r.id())
                    .chain(["waiver-policy"])
                    .collect();
                eprintln!("domd-lint: unknown rule `{id}` — one of: {}", known.join(", "));
                ExitCode::from(2)
            }
        };
    }

    if args.self_check {
        let fixtures = args
            .fixtures
            .unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures")));
        let report = domd_analyzer::self_check(&fixtures);
        print!("{}", report.render());
        return if report.passed() { ExitCode::SUCCESS } else { ExitCode::from(1) };
    }

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            domd_analyzer::find_root(&cwd).unwrap_or(cwd)
        }
    };
    let cache_path = if args.no_cache {
        None
    } else {
        Some(args.cache.unwrap_or_else(|| root.join(".domd-lint-cache")))
    };
    match domd_analyzer::scan_workspace_cached(&root, cache_path.as_deref()) {
        Ok((report, _stats)) => {
            match args.format {
                Format::Human => print!("{}", report.render_human()),
                Format::Json => print!("{}", report.render_json()),
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("domd-lint: {e}");
            ExitCode::from(2)
        }
    }
}
