//! The per-file rule engine.
//!
//! Rules match token sequences from [`crate::lexer`], so string/comment
//! content can never trigger them. Test code — `#[cfg(test)]` modules and
//! `#[test]` functions — is structurally skipped for R1–R4: the
//! invariants guard the ingest→train→serve path, and test code panics
//! and spawns by design.
//!
//! A finding is suppressed only by an inline waiver comment on the same
//! line or the line directly above:
//!
//! ```text
//! // domd-lint: allow(no-panic) — slice length checked two lines up
//! ```
//!
//! Waivers require a justification, must actually suppress something,
//! and are inventoried into the report so the full exempted surface is
//! visible to CI and reviewers.

use crate::callgraph::{self, DocTable};
use crate::config;
use crate::lexer::{self, Tok, Token};
use crate::parser::{self, test_line_ranges, test_mask};
use crate::report::{Finding, Report, Rule, Waiver};

/// Result of scanning one file: surviving violations plus the waivers
/// that were applied.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Violations that no waiver covered.
    pub violations: Vec<Finding>,
    /// Waivers that suppressed a finding.
    pub waivers: Vec<Waiver>,
}

/// Everything one file contributes to a workspace sweep, *before*
/// waiver application. This is the unit the incremental cache stores:
/// it is a pure function of `(rel_path, source)`, so a content-hash hit
/// can skip the lex/parse/rules work entirely, while the cross-file
/// passes (R7/R8/R9 and waiver accounting) always run fresh over the
/// summaries in [`finish`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileSummary {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Local (R1–R6) findings, pre-waiver.
    pub raw: Vec<Finding>,
    /// Waiver-policy findings (malformed waivers) — always surface.
    pub meta: Vec<Finding>,
    /// Well-formed waiver candidates, not yet matched to findings.
    pub waivers: Vec<Waiver>,
    /// Line ranges covered by test code.
    pub test_ranges: Vec<(usize, usize)>,
    /// Recovered function definitions (call-graph nodes).
    pub fns: Vec<parser::FnDef>,
    /// Error-enum variants, when this file declares them (R9).
    pub error_variants: Vec<(String, usize)>,
    /// The exit-code map, when this file defines it (R9).
    pub exit_map: Option<parser::ExitMap>,
}

/// Scans one file in isolation: per-file rules plus the interprocedural
/// rules over this file's own call graph. This is what `--self-check`
/// runs per fixture; workspace sweeps use [`analyze_file`] + [`finish`]
/// so R7–R9 see cross-file edges.
pub fn scan_file(rel_path: &str, source: &str) -> FileScan {
    let report = finish(vec![analyze_file(rel_path, source)], &[]);
    FileScan { violations: report.violations, waivers: report.waivers }
}

/// Runs the per-file (cacheable) half of the pipeline.
pub fn analyze_file(rel_path: &str, source: &str) -> FileSummary {
    let lexed = lexer::lex(source);
    let toks = &lexed.tokens;
    let in_test = test_mask(toks);
    let test_ranges = test_line_ranges(toks, &in_test);

    let mut findings: Vec<Finding> = Vec::new();
    let mk = |line: usize, rule: Rule, message: String| Finding {
        file: rel_path.to_string(),
        line,
        rule,
        message,
    };

    // R1 — no-panic.
    if !config::matches_prefix(rel_path, config::NO_PANIC_EXEMPT) {
        for (i, t) in toks.iter().enumerate() {
            if in_test[i] {
                continue;
            }
            if let Tok::Ident(name) = &t.tok {
                let panicky_method =
                    matches!(name.as_str(), "unwrap" | "expect" | "unwrap_err" | "expect_err");
                if panicky_method && is_method_or_path_call(toks, i) {
                    findings.push(mk(
                        t.line,
                        Rule::NoPanic,
                        format!(
                            "`.{name}()` in non-test code — return a typed \
                             `DomdError`/`StorageError`, or waive: \
                             `// domd-lint: allow(no-panic) — <why this cannot fail>`"
                        ),
                    ));
                }
                let panicky_macro =
                    matches!(name.as_str(), "panic" | "unreachable" | "todo" | "unimplemented");
                if panicky_macro && matches!(toks.get(i + 1), Some(Token { tok: Tok::Punct('!'), .. }))
                {
                    findings.push(mk(
                        t.line,
                        Rule::NoPanic,
                        format!(
                            "`{name}!` in non-test code — return a typed error, or waive: \
                             `// domd-lint: allow(no-panic) — <why this is unreachable>`"
                        ),
                    ));
                }
            }
        }
    }

    // R2 — thread-spawn.
    if !config::matches_prefix(rel_path, config::THREAD_ALLOWED) {
        for (i, t) in toks.iter().enumerate() {
            if in_test[i] {
                continue;
            }
            if ident_is(t, "thread") && path_sep_follows(toks, i) {
                if let Some(Tok::Ident(what)) = toks.get(i + 3).map(|t| &t.tok) {
                    if matches!(what.as_str(), "spawn" | "scope" | "Builder") {
                        findings.push(mk(
                            t.line,
                            Rule::ThreadSpawn,
                            format!(
                                "`thread::{what}` outside `domd-runtime` — all parallelism \
                                 must flow through the bounded `domd_runtime` pool so \
                                 thread counts cannot change results"
                            ),
                        ));
                    }
                }
            }
        }
    }

    // R3 — nondeterminism: clocks, ambient RNG, default-hasher maps.
    let time_ok = config::matches_prefix(rel_path, config::TIME_ALLOWED);
    let mut in_use = false;
    for (i, t) in toks.iter().enumerate() {
        match &t.tok {
            Tok::Ident(id) if id == "use" => in_use = true,
            Tok::Punct(';') => in_use = false,
            _ => {}
        }
        if in_test[i] {
            continue;
        }
        if let Tok::Ident(name) = &t.tok {
            match name.as_str() {
                "SystemTime" | "Instant"
                    if !time_ok
                        && path_sep_follows(toks, i)
                        && matches!(toks.get(i + 3).map(|t| &t.tok),
                                    Some(Tok::Ident(m)) if m == "now") =>
                {
                    findings.push(mk(
                        t.line,
                        Rule::Nondeterminism,
                        format!(
                            "`{name}::now` in result-producing code — outputs must be \
                             a pure function of inputs and seeds (timing belongs in \
                             `crates/bench`)"
                        ),
                    ));
                }
                "thread_rng" | "from_entropy" => {
                    findings.push(mk(
                        t.line,
                        Rule::Nondeterminism,
                        format!(
                            "`{name}` draws OS entropy — seed a `SmallRng` explicitly so \
                             every run is reproducible"
                        ),
                    ));
                }
                "HashMap" | "HashSet" if !in_use && !has_explicit_hasher(toks, i) => {
                    findings.push(mk(
                        t.line,
                        Rule::Nondeterminism,
                        format!(
                            "default-hasher `{name}` — iteration order is unstable \
                             across builds; use `domd_data::hash::Fx{name}`, a \
                             `BTree` map, or waive with a lookup-only justification"
                        ),
                    ));
                }
                _ => {}
            }
        }
    }

    // R4 — wal-order, in the durable wrapper and the delta module whose
    // mutations replay the wrapper's log order.
    if config::WAL_ORDER_FILES.contains(&rel_path) {
        wal_order(toks, &in_test, &mut findings, rel_path);
    }

    // R6 — bounded-queues, everywhere but the runtime's own primitives.
    if !config::matches_prefix(rel_path, config::QUEUE_ALLOWED) {
        bounded_queues(toks, &in_test, &mut findings, rel_path);
    }

    // R5 — lint-header on crate roots.
    if config::is_crate_root(rel_path) && !has_deny_header(toks) {
        findings.push(mk(
            1,
            Rule::LintHeader,
            format!(
                "crate root missing `#![deny({})]` — every crate carries the agreed \
                 lint header (DESIGN.md §9)",
                config::REQUIRED_DENY
            ),
        ));
    }

    let (waivers, meta) = parse_waivers(rel_path, &lexed.comments, &test_ranges);
    let parsed = parser::parse(&lexed, config::ACK_MARKERS);
    let mut fns = parsed.fns;
    // Files outside the R7/R8-governed sets feed the interprocedural
    // passes only through the call graph: which non-test fns exist and
    // which distinct (callee, receiver) pairs each can reach. Compress
    // their summaries to exactly that — R7 reads ordering/blocks and R8
    // reads markers only for governed files, and test fns never enter
    // the graph at all — so no finding can change, while warm sweeps
    // parse far less cache text.
    if !config::LOCK_ORDER_FILES.contains(&rel_path)
        && !config::ACK_ORDER_FILES.contains(&rel_path)
    {
        fns.retain(|f| !f.is_test);
        for f in &mut fns {
            parser::prune_to_call_edges(f);
        }
    }
    FileSummary {
        rel: rel_path.to_string(),
        raw: findings,
        meta,
        waivers,
        test_ranges,
        fns,
        error_variants: parsed.error_variants,
        exit_map: parsed.exit_map,
    }
}

/// The joint finish pass: interprocedural rules over the summaries'
/// call graph, then waiver application per file. Waivers are matched
/// against local *and* graph findings together, so a waiver that only
/// suppresses an interprocedural finding still counts as used — and a
/// finding anchored at a lock acquisition is only suppressible *there*,
/// never at the call site that completes the violation.
pub fn finish(summaries: Vec<FileSummary>, doc_tables: &[DocTable]) -> Report {
    let mut graph_findings = callgraph::interprocedural(&summaries, doc_tables);
    let mut report = Report { files_scanned: summaries.len(), ..Report::default() };

    for s in summaries {
        let mut findings = s.raw;
        let mut i = 0;
        while i < graph_findings.len() {
            if graph_findings[i].file == s.rel {
                findings.push(graph_findings.swap_remove(i));
            } else {
                i += 1;
            }
        }

        let mut waivers: Vec<(Waiver, bool)> =
            s.waivers.into_iter().map(|w| (w, false)).collect();
        for f in findings {
            let covered = waivers.iter_mut().find(|(w, _)| {
                w.rule == f.rule && (w.line == f.line || w.line + 1 == f.line)
            });
            match covered {
                Some((_, used)) => *used = true,
                None => report.violations.push(f),
            }
        }
        for (w, used) in waivers {
            if used {
                report.waivers.push(w);
            } else {
                report.violations.push(Finding {
                    file: s.rel.clone(),
                    line: w.line,
                    rule: Rule::WaiverPolicy,
                    message: format!(
                        "waiver for `{}` suppresses nothing — remove it (a stale waiver \
                         hides the next real violation)",
                        w.rule.id()
                    ),
                });
            }
        }
        report.violations.extend(s.meta);
    }

    // Findings in files with no summary (doc files like the README)
    // have no waiver surface: fix the doc.
    report.violations.append(&mut graph_findings);
    report.sort();
    report
}

/// True when `toks[i]` names a rule-relevant ident (exact match).
fn ident_is(t: &Token, name: &str) -> bool {
    matches!(&t.tok, Tok::Ident(s) if s == name)
}

/// True when `toks[i]` is called as `.name(` or `::name` — the method
/// and fn-path forms that can actually panic (a local fn coincidentally
/// named `expect` would be `expect(`, which does not match).
fn is_method_or_path_call(toks: &[Token], i: usize) -> bool {
    let dot = i >= 1 && matches!(toks[i - 1].tok, Tok::Punct('.'));
    let path = i >= 2
        && matches!(toks[i - 1].tok, Tok::Punct(':'))
        && matches!(toks[i - 2].tok, Tok::Punct(':'));
    dot || path
}

/// True when `::` follows `toks[i]` (two `:` puncts).
fn path_sep_follows(toks: &[Token], i: usize) -> bool {
    matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
        && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
}

/// True when the `HashMap`/`HashSet` at `i` is written with an explicit
/// hasher parameter: `<K, V, S>` (two-plus top-level commas for maps;
/// one-plus for sets is still ambiguous, so sets also need two commas —
/// i.e. sets always use the alias). Counts commas at angle depth 1,
/// ignoring commas nested in `()`/`[]`/deeper `<>`.
fn has_explicit_hasher(toks: &[Token], i: usize) -> bool {
    // Accept both `HashMap<…>` and turbofish `HashMap::<…>`.
    let mut j = i + 1;
    if path_sep_follows(toks, i)
        && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Punct('<')))
    {
        j = i + 3;
    }
    if !matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('<'))) {
        return false; // `HashMap::new()` etc.: default hasher
    }
    let is_set = matches!(&toks[i].tok, Tok::Ident(s) if s == "HashSet");
    let needed = if is_set { 1 } else { 2 };
    let mut angle = 0isize;
    let mut other = 0isize;
    let mut commas = 0usize;
    for t in toks.iter().skip(j) {
        match t.tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => {
                angle -= 1;
                if angle == 0 {
                    return commas >= needed;
                }
            }
            Tok::Punct('(') | Tok::Punct('[') => other += 1,
            Tok::Punct(')') | Tok::Punct(']') => other -= 1,
            Tok::Punct(',') if angle == 1 && other == 0 => commas += 1,
            Tok::Punct(';') => return commas >= needed, // statement ended: `a < b` comparison
            _ => {}
        }
    }
    commas >= needed
}

/// R4: within each `fn` body, every `.insert_logical(`/`.remove_logical(`
/// must be preceded by a `.append(` in that same body.
fn wal_order(toks: &[Token], in_test: &[bool], findings: &mut Vec<Finding>, rel_path: &str) {
    struct Frame {
        depth: isize,
        appended: bool,
    }
    let mut depth = 0isize;
    let mut fn_pending = false;
    let mut stack: Vec<Frame> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        match &t.tok {
            Tok::Ident(id) if id == "fn" => fn_pending = true,
            Tok::Punct('{') => {
                depth += 1;
                if fn_pending {
                    stack.push(Frame { depth, appended: false });
                    fn_pending = false;
                }
            }
            Tok::Punct('}') => {
                if stack.last().is_some_and(|f| f.depth == depth) {
                    stack.pop();
                }
                depth -= 1;
            }
            Tok::Ident(id) if id == config::WAL_APPENDER && is_method_or_path_call(toks, i) => {
                if let Some(f) = stack.last_mut() {
                    f.appended = true;
                }
            }
            Tok::Ident(id)
                if config::WAL_MUTATORS.contains(&id.as_str())
                    && is_method_or_path_call(toks, i) =>
            {
                let ordered = stack.last().is_some_and(|f| f.appended);
                if !ordered {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: t.line,
                        rule: Rule::WalOrder,
                        message: format!(
                            "`.{id}(` mutates the wrapped index with no preceding WAL \
                             `.append(` in this function — a crash here loses an \
                             acknowledged mutation (WAL-before-apply, DESIGN.md §8)"
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

/// R6: outside `domd-runtime`, `mpsc::channel()` (unbounded by
/// construction) is always a finding, and `.push_back(` is a finding
/// unless the same `fn` body performed a `.len(`/`.capacity(` call
/// earlier — the shape of an admission check. The heuristic is
/// deliberately coarse: a queue that grows without consulting its size
/// anywhere in the enqueue path cannot be shedding, and the rare
/// false positive takes a one-line justified waiver.
fn bounded_queues(toks: &[Token], in_test: &[bool], findings: &mut Vec<Finding>, rel_path: &str) {
    struct Frame {
        depth: isize,
        cap_checked: bool,
    }
    let mut depth = 0isize;
    let mut fn_pending = false;
    let mut stack: Vec<Frame> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        match &t.tok {
            Tok::Ident(id) if id == "fn" => fn_pending = true,
            Tok::Punct('{') => {
                depth += 1;
                if fn_pending {
                    stack.push(Frame { depth, cap_checked: false });
                    fn_pending = false;
                }
            }
            Tok::Punct('}') => {
                if stack.last().is_some_and(|f| f.depth == depth) {
                    stack.pop();
                }
                depth -= 1;
            }
            Tok::Ident(id)
                if id == "mpsc"
                    && path_sep_follows(toks, i)
                    && matches!(toks.get(i + 3).map(|t| &t.tok),
                                Some(Tok::Ident(m)) if m == "channel") =>
            {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: t.line,
                    rule: Rule::BoundedQueues,
                    message: "`mpsc::channel()` is unbounded — under overload it grows \
                              memory instead of shedding; use `mpsc::sync_channel` or \
                              the runtime's `BoundedQueue` and answer \
                              `DomdError::Overloaded`"
                        .into(),
                });
            }
            Tok::Ident(id)
                if matches!(id.as_str(), "len" | "capacity")
                    && is_method_or_path_call(toks, i) =>
            {
                if let Some(f) = stack.last_mut() {
                    f.cap_checked = true;
                }
            }
            Tok::Ident(id) if id == "push_back" && is_method_or_path_call(toks, i) => {
                let checked = stack.last().is_some_and(|f| f.cap_checked);
                if !checked {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: t.line,
                        rule: Rule::BoundedQueues,
                        message: "`.push_back(` with no capacity check (`.len(`/\
                                  `.capacity(`) earlier in this function — an \
                                  unguarded queue grows without bound under \
                                  overload; check and shed first, or waive with \
                                  the bound that holds"
                            .into(),
                    });
                }
            }
            _ => {}
        }
    }
}

/// True when the token stream contains `#![deny(... unsafe_code ...)]`.
fn has_deny_header(toks: &[Token]) -> bool {
    for i in 0..toks.len() {
        if matches!(toks[i].tok, Tok::Punct('#'))
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')))
            && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct('[')))
            && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Ident(d)) if d == "deny")
        {
            // Scan the attr's bracket span for the required lint name.
            let mut bracket = 1isize;
            let mut j = i + 3;
            while let Some(t) = toks.get(j + 1) {
                j += 1;
                match &t.tok {
                    Tok::Punct('[') => bracket += 1,
                    Tok::Punct(']') => {
                        bracket -= 1;
                        if bracket == 0 {
                            break;
                        }
                    }
                    Tok::Ident(id) if id == config::REQUIRED_DENY => return true,
                    _ => {}
                }
            }
        }
    }
    false
}

/// Parses waiver comments into well-formed candidates plus the
/// waiver-policy findings for malformed ones. Matching candidates to
/// findings happens in [`finish`], after the interprocedural rules run.
fn parse_waivers(
    rel_path: &str,
    comments: &[lexer::Comment],
    test_ranges: &[(usize, usize)],
) -> (Vec<Waiver>, Vec<Finding>) {
    const MARK: &str = "domd-lint: allow(";
    let in_test_line =
        |line: usize| test_ranges.iter().any(|(a, b)| (*a..=*b).contains(&line));

    let mut waivers: Vec<Waiver> = Vec::new();
    let mut meta: Vec<Finding> = Vec::new();
    for c in comments {
        // Waivers must be plain `//` or `/*` comments: doc comments are
        // rendered documentation (and routinely *describe* the waiver
        // syntax), so they never grant one.
        if c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        let Some(at) = c.text.find(MARK) else { continue };
        if in_test_line(c.line) {
            continue; // test code needs no waivers; ignore strays
        }
        let rest = &c.text[at + MARK.len()..];
        let Some(close) = rest.find(')') else {
            meta.push(Finding {
                file: rel_path.to_string(),
                line: c.line,
                rule: Rule::WaiverPolicy,
                message: "unclosed `domd-lint: allow(` comment".into(),
            });
            continue;
        };
        let rule_id = rest[..close].trim();
        let Some(rule) = Rule::from_id(rule_id) else {
            meta.push(Finding {
                file: rel_path.to_string(),
                line: c.line,
                rule: Rule::WaiverPolicy,
                message: format!("unknown rule `{rule_id}` in waiver"),
            });
            continue;
        };
        // Fixture expectation markers (`//~ …`) may share the line; they
        // are never part of the justification.
        let tail = &rest[close + 1..];
        let tail = tail.find("//~").map_or(tail, |cut| &tail[..cut]);
        let justification = tail
            .trim_start_matches(|ch: char| {
                ch.is_whitespace() || matches!(ch, '—' | '-' | '–' | ':')
            })
            .trim_end()
            .to_string();
        if justification.is_empty() {
            meta.push(Finding {
                file: rel_path.to_string(),
                line: c.line,
                rule: Rule::WaiverPolicy,
                message: format!(
                    "waiver for `{}` has no justification — write \
                     `// domd-lint: allow({}) — <why>`",
                    rule.id(),
                    rule.id()
                ),
            });
            continue;
        }
        waivers.push(Waiver { file: rel_path.to_string(), line: c.line, rule, justification });
    }
    (waivers, meta)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/core/src/example.rs";

    fn rules_found(src: &str) -> Vec<(usize, Rule)> {
        scan_file(LIB, src).violations.into_iter().map(|f| (f.line, f.rule)).collect()
    }

    #[test]
    fn unwrap_in_lib_code_is_flagged_and_test_code_is_not() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { Some(1).unwrap(); }\n}\n";
        assert_eq!(rules_found(src), vec![(1, Rule::NoPanic)]);
    }

    #[test]
    fn panic_macros_are_flagged_but_asserts_are_not() {
        let src = "fn f() { assert!(true); panic!(\"boom\"); }";
        assert_eq!(rules_found(src), vec![(1, Rule::NoPanic)]);
    }

    #[test]
    fn unwrap_or_family_is_not_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }";
        assert_eq!(rules_found(src), vec![]);
    }

    #[test]
    fn waiver_on_line_above_suppresses_and_is_inventoried() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // domd-lint: allow(no-panic) — caller guarantees Some\n\
                   x.unwrap()\n}\n";
        let scan = scan_file(LIB, src);
        assert!(scan.violations.is_empty(), "{:?}", scan.violations);
        assert_eq!(scan.waivers.len(), 1);
        assert_eq!(scan.waivers[0].justification, "caller guarantees Some");
    }

    #[test]
    fn unjustified_and_unused_waivers_are_violations() {
        let bad = "// domd-lint: allow(no-panic)\nfn f() {}\n";
        assert_eq!(rules_found(bad), vec![(1, Rule::WaiverPolicy)]);
        let unused = "// domd-lint: allow(no-panic) — nothing here\nfn f() {}\n";
        assert_eq!(rules_found(unused), vec![(1, Rule::WaiverPolicy)]);
    }

    #[test]
    fn default_hasher_maps_need_a_third_parameter() {
        assert_eq!(
            rules_found("fn f() { let m: HashMap<u32, (u8, u8)> = HashMap::new(); }"),
            vec![(1, Rule::Nondeterminism), (1, Rule::Nondeterminism)]
        );
        assert_eq!(
            rules_found(
                "type Fx<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;\n\
                 fn f(m: &FxHashMap<u32, u32>) -> Option<&u32> { m.get(&1) }"
            ),
            vec![]
        );
        // `use` declarations are not usage sites.
        assert_eq!(rules_found("use std::collections::HashMap;\nfn f() {}"), vec![]);
    }

    #[test]
    fn clocks_and_entropy_are_flagged_outside_bench() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules_found(src), vec![(1, Rule::Nondeterminism)]);
        assert_eq!(scan_file("crates/bench/src/util.rs", src).violations, vec![]);
        assert_eq!(
            rules_found("fn f() { let mut r = SmallRng::from_entropy(); }"),
            vec![(1, Rule::Nondeterminism)]
        );
    }

    #[test]
    fn thread_spawn_is_only_legal_in_runtime() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(rules_found(src), vec![(1, Rule::ThreadSpawn)]);
        assert_eq!(scan_file("crates/runtime/src/pool.rs", src).violations, vec![]);
    }

    #[test]
    fn wal_order_requires_append_before_mutation() {
        let bad = "impl D {\n  fn apply(&mut self) {\n    self.index.insert_logical(&r);\n  }\n}";
        let good = "impl D {\n  fn apply(&mut self) {\n    self.wal.append(&rec);\n    self.index.insert_logical(&r);\n  }\n}";
        for governed in config::WAL_ORDER_FILES {
            let scan = scan_file(governed, bad);
            assert_eq!(
                scan.violations.iter().map(|f| (f.line, f.rule)).collect::<Vec<_>>(),
                vec![(3, Rule::WalOrder)],
                "{governed} must be governed by R4"
            );
            assert!(scan_file(governed, good).violations.is_empty());
        }
        // The same source outside the governed files is not R4's business.
        assert!(scan_file(LIB, bad).violations.is_empty());
    }

    #[test]
    fn unbounded_channels_and_unguarded_push_back_are_flagged() {
        let src = "fn f() { let (tx, rx) = mpsc::channel(); }";
        assert_eq!(rules_found(src), vec![(1, Rule::BoundedQueues)]);
        // `sync_channel` is bounded and fine.
        assert_eq!(rules_found("fn f() { let (tx, rx) = mpsc::sync_channel(8); }"), vec![]);
        // The runtime crate owns the bounded primitives.
        assert_eq!(scan_file("crates/runtime/src/queue.rs", src).violations, vec![]);
    }

    #[test]
    fn push_back_needs_a_capacity_check_in_the_same_fn() {
        let bad = "fn f(q: &mut VecDeque<u32>, x: u32) {\n  q.push_back(x);\n}";
        assert_eq!(rules_found(bad), vec![(2, Rule::BoundedQueues)]);
        let good = "fn f(q: &mut VecDeque<u32>, cap: usize, x: u32) -> bool {\n\
                    \x20 if q.len() >= cap { return false; }\n\
                    \x20 q.push_back(x);\n  true\n}";
        assert_eq!(rules_found(good), vec![]);
        // The check must come *before* the push in token order.
        let late = "fn f(q: &mut VecDeque<u32>, x: u32) -> usize {\n\
                    \x20 q.push_back(x);\n  q.len()\n}";
        assert_eq!(rules_found(late), vec![(2, Rule::BoundedQueues)]);
        assert_eq!(scan_file("crates/runtime/src/queue.rs", bad).violations, vec![]);
    }

    const SERVE: &str = "crates/serve/src/server.rs";

    #[test]
    fn lock_inversion_is_caught_through_intervening_calls() {
        // wal (rank 3) held → helper → mid → durable (rank 2): the
        // inversion is two frames away from the acquisition.
        let src = "\
fn outer(&self) {
    let g = self.wal.lock();
    self.helper();
}
fn helper(&self) { self.mid(); }
fn mid(&self) { let d = self.durable.lock(); }
";
        let found = scan_file(SERVE, src).violations;
        assert_eq!(
            found.iter().map(|f| (f.line, f.rule)).collect::<Vec<_>>(),
            vec![(2, Rule::LockOrder)],
            "{found:?}"
        );
        assert!(found[0].message.contains("helper"), "{}", found[0].message);
    }

    #[test]
    fn waiver_on_the_call_site_does_not_suppress_the_acquisition_finding() {
        // The finding anchors at the `wal.lock()` line. A waiver on the
        // call that completes the violation must not cover it — and
        // being unused, that waiver is itself a violation.
        let call_site_waived = "\
fn outer(&self) {
    let g = self.wal.lock();
    // domd-lint: allow(lock-order) — misplaced: the guard is the problem
    self.helper();
}
fn helper(&self) { let d = self.durable.lock(); }
";
        let found = scan_file(SERVE, call_site_waived).violations;
        assert_eq!(
            found.iter().map(|f| (f.line, f.rule)).collect::<Vec<_>>(),
            vec![(2, Rule::LockOrder), (3, Rule::WaiverPolicy)],
            "{found:?}"
        );

        // On the acquisition line, the same waiver suppresses and counts
        // as used — interprocedural findings feed waiver accounting.
        let acq_waived = "\
fn outer(&self) {
    // domd-lint: allow(lock-order) — wal guard provably released by helper's bound
    let g = self.wal.lock();
    self.helper();
}
fn helper(&self) { let d = self.durable.lock(); }
";
        let scan = scan_file(SERVE, acq_waived);
        assert!(scan.violations.is_empty(), "{:?}", scan.violations);
        assert_eq!(scan.waivers.len(), 1);
        assert_eq!(scan.waivers[0].rule, Rule::LockOrder);
    }

    #[test]
    fn chained_guards_are_transient_but_still_checked_as_inner() {
        // A chained guard is not held afterwards…
        let transient = "\
fn f(&self) -> Result<(), E> {
    let n = self.durable.lock().map_err(drop)?.len();
    let b = self.breaker.lock();
    Ok(())
}
";
        assert!(scan_file(SERVE, transient).violations.is_empty());
        // …but acquiring it while a higher rank is held still inverts.
        let inner = "\
fn f(&self) -> Result<(), E> {
    let g = self.wal.lock();
    let n = self.durable.lock().map_err(drop)?.len();
    Ok(())
}
";
        let found = scan_file(SERVE, inner).violations;
        assert_eq!(
            found.iter().map(|f| (f.line, f.rule)).collect::<Vec<_>>(),
            vec![(3, Rule::LockOrder)]
        );
    }

    #[test]
    fn ack_before_sync_is_flagged_across_the_flattened_path() {
        // Publish via a callee, sync never happens → both the publish
        // and the ack are findings.
        let bad = "\
fn handle_ingest(&self) -> Reply {
    self.apply();
    Reply::Ingested { row }
}
fn apply(&self) { self.store.install(next); }
";
        let found = scan_file(SERVE, bad).violations;
        assert_eq!(
            found.iter().map(|f| (f.line, f.rule)).collect::<Vec<_>>(),
            vec![(3, Rule::AckOrder), (5, Rule::AckOrder)],
            "{found:?}"
        );
        // The closure-argument fsync orders before the enclosing call's
        // publish: Rust evaluates arguments first, and so does R8.
        let good = "\
fn handle_ingest(&self) -> Reply {
    self.store.update(|snap| { self.durable_sync(); });
    Reply::Ingested { row }
}
fn durable_sync(&self) { d.index.sync(); }
fn update(&self, f: F) { self.install(next); }
";
        assert!(scan_file(SERVE, good).violations.is_empty());
    }

    #[test]
    fn exit_code_map_checks_variants_codes_and_docs() {
        let bad = "\
//! | exit code | class |
//! |-----------|-------|
//! | 2         | config |
//! | 9         | gone |
pub enum DomdError { Config, Io, Parse }
fn exit_code(e: &DomdError) -> u8 {
    match e {
        DomdError::Config => 2,
        DomdError::Io => 2,
        _ => 1,
    }
}
";
        let found = scan_file("src/bin/domd.rs", bad).violations;
        let lines: Vec<(usize, Rule)> = found.iter().map(|f| (f.line, f.rule)).collect();
        // 4: doc row 9 maps to nothing; 5: Parse unmapped (and the doc
        // table omits no mapped code beyond those); 9: Io reuses code 2;
        // 10: wildcard arm.
        assert_eq!(
            lines,
            vec![
                (4, Rule::ExitCodeMap),
                (5, Rule::ExitCodeMap),
                (9, Rule::ExitCodeMap),
                (10, Rule::ExitCodeMap),
            ],
            "{found:?}"
        );
        let good = "\
//! | exit code | class |
//! |-----------|-------|
//! | 2         | config |
//! | 3         | io |
pub enum DomdError { Config, Io }
fn exit_code(e: &DomdError) -> u8 {
    match e {
        DomdError::Config => 2,
        DomdError::Io => 3,
    }
}
";
        assert!(scan_file("src/bin/domd.rs", good).violations.is_empty());
    }

    #[test]
    fn crate_roots_need_the_deny_header() {
        let bare = "pub mod x;\n";
        let scan = scan_file("crates/core/src/lib.rs", bare);
        assert_eq!(
            scan.violations.iter().map(|f| (f.line, f.rule)).collect::<Vec<_>>(),
            vec![(1, Rule::LintHeader)]
        );
        let ok = "#![deny(unsafe_code)]\npub mod x;\n";
        assert!(scan_file("crates/core/src/lib.rs", ok).violations.is_empty());
        let grouped = "#![deny(unsafe_code, missing_docs)]\npub mod x;\n";
        assert!(scan_file("crates/core/src/lib.rs", grouped).violations.is_empty());
        assert!(scan_file(LIB, bare).violations.is_empty(), "non-roots are exempt");
    }
}
