//! The per-file rule engine.
//!
//! Rules match token sequences from [`crate::lexer`], so string/comment
//! content can never trigger them. Test code — `#[cfg(test)]` modules and
//! `#[test]` functions — is structurally skipped for R1–R4: the
//! invariants guard the ingest→train→serve path, and test code panics
//! and spawns by design.
//!
//! A finding is suppressed only by an inline waiver comment on the same
//! line or the line directly above:
//!
//! ```text
//! // domd-lint: allow(no-panic) — slice length checked two lines up
//! ```
//!
//! Waivers require a justification, must actually suppress something,
//! and are inventoried into the report so the full exempted surface is
//! visible to CI and reviewers.

use crate::config;
use crate::lexer::{self, Tok, Token};
use crate::report::{Finding, Rule, Waiver};

/// Result of scanning one file: surviving violations plus the waivers
/// that were applied.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Violations that no waiver covered.
    pub violations: Vec<Finding>,
    /// Waivers that suppressed a finding.
    pub waivers: Vec<Waiver>,
}

/// Scans one file's source. `rel_path` is workspace-relative with `/`
/// separators; it selects which rules and exemptions apply.
pub fn scan_file(rel_path: &str, source: &str) -> FileScan {
    let lexed = lexer::lex(source);
    let toks = &lexed.tokens;
    let in_test = test_mask(toks);
    let test_ranges = test_line_ranges(toks, &in_test);

    let mut findings: Vec<Finding> = Vec::new();
    let mk = |line: usize, rule: Rule, message: String| Finding {
        file: rel_path.to_string(),
        line,
        rule,
        message,
    };

    // R1 — no-panic.
    if !config::matches_prefix(rel_path, config::NO_PANIC_EXEMPT) {
        for (i, t) in toks.iter().enumerate() {
            if in_test[i] {
                continue;
            }
            if let Tok::Ident(name) = &t.tok {
                let panicky_method =
                    matches!(name.as_str(), "unwrap" | "expect" | "unwrap_err" | "expect_err");
                if panicky_method && is_method_or_path_call(toks, i) {
                    findings.push(mk(
                        t.line,
                        Rule::NoPanic,
                        format!(
                            "`.{name}()` in non-test code — return a typed \
                             `DomdError`/`StorageError`, or waive: \
                             `// domd-lint: allow(no-panic) — <why this cannot fail>`"
                        ),
                    ));
                }
                let panicky_macro =
                    matches!(name.as_str(), "panic" | "unreachable" | "todo" | "unimplemented");
                if panicky_macro && matches!(toks.get(i + 1), Some(Token { tok: Tok::Punct('!'), .. }))
                {
                    findings.push(mk(
                        t.line,
                        Rule::NoPanic,
                        format!(
                            "`{name}!` in non-test code — return a typed error, or waive: \
                             `// domd-lint: allow(no-panic) — <why this is unreachable>`"
                        ),
                    ));
                }
            }
        }
    }

    // R2 — thread-spawn.
    if !config::matches_prefix(rel_path, config::THREAD_ALLOWED) {
        for (i, t) in toks.iter().enumerate() {
            if in_test[i] {
                continue;
            }
            if ident_is(t, "thread") && path_sep_follows(toks, i) {
                if let Some(Tok::Ident(what)) = toks.get(i + 3).map(|t| &t.tok) {
                    if matches!(what.as_str(), "spawn" | "scope" | "Builder") {
                        findings.push(mk(
                            t.line,
                            Rule::ThreadSpawn,
                            format!(
                                "`thread::{what}` outside `domd-runtime` — all parallelism \
                                 must flow through the bounded `domd_runtime` pool so \
                                 thread counts cannot change results"
                            ),
                        ));
                    }
                }
            }
        }
    }

    // R3 — nondeterminism: clocks, ambient RNG, default-hasher maps.
    let time_ok = config::matches_prefix(rel_path, config::TIME_ALLOWED);
    let mut in_use = false;
    for (i, t) in toks.iter().enumerate() {
        match &t.tok {
            Tok::Ident(id) if id == "use" => in_use = true,
            Tok::Punct(';') => in_use = false,
            _ => {}
        }
        if in_test[i] {
            continue;
        }
        if let Tok::Ident(name) = &t.tok {
            match name.as_str() {
                "SystemTime" | "Instant"
                    if !time_ok
                        && path_sep_follows(toks, i)
                        && matches!(toks.get(i + 3).map(|t| &t.tok),
                                    Some(Tok::Ident(m)) if m == "now") =>
                {
                    findings.push(mk(
                        t.line,
                        Rule::Nondeterminism,
                        format!(
                            "`{name}::now` in result-producing code — outputs must be \
                             a pure function of inputs and seeds (timing belongs in \
                             `crates/bench`)"
                        ),
                    ));
                }
                "thread_rng" | "from_entropy" => {
                    findings.push(mk(
                        t.line,
                        Rule::Nondeterminism,
                        format!(
                            "`{name}` draws OS entropy — seed a `SmallRng` explicitly so \
                             every run is reproducible"
                        ),
                    ));
                }
                "HashMap" | "HashSet" if !in_use && !has_explicit_hasher(toks, i) => {
                    findings.push(mk(
                        t.line,
                        Rule::Nondeterminism,
                        format!(
                            "default-hasher `{name}` — iteration order is unstable \
                             across builds; use `domd_data::hash::Fx{name}`, a \
                             `BTree` map, or waive with a lookup-only justification"
                        ),
                    ));
                }
                _ => {}
            }
        }
    }

    // R4 — wal-order, in the durable wrapper and the delta module whose
    // mutations replay the wrapper's log order.
    if config::WAL_ORDER_FILES.contains(&rel_path) {
        wal_order(toks, &in_test, &mut findings, rel_path);
    }

    // R6 — bounded-queues, everywhere but the runtime's own primitives.
    if !config::matches_prefix(rel_path, config::QUEUE_ALLOWED) {
        bounded_queues(toks, &in_test, &mut findings, rel_path);
    }

    // R5 — lint-header on crate roots.
    if config::is_crate_root(rel_path) && !has_deny_header(toks) {
        findings.push(mk(
            1,
            Rule::LintHeader,
            format!(
                "crate root missing `#![deny({})]` — every crate carries the agreed \
                 lint header (DESIGN.md §9)",
                config::REQUIRED_DENY
            ),
        ));
    }

    apply_waivers(rel_path, &lexed.comments, &test_ranges, findings)
}

/// True when `toks[i]` names a rule-relevant ident (exact match).
fn ident_is(t: &Token, name: &str) -> bool {
    matches!(&t.tok, Tok::Ident(s) if s == name)
}

/// True when `toks[i]` is called as `.name(` or `::name` — the method
/// and fn-path forms that can actually panic (a local fn coincidentally
/// named `expect` would be `expect(`, which does not match).
fn is_method_or_path_call(toks: &[Token], i: usize) -> bool {
    let dot = i >= 1 && matches!(toks[i - 1].tok, Tok::Punct('.'));
    let path = i >= 2
        && matches!(toks[i - 1].tok, Tok::Punct(':'))
        && matches!(toks[i - 2].tok, Tok::Punct(':'));
    dot || path
}

/// True when `::` follows `toks[i]` (two `:` puncts).
fn path_sep_follows(toks: &[Token], i: usize) -> bool {
    matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
        && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
}

/// True when the `HashMap`/`HashSet` at `i` is written with an explicit
/// hasher parameter: `<K, V, S>` (two-plus top-level commas for maps;
/// one-plus for sets is still ambiguous, so sets also need two commas —
/// i.e. sets always use the alias). Counts commas at angle depth 1,
/// ignoring commas nested in `()`/`[]`/deeper `<>`.
fn has_explicit_hasher(toks: &[Token], i: usize) -> bool {
    // Accept both `HashMap<…>` and turbofish `HashMap::<…>`.
    let mut j = i + 1;
    if path_sep_follows(toks, i)
        && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Punct('<')))
    {
        j = i + 3;
    }
    if !matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('<'))) {
        return false; // `HashMap::new()` etc.: default hasher
    }
    let is_set = matches!(&toks[i].tok, Tok::Ident(s) if s == "HashSet");
    let needed = if is_set { 1 } else { 2 };
    let mut angle = 0isize;
    let mut other = 0isize;
    let mut commas = 0usize;
    for t in toks.iter().skip(j) {
        match t.tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => {
                angle -= 1;
                if angle == 0 {
                    return commas >= needed;
                }
            }
            Tok::Punct('(') | Tok::Punct('[') => other += 1,
            Tok::Punct(')') | Tok::Punct(']') => other -= 1,
            Tok::Punct(',') if angle == 1 && other == 0 => commas += 1,
            Tok::Punct(';') => return commas >= needed, // statement ended: `a < b` comparison
            _ => {}
        }
    }
    commas >= needed
}

/// R4: within each `fn` body, every `.insert_logical(`/`.remove_logical(`
/// must be preceded by a `.append(` in that same body.
fn wal_order(toks: &[Token], in_test: &[bool], findings: &mut Vec<Finding>, rel_path: &str) {
    struct Frame {
        depth: isize,
        appended: bool,
    }
    let mut depth = 0isize;
    let mut fn_pending = false;
    let mut stack: Vec<Frame> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        match &t.tok {
            Tok::Ident(id) if id == "fn" => fn_pending = true,
            Tok::Punct('{') => {
                depth += 1;
                if fn_pending {
                    stack.push(Frame { depth, appended: false });
                    fn_pending = false;
                }
            }
            Tok::Punct('}') => {
                if stack.last().is_some_and(|f| f.depth == depth) {
                    stack.pop();
                }
                depth -= 1;
            }
            Tok::Ident(id) if id == config::WAL_APPENDER && is_method_or_path_call(toks, i) => {
                if let Some(f) = stack.last_mut() {
                    f.appended = true;
                }
            }
            Tok::Ident(id)
                if config::WAL_MUTATORS.contains(&id.as_str())
                    && is_method_or_path_call(toks, i) =>
            {
                let ordered = stack.last().is_some_and(|f| f.appended);
                if !ordered {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: t.line,
                        rule: Rule::WalOrder,
                        message: format!(
                            "`.{id}(` mutates the wrapped index with no preceding WAL \
                             `.append(` in this function — a crash here loses an \
                             acknowledged mutation (WAL-before-apply, DESIGN.md §8)"
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

/// R6: outside `domd-runtime`, `mpsc::channel()` (unbounded by
/// construction) is always a finding, and `.push_back(` is a finding
/// unless the same `fn` body performed a `.len(`/`.capacity(` call
/// earlier — the shape of an admission check. The heuristic is
/// deliberately coarse: a queue that grows without consulting its size
/// anywhere in the enqueue path cannot be shedding, and the rare
/// false positive takes a one-line justified waiver.
fn bounded_queues(toks: &[Token], in_test: &[bool], findings: &mut Vec<Finding>, rel_path: &str) {
    struct Frame {
        depth: isize,
        cap_checked: bool,
    }
    let mut depth = 0isize;
    let mut fn_pending = false;
    let mut stack: Vec<Frame> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        match &t.tok {
            Tok::Ident(id) if id == "fn" => fn_pending = true,
            Tok::Punct('{') => {
                depth += 1;
                if fn_pending {
                    stack.push(Frame { depth, cap_checked: false });
                    fn_pending = false;
                }
            }
            Tok::Punct('}') => {
                if stack.last().is_some_and(|f| f.depth == depth) {
                    stack.pop();
                }
                depth -= 1;
            }
            Tok::Ident(id)
                if id == "mpsc"
                    && path_sep_follows(toks, i)
                    && matches!(toks.get(i + 3).map(|t| &t.tok),
                                Some(Tok::Ident(m)) if m == "channel") =>
            {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: t.line,
                    rule: Rule::BoundedQueues,
                    message: "`mpsc::channel()` is unbounded — under overload it grows \
                              memory instead of shedding; use `mpsc::sync_channel` or \
                              the runtime's `BoundedQueue` and answer \
                              `DomdError::Overloaded`"
                        .into(),
                });
            }
            Tok::Ident(id)
                if matches!(id.as_str(), "len" | "capacity")
                    && is_method_or_path_call(toks, i) =>
            {
                if let Some(f) = stack.last_mut() {
                    f.cap_checked = true;
                }
            }
            Tok::Ident(id) if id == "push_back" && is_method_or_path_call(toks, i) => {
                let checked = stack.last().is_some_and(|f| f.cap_checked);
                if !checked {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: t.line,
                        rule: Rule::BoundedQueues,
                        message: "`.push_back(` with no capacity check (`.len(`/\
                                  `.capacity(`) earlier in this function — an \
                                  unguarded queue grows without bound under \
                                  overload; check and shed first, or waive with \
                                  the bound that holds"
                            .into(),
                    });
                }
            }
            _ => {}
        }
    }
}

/// True when the token stream contains `#![deny(... unsafe_code ...)]`.
fn has_deny_header(toks: &[Token]) -> bool {
    for i in 0..toks.len() {
        if matches!(toks[i].tok, Tok::Punct('#'))
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')))
            && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct('[')))
            && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Ident(d)) if d == "deny")
        {
            // Scan the attr's bracket span for the required lint name.
            let mut bracket = 1isize;
            let mut j = i + 3;
            while let Some(t) = toks.get(j + 1) {
                j += 1;
                match &t.tok {
                    Tok::Punct('[') => bracket += 1,
                    Tok::Punct(']') => {
                        bracket -= 1;
                        if bracket == 0 {
                            break;
                        }
                    }
                    Tok::Ident(id) if id == config::REQUIRED_DENY => return true,
                    _ => {}
                }
            }
        }
    }
    false
}

/// Marks every token inside `#[cfg(test)]` / `#[test]` items.
fn test_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut depth = 0isize;
    let mut skip_at: Option<isize> = None;
    let mut pending = false;
    let mut i = 0usize;
    while i < toks.len() {
        // Outer attribute `#[ … ]`: does it force a test item?
        if skip_at.is_none()
            && matches!(toks[i].tok, Tok::Punct('#'))
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            let mut bracket = 1isize;
            let mut j = i + 1;
            let mut idents: Vec<&str> = Vec::new();
            while let Some(t) = toks.get(j + 1) {
                j += 1;
                match &t.tok {
                    Tok::Punct('[') => bracket += 1,
                    Tok::Punct(']') => {
                        bracket -= 1;
                        if bracket == 0 {
                            break;
                        }
                    }
                    Tok::Ident(id) => idents.push(id),
                    _ => {}
                }
            }
            let is_test_attr = idents.first() == Some(&"test")
                || (idents.contains(&"cfg") && idents.contains(&"test"));
            if is_test_attr {
                pending = true;
            }
            i = j + 1;
            continue;
        }
        match toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                if pending && skip_at.is_none() {
                    skip_at = Some(depth);
                    pending = false;
                }
            }
            Tok::Punct('}') => {
                if skip_at == Some(depth) {
                    mask[i] = true; // the closing brace is still test code
                    skip_at = None;
                }
                depth -= 1;
            }
            Tok::Punct(';') if pending && skip_at.is_none() => pending = false,
            _ => {}
        }
        if skip_at.is_some() {
            mask[i] = true;
        }
        i += 1;
    }
    mask
}

/// Line ranges covered by test code, for waiver bookkeeping.
fn test_line_ranges(toks: &[Token], mask: &[bool]) -> Vec<(usize, usize)> {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for (t, m) in toks.iter().zip(mask) {
        if !*m {
            continue;
        }
        match ranges.last_mut() {
            Some((_, end)) if t.line <= *end + 1 => *end = (*end).max(t.line),
            _ => ranges.push((t.line, t.line)),
        }
    }
    ranges
}

/// Parses waiver comments, applies them to `findings`, and flags
/// malformed or unused waivers.
fn apply_waivers(
    rel_path: &str,
    comments: &[lexer::Comment],
    test_ranges: &[(usize, usize)],
    findings: Vec<Finding>,
) -> FileScan {
    const MARK: &str = "domd-lint: allow(";
    let in_test_line =
        |line: usize| test_ranges.iter().any(|(a, b)| (*a..=*b).contains(&line));

    let mut waivers: Vec<(Waiver, bool)> = Vec::new(); // (waiver, used)
    let mut meta: Vec<Finding> = Vec::new();
    for c in comments {
        // Waivers must be plain `//` or `/*` comments: doc comments are
        // rendered documentation (and routinely *describe* the waiver
        // syntax), so they never grant one.
        if c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        let Some(at) = c.text.find(MARK) else { continue };
        if in_test_line(c.line) {
            continue; // test code needs no waivers; ignore strays
        }
        let rest = &c.text[at + MARK.len()..];
        let Some(close) = rest.find(')') else {
            meta.push(Finding {
                file: rel_path.to_string(),
                line: c.line,
                rule: Rule::WaiverPolicy,
                message: "unclosed `domd-lint: allow(` comment".into(),
            });
            continue;
        };
        let rule_id = rest[..close].trim();
        let Some(rule) = Rule::from_id(rule_id) else {
            meta.push(Finding {
                file: rel_path.to_string(),
                line: c.line,
                rule: Rule::WaiverPolicy,
                message: format!("unknown rule `{rule_id}` in waiver"),
            });
            continue;
        };
        // Fixture expectation markers (`//~ …`) may share the line; they
        // are never part of the justification.
        let tail = &rest[close + 1..];
        let tail = tail.find("//~").map_or(tail, |cut| &tail[..cut]);
        let justification = tail
            .trim_start_matches(|ch: char| {
                ch.is_whitespace() || matches!(ch, '—' | '-' | '–' | ':')
            })
            .trim_end()
            .to_string();
        if justification.is_empty() {
            meta.push(Finding {
                file: rel_path.to_string(),
                line: c.line,
                rule: Rule::WaiverPolicy,
                message: format!(
                    "waiver for `{}` has no justification — write \
                     `// domd-lint: allow({}) — <why>`",
                    rule.id(),
                    rule.id()
                ),
            });
            continue;
        }
        waivers.push((
            Waiver { file: rel_path.to_string(), line: c.line, rule, justification },
            false,
        ));
    }

    let mut surviving: Vec<Finding> = Vec::new();
    for f in findings {
        let covered = waivers.iter_mut().find(|(w, _)| {
            w.rule == f.rule && (w.line == f.line || w.line + 1 == f.line)
        });
        match covered {
            Some((_, used)) => *used = true,
            None => surviving.push(f),
        }
    }
    for (w, used) in &waivers {
        if !used {
            surviving.push(Finding {
                file: rel_path.to_string(),
                line: w.line,
                rule: Rule::WaiverPolicy,
                message: format!(
                    "waiver for `{}` suppresses nothing — remove it (a stale waiver \
                     hides the next real violation)",
                    w.rule.id()
                ),
            });
        }
    }
    surviving.extend(meta);

    FileScan {
        violations: surviving,
        waivers: waivers.into_iter().filter(|(_, used)| *used).map(|(w, _)| w).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/core/src/example.rs";

    fn rules_found(src: &str) -> Vec<(usize, Rule)> {
        scan_file(LIB, src).violations.into_iter().map(|f| (f.line, f.rule)).collect()
    }

    #[test]
    fn unwrap_in_lib_code_is_flagged_and_test_code_is_not() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { Some(1).unwrap(); }\n}\n";
        assert_eq!(rules_found(src), vec![(1, Rule::NoPanic)]);
    }

    #[test]
    fn panic_macros_are_flagged_but_asserts_are_not() {
        let src = "fn f() { assert!(true); panic!(\"boom\"); }";
        assert_eq!(rules_found(src), vec![(1, Rule::NoPanic)]);
    }

    #[test]
    fn unwrap_or_family_is_not_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }";
        assert_eq!(rules_found(src), vec![]);
    }

    #[test]
    fn waiver_on_line_above_suppresses_and_is_inventoried() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // domd-lint: allow(no-panic) — caller guarantees Some\n\
                   x.unwrap()\n}\n";
        let scan = scan_file(LIB, src);
        assert!(scan.violations.is_empty(), "{:?}", scan.violations);
        assert_eq!(scan.waivers.len(), 1);
        assert_eq!(scan.waivers[0].justification, "caller guarantees Some");
    }

    #[test]
    fn unjustified_and_unused_waivers_are_violations() {
        let bad = "// domd-lint: allow(no-panic)\nfn f() {}\n";
        assert_eq!(rules_found(bad), vec![(1, Rule::WaiverPolicy)]);
        let unused = "// domd-lint: allow(no-panic) — nothing here\nfn f() {}\n";
        assert_eq!(rules_found(unused), vec![(1, Rule::WaiverPolicy)]);
    }

    #[test]
    fn default_hasher_maps_need_a_third_parameter() {
        assert_eq!(
            rules_found("fn f() { let m: HashMap<u32, (u8, u8)> = HashMap::new(); }"),
            vec![(1, Rule::Nondeterminism), (1, Rule::Nondeterminism)]
        );
        assert_eq!(
            rules_found(
                "type Fx<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;\n\
                 fn f(m: &FxHashMap<u32, u32>) -> Option<&u32> { m.get(&1) }"
            ),
            vec![]
        );
        // `use` declarations are not usage sites.
        assert_eq!(rules_found("use std::collections::HashMap;\nfn f() {}"), vec![]);
    }

    #[test]
    fn clocks_and_entropy_are_flagged_outside_bench() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules_found(src), vec![(1, Rule::Nondeterminism)]);
        assert_eq!(scan_file("crates/bench/src/util.rs", src).violations, vec![]);
        assert_eq!(
            rules_found("fn f() { let mut r = SmallRng::from_entropy(); }"),
            vec![(1, Rule::Nondeterminism)]
        );
    }

    #[test]
    fn thread_spawn_is_only_legal_in_runtime() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(rules_found(src), vec![(1, Rule::ThreadSpawn)]);
        assert_eq!(scan_file("crates/runtime/src/pool.rs", src).violations, vec![]);
    }

    #[test]
    fn wal_order_requires_append_before_mutation() {
        let bad = "impl D {\n  fn apply(&mut self) {\n    self.index.insert_logical(&r);\n  }\n}";
        let good = "impl D {\n  fn apply(&mut self) {\n    self.wal.append(&rec);\n    self.index.insert_logical(&r);\n  }\n}";
        for governed in config::WAL_ORDER_FILES {
            let scan = scan_file(governed, bad);
            assert_eq!(
                scan.violations.iter().map(|f| (f.line, f.rule)).collect::<Vec<_>>(),
                vec![(3, Rule::WalOrder)],
                "{governed} must be governed by R4"
            );
            assert!(scan_file(governed, good).violations.is_empty());
        }
        // The same source outside the governed files is not R4's business.
        assert!(scan_file(LIB, bad).violations.is_empty());
    }

    #[test]
    fn unbounded_channels_and_unguarded_push_back_are_flagged() {
        let src = "fn f() { let (tx, rx) = mpsc::channel(); }";
        assert_eq!(rules_found(src), vec![(1, Rule::BoundedQueues)]);
        // `sync_channel` is bounded and fine.
        assert_eq!(rules_found("fn f() { let (tx, rx) = mpsc::sync_channel(8); }"), vec![]);
        // The runtime crate owns the bounded primitives.
        assert_eq!(scan_file("crates/runtime/src/queue.rs", src).violations, vec![]);
    }

    #[test]
    fn push_back_needs_a_capacity_check_in_the_same_fn() {
        let bad = "fn f(q: &mut VecDeque<u32>, x: u32) {\n  q.push_back(x);\n}";
        assert_eq!(rules_found(bad), vec![(2, Rule::BoundedQueues)]);
        let good = "fn f(q: &mut VecDeque<u32>, cap: usize, x: u32) -> bool {\n\
                    \x20 if q.len() >= cap { return false; }\n\
                    \x20 q.push_back(x);\n  true\n}";
        assert_eq!(rules_found(good), vec![]);
        // The check must come *before* the push in token order.
        let late = "fn f(q: &mut VecDeque<u32>, x: u32) -> usize {\n\
                    \x20 q.push_back(x);\n  q.len()\n}";
        assert_eq!(rules_found(late), vec![(2, Rule::BoundedQueues)]);
        assert_eq!(scan_file("crates/runtime/src/queue.rs", bad).violations, vec![]);
    }

    #[test]
    fn crate_roots_need_the_deny_header() {
        let bare = "pub mod x;\n";
        let scan = scan_file("crates/core/src/lib.rs", bare);
        assert_eq!(
            scan.violations.iter().map(|f| (f.line, f.rule)).collect::<Vec<_>>(),
            vec![(1, Rule::LintHeader)]
        );
        let ok = "#![deny(unsafe_code)]\npub mod x;\n";
        assert!(scan_file("crates/core/src/lib.rs", ok).violations.is_empty());
        let grouped = "#![deny(unsafe_code, missing_docs)]\npub mod x;\n";
        assert!(scan_file("crates/core/src/lib.rs", grouped).violations.is_empty());
        assert!(scan_file(LIB, bare).violations.is_empty(), "non-roots are exempt");
    }
}
