//! Structural recovery over the token stream: items, bodies, call sites.
//!
//! The per-line rules of PR 5 match flat token windows; the
//! interprocedural rules (R7 `lock-order`, R8 `ack-order`, R9
//! `exit-code-map`) need *structure*: which `fn` a token belongs to,
//! how its body's blocks nest, and where its call sites are. This module
//! recovers exactly that by a single recursive-descent pass over
//! [`crate::lexer::Lexed`] — no full Rust grammar, just the shapes the
//! rules consume:
//!
//! * **Items** — `fn` definitions (free, `impl`-owned, nested), each
//!   `#[cfg(test)]`/`#[test]`-classified so test code never enters the
//!   call graph;
//! * **Bodies as block trees** — every `{ … }` inside a body becomes a
//!   node in a parent-indexed tree, so a lock guard's scope ("held for
//!   the rest of the enclosing block") is an ancestor query;
//! * **Events** — call sites and marker identifiers in *effect order*:
//!   a call's sequence position is its **closing parenthesis**, so the
//!   events inside its argument list (closure bodies included) precede
//!   the call itself, exactly as Rust evaluates them. This is what lets
//!   R8 see the fsync inside `store.update(|snap| { …; sync() })` happen
//!   before `update`'s own epoch publish.
//!
//! The pass also extracts the two R9 shapes when a file declares them:
//! the `DomdError` variant list and the `fn exit_code` match arms plus
//! any `| code | … |` doc-comment table rows.
//!
//! Everything here is an over-approximation by design; the policy is
//! documented in [`crate::callgraph`] and DESIGN.md §14.

use crate::lexer::{Lexed, Tok, Token};

/// One recovered function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Bare function name (`handle_ingest`).
    pub name: String,
    /// Owner-qualified display name (`ServeCore::handle_ingest`).
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// True when the fn is test code (`#[test]` or inside `#[cfg(test)]`).
    pub is_test: bool,
    /// Parent index per block; block 0 is the fn body and is its own
    /// parent. `blocks[i] <= i` always holds.
    pub blocks: Vec<u32>,
    /// Call and marker events, in effect order (ascending `seq`).
    pub events: Vec<Event>,
}

/// What an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvKind {
    /// A call site: `name(…)` or `.name(…)`.
    Call,
    /// A bare identifier of interest (configured ack markers, e.g. the
    /// `Ingested` reply variant, which is constructed without parens).
    Marker,
}

/// One body event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Call or marker.
    pub kind: EvKind,
    /// The called/marked identifier.
    pub name: String,
    /// For `recv.name(…)` method calls, the receiver's final identifier
    /// (`tenant.breaker.lock()` → `breaker`); `None` for free calls and
    /// computed receivers (`xs[i].lock()`).
    pub recv: Option<String>,
    /// 1-based source line of the identifier.
    pub line: usize,
    /// Effect-order position (token index; for calls, of the closing
    /// parenthesis).
    pub seq: u32,
    /// Index into [`FnDef::blocks`] of the innermost enclosing block.
    pub block: u32,
    /// True when the call's result is immediately consumed by a further
    /// method call (`x.lock().expect("…").index.len()`), i.e. the value
    /// is a statement temporary, not a binding. `.expect`/`.unwrap`/
    /// `.map_err` adapters are skipped first — they transform the guard,
    /// they don't consume it. R7 treats chained lock guards as
    /// *transient*: they participate as the inner lock of an ordering
    /// violation but are not modeled as held afterwards.
    pub chained: bool,
}

/// The R9 shape of a `fn exit_code`-style error→code map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExitMap {
    /// Line of the `fn` keyword.
    pub fn_line: usize,
    /// `(variant, code-literal-text, line)` per `DomdError::V … => N` arm.
    pub arms: Vec<(String, String, usize)>,
    /// Line of a `_ =>` wildcard arm, when one exists.
    pub wildcard: Option<usize>,
    /// `(code, line)` rows of any `| N | … |` doc-comment table.
    pub doc_codes: Vec<(u32, usize)>,
}

/// Everything the structural pass recovers from one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedFile {
    /// Function definitions in source order.
    pub fns: Vec<FnDef>,
    /// `(variant, line)` list when the file declares `enum DomdError`.
    pub error_variants: Vec<(String, usize)>,
    /// The exit-code map when the file defines `fn exit_code`.
    pub exit_map: Option<ExitMap>,
}

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "move", "as", "where",
];

/// Parses one lexed file. `markers` lists identifiers recorded as
/// [`EvKind::Marker`] events wherever they appear inside a body.
pub fn parse(lexed: &Lexed, markers: &[&str]) -> ParsedFile {
    let toks = &lexed.tokens;
    let mask = test_mask(toks);
    let mut out = ParsedFile::default();

    // Open fn frames; events attach to the innermost.
    struct Frame {
        def: FnDef,
        /// Brace depth at which the body opened.
        open_depth: isize,
        /// Stack of open block ids within this fn.
        block_stack: Vec<u32>,
    }
    // A call site pending its closing paren: index of the paren stack
    // entry is implicit in `paren_stack`.
    struct OpenParen {
        /// `Some` when the paren opened a call's argument list.
        call: Option<(String, Option<String>, usize)>,
    }

    let mut frames: Vec<Frame> = Vec::new();
    let mut paren_stack: Vec<OpenParen> = Vec::new();
    let mut impl_stack: Vec<(isize, String)> = Vec::new();
    let mut depth = 0isize;
    // `fn` seen, waiting for its name.
    let mut fn_name_pending = false;
    // `(name, line, paren_depth_at_sig)` waiting for the body `{`.
    let mut fn_body_pending: Option<(String, usize, usize, bool)> = None;
    // `impl` seen, collecting its header up to `{`.
    let mut impl_pending: Option<(isize, Vec<String>, bool)> = None;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match &t.tok {
            Tok::Ident(id) if id == "impl" && frames.is_empty() => {
                impl_pending = Some((0, Vec::new(), false));
            }
            Tok::Ident(id) if id == "fn" => {
                fn_name_pending = true;
            }
            Tok::Ident(name) if fn_name_pending => {
                fn_name_pending = false;
                fn_body_pending =
                    Some((name.clone(), t.line, paren_stack.len(), mask.get(i).copied().unwrap_or(false)));
            }
            _ => {}
        }
        // Collect the impl header (`impl<I> Fixture<I> for T where …`)
        // until its opening brace; the owner is the first angle-depth-0
        // identifier, taken after `for` when one is present.
        if let Some((angle, idents, saw_for)) = &mut impl_pending {
            match &t.tok {
                Tok::Punct('<') => *angle += 1,
                Tok::Punct('>') => *angle -= 1,
                Tok::Ident(id) if id == "for" && *angle == 0 => {
                    *saw_for = true;
                    idents.clear();
                }
                Tok::Ident(id)
                    if *angle == 0
                        && id != "impl"
                        && id != "where"
                        && id != "dyn"
                        && (idents.is_empty() || *saw_for) =>
                {
                    idents.push(id.clone());
                    *saw_for = false;
                }
                Tok::Punct('{') => {
                    let owner = idents.first().cloned().unwrap_or_default();
                    impl_stack.push((depth + 1, owner));
                    impl_pending = None;
                }
                Tok::Punct(';') => impl_pending = None,
                _ => {}
            }
        }

        match &t.tok {
            Tok::Punct('(') => {
                // Was this paren opened by a call? `ident(` or `.ident(`.
                let call = match toks.get(i.wrapping_sub(1)).map(|p| &p.tok) {
                    Some(Tok::Ident(name))
                        if !NON_CALL_KEYWORDS.contains(&name.as_str())
                            && fn_body_pending
                                .as_ref()
                                .is_none_or(|(n, l, _, _)| (n, *l) != (name, toks[i - 1].line)) =>
                    {
                        let recv = receiver_of(toks, i - 1);
                        Some((name.clone(), recv, toks[i - 1].line))
                    }
                    _ => None,
                };
                paren_stack.push(OpenParen { call });
            }
            Tok::Punct(')') => {
                if let Some(open) = paren_stack.pop() {
                    if let (Some((name, recv, line)), Some(frame)) =
                        (open.call, frames.last_mut())
                    {
                        let block =
                            frame.block_stack.last().copied().unwrap_or_default();
                        frame.def.events.push(Event {
                            kind: EvKind::Call,
                            name,
                            recv,
                            line,
                            seq: i as u32,
                            block,
                            chained: chained_after(toks, i),
                        });
                    }
                }
            }
            Tok::Punct('{') => {
                depth += 1;
                // Does this brace open a pending fn body? Only at the
                // signature's paren depth (not inside a default-arg or
                // const-generic expression).
                let opens_fn = match &fn_body_pending {
                    Some((_, _, pd, _)) if *pd == paren_stack.len() => fn_body_pending.take(),
                    _ => None,
                };
                if let Some((name, line, _, is_test)) = opens_fn {
                    let owner = impl_stack.last().map(|(_, o)| o.clone());
                    let qual = match &owner {
                        Some(o) if !o.is_empty() => format!("{o}::{name}"),
                        _ => name.clone(),
                    };
                    frames.push(Frame {
                        def: FnDef {
                            name,
                            qual,
                            line,
                            is_test,
                            blocks: vec![0],
                            events: Vec::new(),
                        },
                        open_depth: depth,
                        block_stack: vec![0],
                    });
                } else if let Some(frame) = frames.last_mut() {
                    let parent = frame.block_stack.last().copied().unwrap_or_default();
                    let id = frame.def.blocks.len() as u32;
                    frame.def.blocks.push(parent);
                    frame.block_stack.push(id);
                }
            }
            Tok::Punct('}') => {
                let closes_fn =
                    frames.last().is_some_and(|f| f.open_depth == depth);
                if closes_fn {
                    if let Some(frame) = frames.pop() {
                        out.fns.push(frame.def);
                    }
                } else if let Some(frame) = frames.last_mut() {
                    frame.block_stack.pop();
                }
                depth -= 1;
                impl_stack.retain(|(d, _)| *d <= depth);
            }
            Tok::Punct(';') => {
                // A bodiless signature (trait method decl) at its own
                // paren depth cancels the pending fn.
                if matches!(&fn_body_pending, Some((_, _, pd, _)) if *pd == paren_stack.len()) {
                    fn_body_pending = None;
                }
            }
            Tok::Ident(name)
                if markers.contains(&name.as_str())
                    && !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) =>
            {
                if let Some(frame) = frames.last_mut() {
                    let block = frame.block_stack.last().copied().unwrap_or_default();
                    frame.def.events.push(Event {
                        kind: EvKind::Marker,
                        name: name.clone(),
                        recv: None,
                        line: t.line,
                        seq: i as u32,
                        block,
                        chained: false,
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Events were pushed when their paren closed; restore effect order.
    for f in &mut out.fns {
        f.events.sort_by_key(|e| e.seq);
    }

    out.error_variants = enum_variants(toks, crate::config::ERROR_ENUM);
    out.exit_map = exit_map(lexed);
    out
}

/// True when the value produced by the call closing at token `close` is
/// immediately method-chained, after skipping `.expect(…)`/`.unwrap()`/
/// `.map_err(…)` adapters and `?`.
fn chained_after(toks: &[Token], close: usize) -> bool {
    let mut j = close + 1;
    loop {
        match (
            toks.get(j).map(|t| &t.tok),
            toks.get(j + 1).map(|t| &t.tok),
            toks.get(j + 2).map(|t| &t.tok),
        ) {
            (Some(Tok::Punct('.')), Some(Tok::Ident(m)), Some(Tok::Punct('(')))
                if matches!(m.as_str(), "expect" | "unwrap" | "map_err") =>
            {
                let mut depth = 0isize;
                let mut k = j + 2;
                while k < toks.len() {
                    match toks[k].tok {
                        Tok::Punct('(') => depth += 1,
                        Tok::Punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                j = k + 1;
            }
            (Some(Tok::Punct('?')), _, _) => j += 1,
            (Some(Tok::Punct('.')), _, _) => return true,
            _ => return false,
        }
    }
}

/// The receiver of a method call whose name sits at token `i`: the
/// identifier before the `.` (`tenant.breaker.lock` at `lock` → `breaker`).
fn receiver_of(toks: &[Token], i: usize) -> Option<String> {
    if i >= 2 && matches!(toks[i - 1].tok, Tok::Punct('.')) {
        if let Tok::Ident(r) = &toks[i - 2].tok {
            return Some(r.clone());
        }
    }
    None
}

/// Variant names of `enum <name> { … }` when the file declares it.
fn enum_variants(toks: &[Token], name: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let is_decl = matches!(&toks[i].tok, Tok::Ident(id) if id == "enum")
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Ident(n)) if n == name);
        if !is_decl {
            continue;
        }
        // Find the body `{`, then collect the first identifier after `{`
        // or after each depth-1 comma, skipping attributes.
        let mut j = i + 2;
        while j < toks.len() && !matches!(toks[j].tok, Tok::Punct('{')) {
            j += 1;
        }
        let mut depth = 0isize;
        let mut expect_variant = false;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => {
                    depth += 1;
                    if depth == 1 {
                        expect_variant = true;
                    }
                }
                Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Punct(',') if depth == 1 => expect_variant = true,
                Tok::Punct('#') => {} // attribute introducer; body skipped by depth
                Tok::Ident(v) if depth == 1 && expect_variant => {
                    out.push((v.clone(), toks[j].line));
                    expect_variant = false;
                }
                _ => {}
            }
            j += 1;
        }
        break;
    }
    out
}

/// Extracts the `fn exit_code` match arms plus any doc-comment exit-code
/// table rows. Returns `None` when the file has no such fn.
fn exit_map(lexed: &Lexed) -> Option<ExitMap> {
    let toks = &lexed.tokens;
    let mut fn_at = None;
    for i in 0..toks.len() {
        if matches!(&toks[i].tok, Tok::Ident(id) if id == "fn")
            && matches!(toks.get(i + 1).map(|t| &t.tok),
                        Some(Tok::Ident(n)) if n == crate::config::EXIT_MAP_FN)
        {
            fn_at = Some(i);
            break;
        }
    }
    let start = fn_at?;
    let mut map = ExitMap { fn_line: toks[start].line, ..ExitMap::default() };

    // Walk the fn body (first `{` … matching `}`).
    let mut j = start;
    while j < toks.len() && !matches!(toks[j].tok, Tok::Punct('{')) {
        j += 1;
    }
    let mut depth = 0isize;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Ident(id) if id == crate::config::ERROR_ENUM => {
                // `DomdError :: Variant … => <literal>`
                let variant = match (toks.get(j + 1), toks.get(j + 2), toks.get(j + 3)) {
                    (
                        Some(Token { tok: Tok::Punct(':'), .. }),
                        Some(Token { tok: Tok::Punct(':'), .. }),
                        Some(Token { tok: Tok::Ident(v), .. }),
                    ) => Some((v.clone(), toks[j + 3].line)),
                    _ => None,
                };
                if let Some((v, line)) = variant {
                    if let Some((code, k)) = arm_code(toks, j + 4) {
                        map.arms.push((v, code, line));
                        j = k;
                        continue;
                    }
                }
            }
            Tok::Ident(id)
                if id == "_"
                    && matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('=')))
                    && matches!(toks.get(j + 2).map(|t| &t.tok), Some(Tok::Punct('>'))) =>
            {
                map.wildcard.get_or_insert(toks[j].line);
            }
            _ => {}
        }
        j += 1;
    }

    // Doc-comment table rows: `| 2 | usage … |` in `//!` / `//` comments.
    for c in &lexed.comments {
        for (off, text_line) in c.text.lines().enumerate() {
            let body = text_line.trim_start_matches(['/', '*', '!', ' ', '\t']);
            let Some(rest) = body.strip_prefix('|') else { continue };
            let first_cell = rest.split('|').next().unwrap_or("").trim();
            if let Ok(code) = first_cell.parse::<u32>() {
                map.doc_codes.push((code, c.line + off));
            }
        }
    }
    Some(map)
}

/// Scans forward from a match pattern for its `=> <literal>` code.
/// Returns the literal's text and the index to resume at. Gives up at a
/// depth-0 `,`/`}` (the arm ended without a literal body).
fn arm_code(toks: &[Token], mut j: usize) -> Option<(String, usize)> {
    let mut depth = 0isize;
    while j + 2 < toks.len() {
        match &toks[j].tok {
            Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => {
                if depth == 0 {
                    return None;
                }
                depth -= 1;
            }
            Tok::Punct(',') if depth == 0 => return None,
            Tok::Punct('=')
                if depth == 0
                    && matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('>'))) =>
            {
                return match toks.get(j + 2).map(|t| &t.tok) {
                    Some(Tok::Literal(text)) => Some((text.clone(), j + 2)),
                    _ => Some((String::new(), j + 2)),
                };
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Marks every token inside `#[cfg(test)]` / `#[test]` items.
pub fn test_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut depth = 0isize;
    let mut skip_at: Option<isize> = None;
    let mut pending = false;
    let mut i = 0usize;
    while i < toks.len() {
        // Outer attribute `#[ … ]`: does it force a test item?
        if skip_at.is_none()
            && matches!(toks[i].tok, Tok::Punct('#'))
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            let mut bracket = 1isize;
            let mut j = i + 1;
            let mut idents: Vec<&str> = Vec::new();
            while let Some(t) = toks.get(j + 1) {
                j += 1;
                match &t.tok {
                    Tok::Punct('[') => bracket += 1,
                    Tok::Punct(']') => {
                        bracket -= 1;
                        if bracket == 0 {
                            break;
                        }
                    }
                    Tok::Ident(id) => idents.push(id),
                    _ => {}
                }
            }
            let is_test_attr = idents.first() == Some(&"test")
                || (idents.contains(&"cfg") && idents.contains(&"test"));
            if is_test_attr {
                pending = true;
            }
            i = j + 1;
            continue;
        }
        match toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                if pending && skip_at.is_none() {
                    skip_at = Some(depth);
                    pending = false;
                }
            }
            Tok::Punct('}') => {
                if skip_at == Some(depth) {
                    mask[i] = true; // the closing brace is still test code
                    skip_at = None;
                }
                depth -= 1;
            }
            Tok::Punct(';') if pending && skip_at.is_none() => pending = false,
            _ => {}
        }
        if skip_at.is_some() {
            mask[i] = true;
        }
        i += 1;
    }
    mask
}

/// Line ranges covered by test code, for waiver bookkeeping.
pub fn test_line_ranges(toks: &[Token], mask: &[bool]) -> Vec<(usize, usize)> {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for (t, m) in toks.iter().zip(mask) {
        if !*m {
            continue;
        }
        match ranges.last_mut() {
            Some((_, end)) if t.line <= *end + 1 => *end = (*end).max(t.line),
            _ => ranges.push((t.line, t.line)),
        }
    }
    ranges
}

/// Compresses a fn's body to the facts the call-graph fixpoint reads:
/// one `Call` event per distinct `(name, receiver)` pair, with the
/// position fields zeroed and the block tree collapsed to the root.
/// Applied by `analyze_file` to files outside the R7/R8-governed sets,
/// whose event ordering, scoping, and markers no rule ever reads —
/// shrinking workspace summaries (and the on-disk cache) roughly an
/// order of magnitude without changing any finding.
pub fn prune_to_call_edges(def: &mut FnDef) {
    let mut seen: std::collections::BTreeSet<(String, Option<String>)> =
        std::collections::BTreeSet::new();
    def.events
        .retain(|e| e.kind == EvKind::Call && seen.insert((e.name.clone(), e.recv.clone())));
    for e in &mut def.events {
        e.line = 0;
        e.seq = 0;
        e.block = 0;
        e.chained = false;
    }
    def.blocks = vec![0];
    def.qual.clear();
}

/// True when block `anc` is `b` or an ancestor of `b` in `blocks`.
pub fn block_contains(blocks: &[u32], anc: u32, mut b: u32) -> bool {
    loop {
        if b == anc {
            return true;
        }
        let Some(parent) = blocks.get(b as usize).copied() else { return false };
        if parent == b {
            return false;
        }
        b = parent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src), &["Ingested"])
    }

    #[test]
    fn recovers_fns_with_impl_owners_and_test_classification() {
        let src = "impl<S> Store<S> {\n  fn pin(&self) {}\n}\n\
                   fn free() {}\n\
                   #[cfg(test)]\nmod tests {\n  fn helper() {}\n}\n";
        let p = parse_src(src);
        let quals: Vec<(&str, bool)> =
            p.fns.iter().map(|f| (f.qual.as_str(), f.is_test)).collect();
        assert_eq!(quals, vec![("Store::pin", false), ("free", false), ("helper", true)]);
    }

    #[test]
    fn impl_trait_for_type_owns_by_the_type() {
        let p = parse_src("impl Clock for WallClock { fn now(&self) {} }");
        assert_eq!(p.fns[0].qual, "WallClock::now");
    }

    #[test]
    fn calls_order_by_closing_paren_so_closure_args_come_first() {
        let src = "fn f(&self) {\n  self.store.update(|snap| {\n    d.index.sync();\n  });\n  done();\n}";
        let p = parse_src(src);
        let names: Vec<&str> = p.fns[0].events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["sync", "update", "done"]);
        assert_eq!(p.fns[0].events[1].recv.as_deref(), Some("store"));
    }

    #[test]
    fn lock_receivers_resolve_to_the_final_path_segment() {
        let p = parse_src("fn f(&self) { tenant.breaker.lock(); xs[i].lock(); }");
        let ev = &p.fns[0].events;
        assert_eq!(ev[0].recv.as_deref(), Some("breaker"));
        assert_eq!(ev[1].recv, None);
    }

    #[test]
    fn block_tree_scopes_events() {
        let src = "fn f() {\n  a();\n  { b(); }\n  c();\n}";
        let p = parse_src(src);
        let f = &p.fns[0];
        let by_name = |n: &str| f.events.iter().find(|e| e.name == n).map(|e| e.block);
        assert_eq!(by_name("a"), Some(0));
        assert_eq!(by_name("b"), Some(1));
        assert_eq!(by_name("c"), Some(0));
        assert!(block_contains(&f.blocks, 0, 1));
        assert!(!block_contains(&f.blocks, 1, 0));
    }

    #[test]
    fn chained_guards_skip_expect_adapters() {
        let src = "fn f(&self) {\n\
                   \x20 let n = self.durable.lock().expect(\"d\").index.len();\n\
                   \x20 let g = self.durable.lock().expect(\"d\");\n\
                   \x20 let h = self.wal.lock()?;\n\
                   }";
        let p = parse_src(src);
        let locks: Vec<(Option<&str>, bool)> = p.fns[0]
            .events
            .iter()
            .filter(|e| e.name == "lock")
            .map(|e| (e.recv.as_deref(), e.chained))
            .collect();
        assert_eq!(
            locks,
            vec![(Some("durable"), true), (Some("durable"), false), (Some("wal"), false)]
        );
    }

    #[test]
    fn markers_are_recorded_without_parens() {
        let p = parse_src("fn f() -> Reply { Ok(Reply::Ingested { row, rows, epoch }) }");
        let ev = &p.fns[0].events;
        assert!(ev.iter().any(|e| e.kind == EvKind::Marker && e.name == "Ingested"));
    }

    #[test]
    fn nested_fns_split_their_events() {
        let src = "fn outer() {\n  fn inner() { deep(); }\n  shallow();\n}";
        let p = parse_src(src);
        let inner = p.fns.iter().find(|f| f.name == "inner").expect("inner recovered");
        let outer = p.fns.iter().find(|f| f.name == "outer").expect("outer recovered");
        assert_eq!(inner.events.len(), 1);
        assert_eq!(outer.events.len(), 1);
        assert_eq!(outer.events[0].name, "shallow");
    }

    #[test]
    fn trait_method_declarations_do_not_open_bodies() {
        let src = "trait T { fn decl(&self); }\nfn real() { go(); }";
        let p = parse_src(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn extracts_domd_error_variants_and_exit_arms() {
        let src = "\
//! | code | class |
//! |------|-------|
//! | 2    | config |
//! | 3    | io |
pub enum DomdError {
    Config { message: String },
    Io { context: String },
}
fn exit_code(e: &DomdError) -> u8 {
    match e {
        DomdError::Config { .. } => 2,
        DomdError::Io { .. } => 3,
    }
}
";
        let p = parse_src(src);
        let vars: Vec<&str> = p.error_variants.iter().map(|(v, _)| v.as_str()).collect();
        assert_eq!(vars, vec!["Config", "Io"]);
        let m = p.exit_map.expect("exit map recovered");
        let arms: Vec<(&str, &str)> =
            m.arms.iter().map(|(v, c, _)| (v.as_str(), c.as_str())).collect();
        assert_eq!(arms, vec![("Config", "2"), ("Io", "3")]);
        assert_eq!(m.wildcard, None);
        let codes: Vec<u32> = m.doc_codes.iter().map(|(c, _)| *c).collect();
        assert_eq!(codes, vec![2, 3]);
    }

    #[test]
    fn wildcard_arms_are_recorded() {
        let src = "fn exit_code(e: &DomdError) -> u8 {\n  match e {\n    DomdError::Io { .. } => 3,\n    _ => 1,\n  }\n}";
        let m = parse_src(src).exit_map.expect("exit map");
        assert_eq!(m.wildcard, Some(4));
    }
}
