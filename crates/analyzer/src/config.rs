//! The workspace invariant policy: which paths each rule governs.
//!
//! Every exemption here is a *policy decision* recorded in DESIGN.md §9,
//! not a convenience. The shape is deliberately dumb — prefix and suffix
//! matching over workspace-relative paths with `/` separators — so a
//! reviewer can audit the whole waiver-free surface in one screen.

/// Directory names never descended into. `tests`, `benches`, `examples`
/// and `fixtures` hold code that *may* panic or spawn freely (test code
/// is exempt from R1–R3 by definition, and the analyzer's own fixture
/// corpus is violations on purpose); `target` and `vendor` are not ours.
pub const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "tests", "benches", "examples", "fixtures", ".git",
];

/// Path prefixes exempt from R1 (`no-panic`). The bench crate is the
/// measurement harness: its binaries abort an experiment run on bad
/// flags or impossible invariants, and nothing downstream serves traffic
/// from it. Everything else must return typed errors.
pub const NO_PANIC_EXEMPT: &[&str] = &["crates/bench/"];

/// Path prefixes allowed to touch `std::thread` directly (R2). The PR-2
/// contract: all parallelism flows through the bounded, no-nesting
/// `domd-runtime` pool, so thread-count changes cannot change results.
pub const THREAD_ALLOWED: &[&str] = &["crates/runtime/"];

/// Path prefixes allowed to read wall/monotonic clocks (R3). Timing is
/// the bench harness's purpose; result-producing code must not branch on
/// time. The serve crate's clock module is the one other exception: it
/// is the clock-as-capability boundary (`WallClock` wraps `Instant` so
/// everything downstream takes a `dyn Clock` and stays deterministic
/// under `ManualClock` in tests).
pub const TIME_ALLOWED: &[&str] = &["crates/bench/", "crates/serve/src/clock.rs"];

/// Path prefixes allowed to build unbounded queues (R6). The runtime
/// crate owns the bounded primitives (`BoundedQueue` is a capped
/// `VecDeque` underneath); everywhere else an `mpsc::channel()` or an
/// unguarded `push_back` is a place overload can grow memory instead of
/// shedding, so it must either check capacity first or carry a waiver.
pub const QUEUE_ALLOWED: &[&str] = &["crates/runtime/"];

/// The files governed by R4 (`wal-order`): the WAL-before-apply wrapper
/// and the delta-application module whose mutations are derived from the
/// wrapper's log order (a delta applied without that provenance must
/// carry a same-body `append` or a waiver explaining the derivation).
pub const WAL_ORDER_FILES: &[&str] =
    &["crates/index/src/durable.rs", "crates/index/src/delta.rs"];

/// Methods that mutate the wrapped index (R4): each call must be
/// preceded, within the same `fn` body, by a WAL `append`.
pub const WAL_MUTATORS: &[&str] = &["insert_logical", "remove_logical"];

/// The call that makes a mutation durable-ordered (R4).
pub const WAL_APPENDER: &str = "append";

/// The lint attribute every crate root must carry (R5), as the ident
/// sequence inside `#![deny(...)]`.
pub const REQUIRED_DENY: &str = "unsafe_code";

/// True when `rel_path` (workspace-relative, `/`-separated) is a crate
/// root subject to R5: `src/lib.rs` of the umbrella crate or of any
/// workspace member.
pub fn is_crate_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs"
        || (rel_path.starts_with("crates/")
            && rel_path.ends_with("/src/lib.rs")
            && rel_path.matches('/').count() == 3)
}

/// True when `rel_path` starts with any of `prefixes`.
pub fn matches_prefix(rel_path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel_path.starts_with(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_roots_are_exactly_lib_rs() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/storage/src/lib.rs"));
        assert!(!is_crate_root("crates/storage/src/wal.rs"));
        assert!(!is_crate_root("src/cli.rs"));
        assert!(!is_crate_root("crates/storage/src/nested/lib.rs"));
    }

    #[test]
    fn prefix_matching_is_literal() {
        assert!(matches_prefix("crates/bench/src/util.rs", NO_PANIC_EXEMPT));
        assert!(!matches_prefix("crates/core/src/query.rs", NO_PANIC_EXEMPT));
    }
}
