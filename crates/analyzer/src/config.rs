//! The workspace invariant policy: which paths each rule governs.
//!
//! Every exemption here is a *policy decision* recorded in DESIGN.md §9,
//! not a convenience. The shape is deliberately dumb — prefix and suffix
//! matching over workspace-relative paths with `/` separators — so a
//! reviewer can audit the whole waiver-free surface in one screen.

/// Directory names never descended into. `tests`, `benches`, `examples`
/// and `fixtures` hold code that *may* panic or spawn freely (test code
/// is exempt from R1–R3 by definition, and the analyzer's own fixture
/// corpus is violations on purpose); `target` and `vendor` are not ours.
pub const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "tests", "benches", "examples", "fixtures", ".git",
];

/// Path prefixes exempt from R1 (`no-panic`). The bench crate is the
/// measurement harness: its binaries abort an experiment run on bad
/// flags or impossible invariants, and nothing downstream serves traffic
/// from it. Everything else must return typed errors.
pub const NO_PANIC_EXEMPT: &[&str] = &["crates/bench/"];

/// Path prefixes allowed to touch `std::thread` directly (R2). The PR-2
/// contract: all parallelism flows through the bounded, no-nesting
/// `domd-runtime` pool, so thread-count changes cannot change results.
pub const THREAD_ALLOWED: &[&str] = &["crates/runtime/"];

/// Path prefixes allowed to read wall/monotonic clocks (R3). Timing is
/// the bench harness's purpose; result-producing code must not branch on
/// time. The serve crate's clock module is the one other exception: it
/// is the clock-as-capability boundary (`WallClock` wraps `Instant` so
/// everything downstream takes a `dyn Clock` and stays deterministic
/// under `ManualClock` in tests).
pub const TIME_ALLOWED: &[&str] = &["crates/bench/", "crates/serve/src/clock.rs"];

/// Path prefixes allowed to build unbounded queues (R6). The runtime
/// crate owns the bounded primitives (`BoundedQueue` is a capped
/// `VecDeque` underneath); everywhere else an `mpsc::channel()` or an
/// unguarded `push_back` is a place overload can grow memory instead of
/// shedding, so it must either check capacity first or carry a waiver.
pub const QUEUE_ALLOWED: &[&str] = &["crates/runtime/"];

/// The files governed by R4 (`wal-order`): the WAL-before-apply wrapper
/// and the delta-application module whose mutations are derived from the
/// wrapper's log order (a delta applied without that provenance must
/// carry a same-body `append` or a waiver explaining the derivation).
pub const WAL_ORDER_FILES: &[&str] =
    &["crates/index/src/durable.rs", "crates/index/src/delta.rs"];

/// Methods that mutate the wrapped index (R4): each call must be
/// preceded, within the same `fn` body, by a WAL `append`.
pub const WAL_MUTATORS: &[&str] = &["insert_logical", "remove_logical"];

/// The call that makes a mutation durable-ordered (R4).
pub const WAL_APPENDER: &str = "append";

/// The lint attribute every crate root must carry (R5), as the ident
/// sequence inside `#![deny(...)]`.
pub const REQUIRED_DENY: &str = "unsafe_code";

// ---- R7 `lock-order` -------------------------------------------------

/// The declared lock hierarchy, as `(receiver identifier, class, rank)`.
/// Locks must be acquired in ascending rank; acquiring a lower-or-equal
/// rank while holding a higher one is an inversion, and re-acquiring the
/// *same class* is a self-deadlock. Distinct classes at the same rank
/// (the two tenant-state locks) are unordered relative to each other.
///
/// Receivers are resolved by the final path segment before `.lock()` /
/// `.try_lock()` — `self.current.lock()` → `current`. Receivers not
/// listed here (I/O handles, bench-local mutexes) are outside the
/// hierarchy and invisible to R7; the policy is documented in
/// DESIGN.md §14.
pub const LOCK_HIERARCHY: &[(&str, &str, u8)] = &[
    ("current", "epoch-swap", 0),
    ("build", "epoch-build", 0),
    ("breaker", "tenant-breaker", 1),
    ("cache", "tenant-cache", 1),
    ("durable", "durable-index", 2),
    ("wal", "wal-file", 3),
];

/// Methods that acquire a lock on a classified receiver.
pub const LOCK_METHODS: &[&str] = &["lock", "try_lock"];

/// Workspace functions that acquire and *return* a classified guard:
/// `(fn name, class)`. Calling one of these is an acquisition at the
/// call site (the guard lives in the caller), so the call itself is
/// exempt from the held-across-call check for that class.
pub const GUARD_FNS: &[(&str, &str)] = &[
    ("swap_lock", "epoch-swap"),
    ("build_lock", "epoch-build"),
    ("lock_breaker", "tenant-breaker"),
];

/// The files R7 governs. Lock discipline is checked only where the
/// hierarchy's locks live — serve request handling, epoch-store
/// publication, the durable index, and the WAL.
pub const LOCK_ORDER_FILES: &[&str] = &[
    "crates/serve/src/server.rs",
    "crates/serve/src/state.rs",
    "crates/index/src/durable.rs",
    "crates/index/src/snapshot.rs",
    "crates/storage/src/wal.rs",
];

// ---- R8 `ack-order` --------------------------------------------------

/// Entry points of the serve ingest path. From each, the call graph is
/// flattened (calls take effect after their arguments) and every
/// publish/ack must be dominated by a sync.
pub const ACK_ENTRIES: &[&str] = &["handle_ingest"];

/// Calls that make ingested rows durable (fsync or group-commit flush).
pub const ACK_SYNC_FNS: &[&str] = &["sync", "sync_durable", "flush"];

/// Calls that publish a new epoch (make ingested rows readable).
pub const ACK_PUBLISH_FNS: &[&str] = &["install", "publish"];

/// Identifiers that mark the protocol ack (reply-variant constructors;
/// matched as bare idents since variant construction has no parens).
pub const ACK_MARKERS: &[&str] = &["Ingested"];

/// The files whose fns participate in R8 flattening. The ingest path
/// spans the serve handler, the epoch store, the durable index, and the
/// WAL; fns outside these files are treated as opaque.
pub const ACK_ORDER_FILES: &[&str] = &[
    "crates/serve/src/server.rs",
    "crates/index/src/snapshot.rs",
    "crates/index/src/durable.rs",
    "crates/storage/src/wal.rs",
];

// ---- R9 `exit-code-map` ----------------------------------------------

/// The error enum whose variants must each map to one exit code.
pub const ERROR_ENUM: &str = "DomdError";

/// Where the enum is declared.
pub const ERROR_ENUM_FILE: &str = "crates/core/src/error.rs";

/// The function that maps variants to exit codes.
pub const EXIT_MAP_FN: &str = "exit_code";

/// Where `fn exit_code` and its doc-comment exit-code table live.
pub const EXIT_MAP_FILE: &str = "src/bin/domd.rs";

/// Documentation files whose `| code | … |` tables must list exactly the
/// mapped exit codes. Checked in workspace sweeps (fixture corpora have
/// no README).
pub const EXIT_DOC_FILES: &[&str] = &["README.md"];

/// True when `rel_path` (workspace-relative, `/`-separated) is a crate
/// root subject to R5: `src/lib.rs` of the umbrella crate or of any
/// workspace member.
pub fn is_crate_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs"
        || (rel_path.starts_with("crates/")
            && rel_path.ends_with("/src/lib.rs")
            && rel_path.matches('/').count() == 3)
}

/// True when `rel_path` starts with any of `prefixes`.
pub fn matches_prefix(rel_path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel_path.starts_with(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_roots_are_exactly_lib_rs() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/storage/src/lib.rs"));
        assert!(!is_crate_root("crates/storage/src/wal.rs"));
        assert!(!is_crate_root("src/cli.rs"));
        assert!(!is_crate_root("crates/storage/src/nested/lib.rs"));
    }

    #[test]
    fn prefix_matching_is_literal() {
        assert!(matches_prefix("crates/bench/src/util.rs", NO_PANIC_EXEMPT));
        assert!(!matches_prefix("crates/core/src/query.rs", NO_PANIC_EXEMPT));
    }

    /// Every path this module names must exist on disk. A rename that
    /// orphans an allowlist entry would otherwise silently rot the
    /// exemption (or the *coverage* — a moved `durable.rs` would drop
    /// out of R4/R7 without any test noticing).
    #[test]
    fn every_governed_path_exists_on_disk() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root above crates/analyzer")
            .to_path_buf();
        let all_paths: Vec<&str> = NO_PANIC_EXEMPT
            .iter()
            .chain(THREAD_ALLOWED)
            .chain(TIME_ALLOWED)
            .chain(QUEUE_ALLOWED)
            .chain(WAL_ORDER_FILES)
            .chain(LOCK_ORDER_FILES)
            .chain(ACK_ORDER_FILES)
            .chain(EXIT_DOC_FILES)
            .copied()
            .chain([ERROR_ENUM_FILE, EXIT_MAP_FILE])
            .collect();
        for p in all_paths {
            let disk = root.join(p.trim_end_matches('/'));
            assert!(disk.exists(), "config path {p:?} missing on disk at {disk:?}");
        }
    }

    #[test]
    fn lock_hierarchy_ranks_are_consistent() {
        // Classes are unique; ranks ascend with declaration order.
        let mut classes = std::collections::BTreeSet::new();
        let mut last = 0u8;
        for (recv, class, rank) in LOCK_HIERARCHY {
            assert!(classes.insert(*class), "duplicate lock class {class}");
            assert!(!recv.is_empty());
            assert!(*rank >= last, "ranks must be declared in ascending order");
            last = *rank;
        }
        // Every guard-returning fn names a declared class.
        for (f, class) in GUARD_FNS {
            assert!(
                LOCK_HIERARCHY.iter().any(|(_, c, _)| c == class),
                "guard fn {f} names unknown class {class}"
            );
        }
    }
}
