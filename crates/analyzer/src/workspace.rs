//! Workspace discovery and the full-workspace scan.

use crate::cache::{content_hash, Cache};
use crate::callgraph::DocTable;
use crate::config;
use crate::report::Report;
use crate::rules;
use std::fmt;
use std::path::{Path, PathBuf};

/// The analyzer's own failure taxonomy (it lints the rule it enforces:
/// no panics, typed errors only).
#[derive(Debug)]
pub enum AnalyzerError {
    /// Filesystem access failed.
    Io {
        /// What was being read or walked.
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The given root is not a workspace (no `Cargo.toml` found).
    NotAWorkspace {
        /// The directory that was tried.
        root: String,
    },
}

impl fmt::Display for AnalyzerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzerError::Io { context, source } => write!(f, "I/O error {context}: {source}"),
            AnalyzerError::NotAWorkspace { root } => {
                write!(f, "{root} is not a workspace root (no Cargo.toml); pass --root")
            }
        }
    }
}

impl std::error::Error for AnalyzerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalyzerError::Io { source, .. } => Some(source),
            AnalyzerError::NotAWorkspace { .. } => None,
        }
    }
}

/// One discovered source file: workspace-relative path (always `/`
/// separated, for stable reports) plus the absolute path to read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Absolute (or root-joined) path on disk.
    pub abs: PathBuf,
}

/// Collects every `.rs` file under `<root>/src` and `<root>/crates`,
/// skipping [`config::SKIP_DIRS`], sorted by relative path so reports
/// and exit codes are deterministic.
pub fn collect_files(root: &Path) -> Result<Vec<SourceFile>, AnalyzerError> {
    if !root.join("Cargo.toml").is_file() {
        return Err(AnalyzerError::NotAWorkspace { root: root.display().to_string() });
    }
    let mut out: Vec<SourceFile> = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, top, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn walk(dir: &Path, rel: &str, out: &mut Vec<SourceFile>) -> Result<(), AnalyzerError> {
    let entries = std::fs::read_dir(dir).map_err(|source| AnalyzerError::Io {
        context: format!("reading directory {}", dir.display()),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| AnalyzerError::Io {
            context: format!("reading directory {}", dir.display()),
            source,
        })?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if config::SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, &format!("{rel}/{name}"), out)?;
        } else if name.ends_with(".rs") {
            out.push(SourceFile { rel: format!("{rel}/{name}"), abs: path });
        }
    }
    Ok(())
}

/// How a sweep used the incremental cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Files whose summary came from the cache.
    pub cache_hits: usize,
    /// Files analyzed from scratch this sweep.
    pub cache_misses: usize,
}

/// Scans the whole workspace rooted at `root` and returns the merged,
/// deterministically ordered report. Uncached — see
/// [`scan_workspace_cached`] for the incremental path.
pub fn scan_workspace(root: &Path) -> Result<Report, AnalyzerError> {
    scan_workspace_cached(root, None).map(|(r, _)| r)
}

/// Scans the workspace, reusing per-file summaries from `cache_path`
/// where the content hash still matches, and rewriting the cache file
/// afterwards. The interprocedural passes and waiver accounting always
/// run fresh over the summaries, so the report is identical to a cold
/// sweep's. A missing, stale, or corrupt cache file degrades to a cold
/// sweep; a cache *write* failure is ignored (the sweep's answer is
/// already correct — the next run just pays cold cost again).
pub fn scan_workspace_cached(
    root: &Path,
    cache_path: Option<&Path>,
) -> Result<(Report, SweepStats), AnalyzerError> {
    let files = collect_files(root)?;
    let mut old = cache_path
        .and_then(|p| std::fs::read_to_string(p).ok())
        .and_then(|text| Cache::parse(&text))
        .unwrap_or_default();
    let had_cache = !old.is_empty();

    let mut stats = SweepStats::default();
    let mut summaries = Vec::with_capacity(files.len());
    let mut hashes = Vec::with_capacity(files.len());
    for f in &files {
        let source = std::fs::read_to_string(&f.abs).map_err(|source| AnalyzerError::Io {
            context: format!("reading {}", f.abs.display()),
            source,
        })?;
        let hash = content_hash(&source);
        // Hits are *moved* out of the loaded cache, not cloned; what is
        // left in `old` afterwards belongs to deleted or changed files.
        let summary = match old.take(&f.rel, hash) {
            Some(hit) => {
                stats.cache_hits += 1;
                hit
            }
            None => {
                stats.cache_misses += 1;
                rules::analyze_file(&f.rel, &source)
            }
        };
        hashes.push(hash);
        summaries.push(summary);
    }

    if let Some(p) = cache_path {
        // Rewrite only when the sweep learned something: a fully warm
        // sweep over an unchanged file set would rewrite the identical
        // bytes it just read. Leftover `old` entries mean files were
        // deleted or renamed, so the cache must shrink to match.
        if stats.cache_misses > 0 || !old.is_empty() || !had_cache {
            let text = crate::cache::render_entries(
                files
                    .iter()
                    .zip(&hashes)
                    .zip(&summaries)
                    .map(|((f, h), s)| (f.rel.as_str(), *h, s)),
            );
            let _ = std::fs::write(p, text);
        }
    }

    let doc_tables = doc_exit_tables(root)?;
    let report = rules::finish(summaries, &doc_tables);
    Ok((report, stats))
}

/// Parses the exit-code tables of [`config::EXIT_DOC_FILES`] (R9): rows
/// of any markdown table whose header mentions "exit code". A missing
/// doc file is skipped — the config test pins existence separately.
fn doc_exit_tables(root: &Path) -> Result<Vec<DocTable>, AnalyzerError> {
    let mut out = Vec::new();
    for doc in config::EXIT_DOC_FILES {
        let Ok(text) = std::fs::read_to_string(root.join(doc)) else {
            continue;
        };
        let mut table: Option<DocTable> = None;
        for (i, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if !trimmed.starts_with('|') {
                if let Some(t) = table.take() {
                    out.push(t);
                }
                continue;
            }
            if table.is_none() && trimmed.to_ascii_lowercase().contains("exit code") {
                table = Some(DocTable {
                    file: (*doc).to_string(),
                    header_line: i + 1,
                    rows: Vec::new(),
                });
                continue;
            }
            if let Some(t) = &mut table {
                let first_cell =
                    trimmed.trim_start_matches('|').split('|').next().unwrap_or("").trim();
                if let Ok(code) = first_cell.parse::<u32>() {
                    t.rows.push((code, i + 1));
                }
            }
        }
        if let Some(t) = table.take() {
            out.push(t);
        }
    }
    Ok(out)
}

/// Finds the workspace root at or above `start`: the nearest ancestor
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_this_workspace_deterministically() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let a = collect_files(&root).expect("workspace is readable");
        let b = collect_files(&root).expect("workspace is readable");
        assert_eq!(a, b);
        assert!(a.iter().any(|f| f.rel == "crates/analyzer/src/lexer.rs"), "finds itself");
        assert!(a.iter().any(|f| f.rel == "src/lib.rs"), "finds the umbrella root");
        assert!(
            a.iter().any(|f| f.rel == "crates/ml/src/flat.rs"),
            "the flat-forest inference kernel must stay inside the clean sweep"
        );
        assert!(
            a.iter().all(|f| !f.rel.contains("/fixtures/")),
            "the violating fixture corpus must never enter a workspace scan"
        );
        assert!(a.iter().all(|f| !f.rel.contains("/tests/")), "test dirs are exempt");
    }

    #[test]
    fn missing_root_is_a_typed_error() {
        let e = collect_files(Path::new("/definitely/not/a/workspace"));
        assert!(matches!(e, Err(AnalyzerError::NotAWorkspace { .. })));
    }
}
