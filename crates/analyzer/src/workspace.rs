//! Workspace discovery and the full-workspace scan.

use crate::config;
use crate::report::Report;
use crate::rules;
use std::fmt;
use std::path::{Path, PathBuf};

/// The analyzer's own failure taxonomy (it lints the rule it enforces:
/// no panics, typed errors only).
#[derive(Debug)]
pub enum AnalyzerError {
    /// Filesystem access failed.
    Io {
        /// What was being read or walked.
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The given root is not a workspace (no `Cargo.toml` found).
    NotAWorkspace {
        /// The directory that was tried.
        root: String,
    },
}

impl fmt::Display for AnalyzerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzerError::Io { context, source } => write!(f, "I/O error {context}: {source}"),
            AnalyzerError::NotAWorkspace { root } => {
                write!(f, "{root} is not a workspace root (no Cargo.toml); pass --root")
            }
        }
    }
}

impl std::error::Error for AnalyzerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalyzerError::Io { source, .. } => Some(source),
            AnalyzerError::NotAWorkspace { .. } => None,
        }
    }
}

/// One discovered source file: workspace-relative path (always `/`
/// separated, for stable reports) plus the absolute path to read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Absolute (or root-joined) path on disk.
    pub abs: PathBuf,
}

/// Collects every `.rs` file under `<root>/src` and `<root>/crates`,
/// skipping [`config::SKIP_DIRS`], sorted by relative path so reports
/// and exit codes are deterministic.
pub fn collect_files(root: &Path) -> Result<Vec<SourceFile>, AnalyzerError> {
    if !root.join("Cargo.toml").is_file() {
        return Err(AnalyzerError::NotAWorkspace { root: root.display().to_string() });
    }
    let mut out: Vec<SourceFile> = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, top, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn walk(dir: &Path, rel: &str, out: &mut Vec<SourceFile>) -> Result<(), AnalyzerError> {
    let entries = std::fs::read_dir(dir).map_err(|source| AnalyzerError::Io {
        context: format!("reading directory {}", dir.display()),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| AnalyzerError::Io {
            context: format!("reading directory {}", dir.display()),
            source,
        })?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if config::SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, &format!("{rel}/{name}"), out)?;
        } else if name.ends_with(".rs") {
            out.push(SourceFile { rel: format!("{rel}/{name}"), abs: path });
        }
    }
    Ok(())
}

/// Scans the whole workspace rooted at `root` and returns the merged,
/// deterministically ordered report.
pub fn scan_workspace(root: &Path) -> Result<Report, AnalyzerError> {
    let files = collect_files(root)?;
    let mut report = Report::default();
    for f in &files {
        let source = std::fs::read_to_string(&f.abs).map_err(|source| AnalyzerError::Io {
            context: format!("reading {}", f.abs.display()),
            source,
        })?;
        let scan = rules::scan_file(&f.rel, &source);
        report.violations.extend(scan.violations);
        report.waivers.extend(scan.waivers);
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

/// Finds the workspace root at or above `start`: the nearest ancestor
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_this_workspace_deterministically() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let a = collect_files(&root).expect("workspace is readable");
        let b = collect_files(&root).expect("workspace is readable");
        assert_eq!(a, b);
        assert!(a.iter().any(|f| f.rel == "crates/analyzer/src/lexer.rs"), "finds itself");
        assert!(a.iter().any(|f| f.rel == "src/lib.rs"), "finds the umbrella root");
        assert!(
            a.iter().any(|f| f.rel == "crates/ml/src/flat.rs"),
            "the flat-forest inference kernel must stay inside the clean sweep"
        );
        assert!(
            a.iter().all(|f| !f.rel.contains("/fixtures/")),
            "the violating fixture corpus must never enter a workspace scan"
        );
        assert!(a.iter().all(|f| !f.rel.contains("/tests/")), "test dirs are exempt");
    }

    #[test]
    fn missing_root_is_a_typed_error() {
        let e = collect_files(Path::new("/definitely/not/a/workspace"));
        assert!(matches!(e, Err(AnalyzerError::NotAWorkspace { .. })));
    }
}
