//! Content-hash incremental caching of per-file summaries.
//!
//! The expensive half of a sweep — lex, parse, per-file rules — is a
//! pure function of `(rel_path, file contents)`, captured as a
//! [`FileSummary`]. The cache persists one summary per file keyed by an
//! FNV-1a 64 hash of the contents; a warm sweep re-reads and re-hashes
//! every file (cheap) and re-runs analysis only where the hash moved.
//! The cross-file work — call-graph construction, R7/R8/R9, waiver
//! accounting — always runs fresh over the summaries, so cached and
//! cold sweeps produce *identical* reports by construction; the
//! `bench.sh SUITE=lint` identity gate pins that equivalence.
//!
//! The format is a versioned, line-oriented text file. Any parse
//! trouble — truncation, a stale version, a hand-edit — discards the
//! whole cache and falls back to a cold sweep: the cache can make a
//! sweep faster, never wrong. [`VERSION`] must be bumped whenever rule
//! semantics or the summary shape change, so a stale cache from an older
//! binary can never satisfy a newer policy.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::parser::{EvKind, Event, ExitMap, FnDef};
use crate::report::{Finding, Rule, Waiver};
use crate::rules::FileSummary;

/// Cache format + rule-semantics version. Bump on any change to the
/// summary shape *or* to what `analyze_file` computes.
pub const VERSION: u32 = 3;

/// The header line a valid cache file starts with.
fn header() -> String {
    format!("domd-lint-cache v{VERSION}")
}

/// FNV-1a 64 over the file contents — std-only, stable across runs and
/// platforms (unlike `DefaultHasher`, which is seeded per process).
pub fn content_hash(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An in-memory cache: rel path → (content hash, summary).
#[derive(Debug, Default)]
pub struct Cache {
    entries: BTreeMap<String, (u64, FileSummary)>,
}

impl Cache {
    /// Looks up a summary by path + current content hash.
    pub fn get(&self, rel: &str, hash: u64) -> Option<&FileSummary> {
        self.entries.get(rel).filter(|(h, _)| *h == hash).map(|(_, s)| s)
    }

    /// Removes and returns a summary by path + current content hash —
    /// the sweep's move-not-clone hit path. A hash mismatch leaves the
    /// stale entry in place (the sweep re-analyzes, counts a miss, and
    /// rewrites the cache anyway); entries still present after a sweep
    /// belong to deleted files and force a rewrite too.
    pub fn take(&mut self, rel: &str, hash: u64) -> Option<FileSummary> {
        match self.entries.get(rel) {
            Some((h, _)) if *h == hash => self.entries.remove(rel).map(|(_, s)| s),
            _ => None,
        }
    }

    /// Records a freshly computed summary.
    pub fn put(&mut self, hash: u64, summary: FileSummary) {
        self.entries.insert(summary.rel.clone(), (hash, summary));
    }

    /// Entry count (for stats).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses a cache file's contents. `None` on any version mismatch or
    /// malformation — the caller falls back to a cold sweep.
    pub fn parse(text: &str) -> Option<Cache> {
        let mut lines = text.lines();
        if lines.next()? != header() {
            return None;
        }
        let mut cache = Cache::default();
        let mut cur: Option<(u64, FileSummary)> = None;
        for line in lines {
            let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
            match tag {
                "file" => {
                    let (hash, rel) = rest.split_once(' ')?;
                    cur = Some((
                        hash.parse().ok()?,
                        FileSummary { rel: unesc(rel), ..FileSummary::default() },
                    ));
                }
                "end" => {
                    let (hash, summary) = cur.take()?;
                    cache.put(hash, summary);
                }
                _ => {
                    let (_, s) = cur.as_mut()?;
                    parse_line(tag, rest, s)?;
                }
            }
        }
        if cur.is_some() {
            return None; // truncated mid-entry
        }
        Some(cache)
    }

    /// Serializes the cache for persistence.
    pub fn render(&self) -> String {
        render_entries(self.entries.iter().map(|(rel, (h, s))| (rel.as_str(), *h, s)))
    }
}

/// Serializes freshly swept summaries without building an intermediate
/// `Cache` — the sweep hands `(rel, hash, summary)` borrows in path
/// order, so the summaries stay movable into `finish` afterwards.
pub fn render_entries<'a>(
    entries: impl Iterator<Item = (&'a str, u64, &'a FileSummary)>,
) -> String {
    let mut out = header();
    out.push('\n');
    for (rel, hash, s) in entries {
        let _ = writeln!(out, "file {hash} {}", esc(rel));
        for f in &s.raw {
            let _ = writeln!(out, "F {} {} {}", f.line, f.rule.id(), esc(&f.message));
        }
        for f in &s.meta {
            let _ = writeln!(out, "M {} {} {}", f.line, f.rule.id(), esc(&f.message));
        }
        for w in &s.waivers {
            let _ = writeln!(out, "W {} {} {}", w.line, w.rule.id(), esc(&w.justification));
        }
        for (a, b) in &s.test_ranges {
            let _ = writeln!(out, "T {a} {b}");
        }
        for (v, line) in &s.error_variants {
            let _ = writeln!(out, "V {line} {v}");
        }
        if let Some(m) = &s.exit_map {
            let wc = m.wildcard.map_or(-1i64, |l| l as i64);
            let _ = writeln!(out, "X {} {wc}", m.fn_line);
            for (v, code, line) in &m.arms {
                let _ = writeln!(out, "XA {line} {} {v}", esc_cell(code));
            }
            for (code, line) in &m.doc_codes {
                let _ = writeln!(out, "XD {line} {code}");
            }
        }
        for f in &s.fns {
            let _ = writeln!(
                out,
                "fn {} {} {} {}",
                f.line,
                u8::from(f.is_test),
                esc_cell(&f.name),
                esc_cell(&f.qual)
            );
            let blocks: Vec<String> = f.blocks.iter().map(u32::to_string).collect();
            let _ = writeln!(out, "B {}", blocks.join(" "));
            for e in &f.events {
                // Pruned files carry only zero-positioned call edges
                // (see `parser::prune_to_call_edges`); a short form
                // keeps the dominant line type cheap to write and
                // re-parse on warm sweeps.
                if e.kind == EvKind::Call
                    && e.line == 0
                    && e.seq == 0
                    && e.block == 0
                    && !e.chained
                {
                    let _ = match &e.recv {
                        Some(r) => writeln!(out, "e {} {}", esc_cell(&e.name), esc_cell(r)),
                        None => writeln!(out, "e {} -", esc_cell(&e.name)),
                    };
                    continue;
                }
                let kind = match e.kind {
                    EvKind::Call => 'C',
                    EvKind::Marker => 'K',
                };
                let _ = writeln!(
                    out,
                    "E {kind} {} {} {} {} {} {}",
                    e.line,
                    e.seq,
                    e.block,
                    u8::from(e.chained),
                    esc_cell(&e.name),
                    e.recv.as_deref().map_or_else(|| "-".to_string(), esc_cell),
                );
            }
        }
        out.push_str("end\n");
    }
    out
}

/// Parses one body line into the current summary. `None` aborts the
/// whole cache load.
fn parse_line(tag: &str, rest: &str, s: &mut FileSummary) -> Option<()> {
    match tag {
        "F" | "M" => {
            let (line, rest) = rest.split_once(' ')?;
            let (rule, msg) = rest.split_once(' ')?;
            let f = Finding {
                file: s.rel.clone(),
                line: line.parse().ok()?,
                rule: Rule::from_id(rule)?,
                message: unesc(msg),
            };
            if tag == "F" { s.raw.push(f) } else { s.meta.push(f) }
        }
        "W" => {
            let (line, rest) = rest.split_once(' ')?;
            let (rule, just) = rest.split_once(' ')?;
            s.waivers.push(Waiver {
                file: s.rel.clone(),
                line: line.parse().ok()?,
                rule: Rule::from_id(rule)?,
                justification: unesc(just),
            });
        }
        "T" => {
            let (a, b) = rest.split_once(' ')?;
            s.test_ranges.push((a.parse().ok()?, b.parse().ok()?));
        }
        "V" => {
            let (line, v) = rest.split_once(' ')?;
            s.error_variants.push((v.to_string(), line.parse().ok()?));
        }
        "X" => {
            let (fn_line, wc) = rest.split_once(' ')?;
            let wc: i64 = wc.parse().ok()?;
            s.exit_map = Some(ExitMap {
                fn_line: fn_line.parse().ok()?,
                wildcard: usize::try_from(wc).ok(),
                ..ExitMap::default()
            });
        }
        "XA" => {
            let (line, rest) = rest.split_once(' ')?;
            let (code, v) = rest.split_once(' ')?;
            s.exit_map.as_mut()?.arms.push((
                v.to_string(),
                unesc_cell(code),
                line.parse().ok()?,
            ));
        }
        "XD" => {
            let (line, code) = rest.split_once(' ')?;
            s.exit_map.as_mut()?.doc_codes.push((code.parse().ok()?, line.parse().ok()?));
        }
        "fn" => {
            let mut it = rest.splitn(4, ' ');
            let (line, is_test, name, qual) = (it.next()?, it.next()?, it.next()?, it.next()?);
            s.fns.push(FnDef {
                name: unesc_cell(name),
                qual: unesc_cell(qual),
                line: line.parse().ok()?,
                is_test: is_test == "1",
                blocks: Vec::new(),
                events: Vec::new(),
            });
        }
        "B" => {
            let f = s.fns.last_mut()?;
            for p in rest.split(' ').filter(|p| !p.is_empty()) {
                f.blocks.push(p.parse().ok()?);
            }
        }
        "e" => {
            let (name, recv) = rest.split_once(' ')?;
            s.fns.last_mut()?.events.push(Event {
                kind: EvKind::Call,
                name: unesc_cell(name),
                recv: (recv != "-").then(|| unesc_cell(recv)),
                line: 0,
                seq: 0,
                block: 0,
                chained: false,
            });
        }
        "E" => {
            let mut it = rest.splitn(7, ' ');
            let (kind, line, seq, block, chained, name, recv) = (
                it.next()?,
                it.next()?,
                it.next()?,
                it.next()?,
                it.next()?,
                it.next()?,
                it.next()?,
            );
            s.fns.last_mut()?.events.push(Event {
                kind: if kind == "C" { EvKind::Call } else { EvKind::Marker },
                name: unesc_cell(name),
                recv: (recv != "-").then(|| unesc_cell(recv)),
                line: line.parse().ok()?,
                seq: seq.parse().ok()?,
                block: block.parse().ok()?,
                chained: chained == "1",
            });
        }
        _ => return None,
    }
    Some(())
}

/// Escapes a free-text field (last on its line): newlines and
/// backslashes, so `lines()` round-trips.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n").replace('\r', "\\r")
}

fn unesc(s: &str) -> String {
    // Fast path — almost every cached cell and message is escape-free.
    if !s.contains('\\') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Escapes an interior cell (identifiers, literal text): like [`esc`]
/// plus spaces, since later cells follow on the same line.
fn esc_cell(s: &str) -> String {
    if s.is_empty() {
        return "\\0".to_string();
    }
    esc(s).replace(' ', "\\s")
}

fn unesc_cell(s: &str) -> String {
    if s == "\\0" {
        return String::new();
    }
    if !s.contains('\\') {
        return s.to_string();
    }
    unesc(&s.replace("\\s", " "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::analyze_file;

    #[test]
    fn content_hash_is_fnv1a() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(content_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(content_hash("fn a() {}"), content_hash("fn b() {}"));
    }

    #[test]
    fn summaries_round_trip_through_the_text_format() {
        let src = "\
//! | 2 | config |
fn handle_ingest(&self) {
    let g = self.durable.lock();
    self.store.update(|s| { d.sync(); });
    let n = self.cache.try_lock().expect(\"c\").len();
    Ok(Reply::Ingested { row })
}
pub enum DomdError { Config { m: String }, Io }
fn exit_code(e: &DomdError) -> u8 {
    match e { DomdError::Config { .. } => 2, _ => 1 }
}
#[cfg(test)]
mod tests { fn t() { x.unwrap(); } }
";
        let s = analyze_file("crates/serve/src/server.rs", src);
        assert!(!s.fns.is_empty());
        assert!(s.exit_map.is_some());
        let mut cache = Cache::default();
        cache.put(content_hash(src), s.clone());
        let reparsed = Cache::parse(&cache.render()).expect("round-trip parse");
        assert_eq!(reparsed.get("crates/serve/src/server.rs", content_hash(src)), Some(&s));
        // A different hash must miss.
        assert_eq!(reparsed.get("crates/serve/src/server.rs", 1), None);
    }

    #[test]
    fn version_and_corruption_discard_the_cache() {
        assert!(Cache::parse("domd-lint-cache v1\n").is_none());
        assert!(Cache::parse("").is_none());
        let mut cache = Cache::default();
        cache.put(7, analyze_file("a.rs", "fn f() {}"));
        let text = cache.render();
        // Truncate mid-entry: the `end` line is lost.
        let cut = text.rfind("end").expect("end tag");
        assert!(Cache::parse(&text[..cut]).is_none());
    }

    #[test]
    fn escaping_handles_spaces_newlines_and_empty_cells() {
        assert_eq!(unesc_cell(&esc_cell("a b\nc\\d")), "a b\nc\\d");
        assert_eq!(unesc_cell(&esc_cell("")), "");
        assert_eq!(unesc(&esc("line1\nline2\r")), "line1\nline2\r");
    }
}
