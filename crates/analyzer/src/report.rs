//! Findings, waivers, and the machine-readable report.

use std::fmt::Write as _;

/// The nine project-invariant rules plus the waiver meta-rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// R1: no `unwrap`/`expect`/`panic!` family in non-test code.
    NoPanic,
    /// R2: no `std::thread` use outside `domd-runtime`.
    ThreadSpawn,
    /// R3: no wall clocks, ambient RNG, or default-hasher maps.
    Nondeterminism,
    /// R4: WAL append must precede index mutation in `durable.rs`.
    WalOrder,
    /// R5: crate roots carry the agreed `#![deny(...)]` header.
    LintHeader,
    /// R6: no unbounded queues outside `domd-runtime` — `mpsc::channel()`
    /// and capacity-unchecked `push_back` must shed, not grow.
    BoundedQueues,
    /// R7: lock acquisitions must follow the declared hierarchy, on
    /// every path reachable through the call graph.
    LockOrder,
    /// R8: on the ingest path, fsync must dominate epoch publish and
    /// the protocol ack ("acked ⇒ durable"), across calls.
    AckOrder,
    /// R9: every `DomdError` variant maps to exactly one exit code, and
    /// the doc tables agree with the code.
    ExitCodeMap,
    /// Meta: a malformed, unjustified, or unused waiver comment.
    WaiverPolicy,
}

impl Rule {
    /// Stable kebab-case id used in reports and `allow(...)` comments.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::Nondeterminism => "nondeterminism",
            Rule::WalOrder => "wal-order",
            Rule::LintHeader => "lint-header",
            Rule::BoundedQueues => "bounded-queues",
            Rule::LockOrder => "lock-order",
            Rule::AckOrder => "ack-order",
            Rule::ExitCodeMap => "exit-code-map",
            Rule::WaiverPolicy => "waiver-policy",
        }
    }

    /// Parses a rule id as written in an `allow(...)` comment.
    pub fn from_id(id: &str) -> Option<Rule> {
        match id {
            "no-panic" => Some(Rule::NoPanic),
            "thread-spawn" => Some(Rule::ThreadSpawn),
            "nondeterminism" => Some(Rule::Nondeterminism),
            "wal-order" => Some(Rule::WalOrder),
            "lint-header" => Some(Rule::LintHeader),
            "bounded-queues" => Some(Rule::BoundedQueues),
            "lock-order" => Some(Rule::LockOrder),
            "ack-order" => Some(Rule::AckOrder),
            "exit-code-map" => Some(Rule::ExitCodeMap),
            "waiver-policy" => Some(Rule::WaiverPolicy),
            _ => None,
        }
    }

    /// Every waivable rule, for `--self-check` coverage accounting.
    pub const ALL: &'static [Rule] = &[
        Rule::NoPanic,
        Rule::ThreadSpawn,
        Rule::Nondeterminism,
        Rule::WalOrder,
        Rule::LintHeader,
        Rule::BoundedQueues,
        Rule::LockOrder,
        Rule::AckOrder,
        Rule::ExitCodeMap,
    ];

    /// The `--explain <rule>` text: what the rule enforces, why the
    /// invariant matters here, and how to conform or waive.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::NoPanic => {
                "no-panic (R1)\n\
                 Forbids `.unwrap()`, `.expect(...)`, `panic!`, `unreachable!`,\n\
                 `todo!`, and `unimplemented!` in non-test code. Result-producing\n\
                 paths must return typed `DomdError`s so callers choose between\n\
                 degraded serving and refusal. Test code (`#[test]`, `#[cfg(test)]`)\n\
                 and `crates/bench/` are exempt by policy.\n\
                 Conform: propagate with `?` and a typed error.\n"
            }
            Rule::ThreadSpawn => {
                "thread-spawn (R2)\n\
                 Forbids direct `std::thread` use outside `crates/runtime/`. All\n\
                 parallelism flows through the bounded `domd-runtime` pool so\n\
                 results are bit-identical at every thread count.\n\
                 Conform: use `runtime::pool()` / `par_map`.\n"
            }
            Rule::Nondeterminism => {
                "nondeterminism (R3)\n\
                 Forbids wall/monotonic clocks, ambient RNG, and default-hasher\n\
                 maps in result-producing code — iteration order and timing must\n\
                 not change outputs. `crates/bench/` and the serve clock capability\n\
                 module are the allowed exceptions.\n\
                 Conform: seeded RNG, `BTreeMap`, or an explicit `FxBuildHasher`.\n"
            }
            Rule::WalOrder => {
                "wal-order (R4)\n\
                 In the WAL-governed files, every index mutation\n\
                 (`insert_logical`/`remove_logical`) must be preceded in the same\n\
                 fn body by a WAL `append`: log-before-apply is the recovery\n\
                 contract. Derived mutations carry a waiver naming the provenance.\n"
            }
            Rule::LintHeader => {
                "lint-header (R5)\n\
                 Every crate root must carry `#![deny(unsafe_code)]`. The analyzer\n\
                 has no soundness story for unsafe blocks, so the workspace bans\n\
                 them at the compiler level.\n"
            }
            Rule::BoundedQueues => {
                "bounded-queues (R6)\n\
                 Forbids `mpsc::channel()` and capacity-unchecked `push_back`\n\
                 outside `crates/runtime/`. Under overload the system sheds load;\n\
                 it never grows an unbounded queue. Conform: `sync_channel(cap)`,\n\
                 or check `len() < cap` in the same fn body before pushing.\n"
            }
            Rule::LockOrder => {
                "lock-order (R7)\n\
                 Enforces the declared lock hierarchy over every acquisition path\n\
                 reachable in the intra-workspace call graph:\n\
                   rank 0  EpochStore swap/build locks (`current`, `build`)\n\
                   rank 1  tenant state (`breaker`, `cache`)\n\
                   rank 2  DurableIndex (`durable`)\n\
                   rank 3  WAL file lock (`wal`)\n\
                 A guard is modeled as held until the end of its enclosing block.\n\
                 Findings: acquiring a lower-or-equal rank while a higher one is\n\
                 held (inversion), re-acquiring the same class (self-deadlock),\n\
                 and holding a guard across a call whose callee can re-acquire\n\
                 the same class. Findings anchor at the acquisition that is held\n\
                 too long — a waiver on the call site does not suppress them.\n\
                 Conform: drop the guard (end the block) before acquiring down\n\
                 the hierarchy or calling into code that re-acquires.\n"
            }
            Rule::AckOrder => {
                "ack-order (R8)\n\
                 On the serve ingest path, the durability fsync must dominate the\n\
                 epoch publish and the protocol ack: \"acked ⇒ durable\". The rule\n\
                 flattens each ingest entry point through the call graph (calls\n\
                 take effect after their arguments, so an fsync inside a closure\n\
                 argument counts before the enclosing call) and flags any publish\n\
                 (`install`/`publish`) or ack marker (`Ingested`) not preceded by\n\
                 a sync (`sync`/`sync_durable`/`flush`) on the flattened path.\n\
                 Conform: fsync before publishing the epoch that exposes the rows.\n"
            }
            Rule::ExitCodeMap => {
                "exit-code-map (R9)\n\
                 Every `DomdError` variant must map to exactly one exit code in\n\
                 `fn exit_code` — no unmapped variants, no duplicate codes, no\n\
                 wildcard arm hiding new variants — and every documented exit-code\n\
                 table (the bin's doc comment and the README) must list exactly\n\
                 the mapped codes. Drifted docs are findings on the doc file.\n"
            }
            Rule::WaiverPolicy => {
                "waiver-policy (meta)\n\
                 Waivers are `// domd-lint: allow(<rule>) — <justification>` on\n\
                 the violating line or the line above. A waiver must name a real\n\
                 rule, justify itself (≥ 10 chars in workspace tests), and\n\
                 suppress at least one finding — unused waivers are violations.\n\
                 Doc comments (`///`) never grant waivers.\n"
            }
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// What was found and what the fix is.
    pub message: String,
}

/// One accepted `// domd-lint: allow(<rule>) — <justification>` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line of the waiver comment.
    pub line: usize,
    /// The waived rule.
    pub rule: Rule,
    /// The stated justification (non-empty by construction).
    pub justification: String,
}

/// The result of scanning a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Unwaived violations, in (file, line) order.
    pub violations: Vec<Finding>,
    /// The full waiver surface, in (file, line) order.
    pub waivers: Vec<Waiver>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when no violation survived waiver application.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic ordering for output and tests: (file, line, rule id)
    /// with the rule compared by its *stable kebab-case id*, not enum
    /// declaration order, so adding a variant never reorders CI diffs.
    pub fn sort(&mut self) {
        self.violations.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule.id())
                .cmp(&(b.file.as_str(), b.line, b.rule.id()))
                .then_with(|| a.message.cmp(&b.message))
        });
        self.waivers.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule.id()).cmp(&(b.file.as_str(), b.line, b.rule.id()))
        });
    }

    /// Human-readable report (one line per violation, then the waiver
    /// inventory so reviewers always see the full exempted surface).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{}:{}: [{}] {}", v.file, v.line, v.rule.id(), v.message);
        }
        if !self.waivers.is_empty() {
            let _ = writeln!(out, "waivers ({}):", self.waivers.len());
            for w in &self.waivers {
                let _ = writeln!(
                    out,
                    "  {}:{} [{}] — {}",
                    w.file,
                    w.line,
                    w.rule.id(),
                    w.justification
                );
            }
        }
        let _ = writeln!(
            out,
            "domd-lint: {} file(s), {} violation(s), {} waiver(s)",
            self.files_scanned,
            self.violations.len(),
            self.waivers.len()
        );
        out
    }

    /// Machine-readable report for CI.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"clean\": ");
        out.push_str(if self.is_clean() { "true" } else { "false" });
        let _ = write!(out, ",\n  \"files_scanned\": {},\n  \"violations\": [", self.files_scanned);
        for (i, v) in self.violations.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                if i == 0 { "" } else { "," },
                json_str(&v.file),
                v.line,
                json_str(v.rule.id()),
                json_str(&v.message)
            );
        }
        out.push_str(if self.violations.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"justification\": {}}}",
                if i == 0 { "" } else { "," },
                json_str(&w.file),
                w.line,
                json_str(w.rule.id()),
                json_str(&w.justification)
            );
        }
        out.push_str(if self.waivers.is_empty() { "]\n}\n" } else { "\n  ]\n}\n" });
        out
    }
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let mut r = Report { files_scanned: 1, ..Report::default() };
        r.violations.push(Finding {
            file: "a\"b.rs".into(),
            line: 3,
            rule: Rule::NoPanic,
            message: "tab\there".into(),
        });
        let j = r.render_json();
        assert!(j.contains(r#""file": "a\"b.rs""#), "{j}");
        assert!(j.contains(r#""message": "tab\there""#), "{j}");
        assert!(j.contains(r#""clean": false"#));
    }

    #[test]
    fn rule_ids_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_id(r.id()), Some(*r));
        }
        assert_eq!(Rule::from_id("waiver-policy"), Some(Rule::WaiverPolicy));
        assert_eq!(Rule::from_id("nope"), None);
    }

    #[test]
    fn every_rule_explains_itself_by_id() {
        for r in Rule::ALL.iter().chain([&Rule::WaiverPolicy]) {
            assert!(r.explain().starts_with(r.id()), "{} explain header", r.id());
        }
    }

    #[test]
    fn sort_orders_by_rule_id_string_not_enum_order() {
        // At one location, "ack-order" < "lock-order" < "no-panic" by id,
        // even though NoPanic precedes both in the enum declaration.
        let f = |rule| Finding { file: "x.rs".into(), line: 1, rule, message: "m".into() };
        let mut r = Report {
            violations: vec![f(Rule::NoPanic), f(Rule::LockOrder), f(Rule::AckOrder)],
            ..Report::default()
        };
        r.sort();
        let ids: Vec<&str> = r.violations.iter().map(|v| v.rule.id()).collect();
        assert_eq!(ids, vec!["ack-order", "lock-order", "no-panic"]);
    }
}
