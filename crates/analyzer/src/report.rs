//! Findings, waivers, and the machine-readable report.

use std::fmt::Write as _;

/// The five project-invariant rules plus the waiver meta-rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// R1: no `unwrap`/`expect`/`panic!` family in non-test code.
    NoPanic,
    /// R2: no `std::thread` use outside `domd-runtime`.
    ThreadSpawn,
    /// R3: no wall clocks, ambient RNG, or default-hasher maps.
    Nondeterminism,
    /// R4: WAL append must precede index mutation in `durable.rs`.
    WalOrder,
    /// R5: crate roots carry the agreed `#![deny(...)]` header.
    LintHeader,
    /// R6: no unbounded queues outside `domd-runtime` — `mpsc::channel()`
    /// and capacity-unchecked `push_back` must shed, not grow.
    BoundedQueues,
    /// Meta: a malformed, unjustified, or unused waiver comment.
    WaiverPolicy,
}

impl Rule {
    /// Stable kebab-case id used in reports and `allow(...)` comments.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::Nondeterminism => "nondeterminism",
            Rule::WalOrder => "wal-order",
            Rule::LintHeader => "lint-header",
            Rule::BoundedQueues => "bounded-queues",
            Rule::WaiverPolicy => "waiver-policy",
        }
    }

    /// Parses a rule id as written in an `allow(...)` comment.
    pub fn from_id(id: &str) -> Option<Rule> {
        match id {
            "no-panic" => Some(Rule::NoPanic),
            "thread-spawn" => Some(Rule::ThreadSpawn),
            "nondeterminism" => Some(Rule::Nondeterminism),
            "wal-order" => Some(Rule::WalOrder),
            "lint-header" => Some(Rule::LintHeader),
            "bounded-queues" => Some(Rule::BoundedQueues),
            "waiver-policy" => Some(Rule::WaiverPolicy),
            _ => None,
        }
    }

    /// Every waivable rule, for `--self-check` coverage accounting.
    pub const ALL: &'static [Rule] = &[
        Rule::NoPanic,
        Rule::ThreadSpawn,
        Rule::Nondeterminism,
        Rule::WalOrder,
        Rule::LintHeader,
        Rule::BoundedQueues,
    ];
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// What was found and what the fix is.
    pub message: String,
}

/// One accepted `// domd-lint: allow(<rule>) — <justification>` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line of the waiver comment.
    pub line: usize,
    /// The waived rule.
    pub rule: Rule,
    /// The stated justification (non-empty by construction).
    pub justification: String,
}

/// The result of scanning a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Unwaived violations, in (file, line) order.
    pub violations: Vec<Finding>,
    /// The full waiver surface, in (file, line) order.
    pub waivers: Vec<Waiver>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when no violation survived waiver application.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic ordering for output and tests.
    pub fn sort(&mut self) {
        self.violations.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
        self.waivers.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
    }

    /// Human-readable report (one line per violation, then the waiver
    /// inventory so reviewers always see the full exempted surface).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{}:{}: [{}] {}", v.file, v.line, v.rule.id(), v.message);
        }
        if !self.waivers.is_empty() {
            let _ = writeln!(out, "waivers ({}):", self.waivers.len());
            for w in &self.waivers {
                let _ = writeln!(
                    out,
                    "  {}:{} [{}] — {}",
                    w.file,
                    w.line,
                    w.rule.id(),
                    w.justification
                );
            }
        }
        let _ = writeln!(
            out,
            "domd-lint: {} file(s), {} violation(s), {} waiver(s)",
            self.files_scanned,
            self.violations.len(),
            self.waivers.len()
        );
        out
    }

    /// Machine-readable report for CI.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"clean\": ");
        out.push_str(if self.is_clean() { "true" } else { "false" });
        let _ = write!(out, ",\n  \"files_scanned\": {},\n  \"violations\": [", self.files_scanned);
        for (i, v) in self.violations.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                if i == 0 { "" } else { "," },
                json_str(&v.file),
                v.line,
                json_str(v.rule.id()),
                json_str(&v.message)
            );
        }
        out.push_str(if self.violations.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"justification\": {}}}",
                if i == 0 { "" } else { "," },
                json_str(&w.file),
                w.line,
                json_str(w.rule.id()),
                json_str(&w.justification)
            );
        }
        out.push_str(if self.waivers.is_empty() { "]\n}\n" } else { "\n  ]\n}\n" });
        out
    }
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let mut r = Report { files_scanned: 1, ..Report::default() };
        r.violations.push(Finding {
            file: "a\"b.rs".into(),
            line: 3,
            rule: Rule::NoPanic,
            message: "tab\there".into(),
        });
        let j = r.render_json();
        assert!(j.contains(r#""file": "a\"b.rs""#), "{j}");
        assert!(j.contains(r#""message": "tab\there""#), "{j}");
        assert!(j.contains(r#""clean": false"#));
    }

    #[test]
    fn rule_ids_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_id(r.id()), Some(*r));
        }
        assert_eq!(Rule::from_id("waiver-policy"), Some(Rule::WaiverPolicy));
        assert_eq!(Rule::from_id("nope"), None);
    }
}
