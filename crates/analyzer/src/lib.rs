#![deny(unsafe_code)]
//! # domd-analyzer
//!
//! A std-only static invariant checker for this workspace, surfaced as
//! the `domd-lint` binary. The codebase rests on invariants no compiler
//! pass checks — bit-identical results across thread counts (PR 2),
//! epoch-keyed cache invalidation (PR 3), WAL-before-apply durability
//! (PR 4), and the typed [`DomdError`] taxonomy (PR 1). A single stray
//! `thread::spawn`, a default-hasher map iterated in a hot path, or an
//! `unwrap()` on a storage read silently reintroduces the exact failure
//! classes those layers eliminated. `domd-lint` mechanically enforces:
//!
//! | rule | invariant guarded |
//! |------|-------------------|
//! | `no-panic` | non-test code returns typed errors, never panics |
//! | `thread-spawn` | all parallelism flows through `domd-runtime` |
//! | `nondeterminism` | no clocks, ambient entropy, or default hashers |
//! | `wal-order` | WAL append precedes index mutation in `durable.rs` |
//! | `lint-header` | every crate root carries `#![deny(unsafe_code)]` |
//! | `bounded-queues` | queues shed under overload, never grow unbounded |
//! | `lock-order` | acquisitions follow the declared hierarchy, call-graph-wide |
//! | `ack-order` | fsync dominates epoch publish and ack on the ingest path |
//! | `exit-code-map` | one exit code per error variant, docs in agreement |
//!
//! The first six rules are per-file token matches; the last three are
//! *interprocedural* — they run over recovered function bodies and an
//! intra-workspace call graph, so an inverted lock acquisition is caught
//! through any number of intervening calls.
//!
//! * [`lexer`] — a minimal Rust lexer that correctly skips comments,
//!   strings, raw strings, and char literals, so rules match tokens the
//!   compiler would see — never text inside literals;
//! * [`parser`] — structural recovery over the token stream: items,
//!   bodies as block trees, call/marker events in effect order;
//! * [`callgraph`] — name-resolved call edges, the per-fn "can acquire"
//!   fixpoint, and the R7/R8/R9 passes;
//! * [`rules`] — the per-file rule engine, `#[cfg(test)]`-aware, with
//!   inline `// domd-lint: allow(<rule>) — <justification>` waivers that
//!   are inventoried, justified, and must suppress something;
//! * [`config`] — the path-keyed policy (exempt surfaces, the lock
//!   hierarchy, the ingest-path vocabulary, the exit-code map location);
//! * [`cache`] — content-hash incremental caching of per-file summaries
//!   (`.domd-lint-cache`), so warm sweeps skip unchanged files;
//! * [`workspace`] — deterministic file discovery and the merged scan;
//! * [`self_check`] — validates the rule set against the fixture corpus
//!   (`fixtures/`), so a broken lexer fails loudly;
//! * [`report`] — findings, the waiver inventory, human/JSON rendering.
//!
//! [`DomdError`]: https://example.org/domd
//!
//! ```no_run
//! let report = domd_analyzer::scan_workspace(std::path::Path::new(".")).expect("readable");
//! assert!(report.is_clean(), "{}", report.render_human());
//! ```

pub mod cache;
pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod self_check;
pub mod workspace;

pub use report::{Finding, Report, Rule, Waiver};
pub use rules::{analyze_file, scan_file, FileSummary};
pub use self_check::{self_check, SelfCheckReport};
pub use workspace::{
    collect_files, find_root, scan_workspace, scan_workspace_cached, AnalyzerError, SweepStats,
};
