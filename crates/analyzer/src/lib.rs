#![deny(unsafe_code)]
//! # domd-analyzer
//!
//! A std-only static invariant checker for this workspace, surfaced as
//! the `domd-lint` binary. The codebase rests on invariants no compiler
//! pass checks — bit-identical results across thread counts (PR 2),
//! epoch-keyed cache invalidation (PR 3), WAL-before-apply durability
//! (PR 4), and the typed [`DomdError`] taxonomy (PR 1). A single stray
//! `thread::spawn`, a default-hasher map iterated in a hot path, or an
//! `unwrap()` on a storage read silently reintroduces the exact failure
//! classes those layers eliminated. `domd-lint` mechanically enforces:
//!
//! | rule | invariant guarded |
//! |------|-------------------|
//! | `no-panic` | non-test code returns typed errors, never panics |
//! | `thread-spawn` | all parallelism flows through `domd-runtime` |
//! | `nondeterminism` | no clocks, ambient entropy, or default hashers |
//! | `wal-order` | WAL append precedes index mutation in `durable.rs` |
//! | `lint-header` | every crate root carries `#![deny(unsafe_code)]` |
//!
//! * [`lexer`] — a minimal Rust lexer that correctly skips comments,
//!   strings, raw strings, and char literals, so rules match tokens the
//!   compiler would see — never text inside literals;
//! * [`rules`] — the per-file rule engine, `#[cfg(test)]`-aware, with
//!   inline `// domd-lint: allow(<rule>) — <justification>` waivers that
//!   are inventoried, justified, and must suppress something;
//! * [`config`] — the path-keyed policy (exempt surfaces, the WAL file,
//!   the required crate-root header);
//! * [`workspace`] — deterministic file discovery and the merged scan;
//! * [`self_check`] — validates the rule set against the fixture corpus
//!   (`fixtures/`), so a broken lexer fails loudly;
//! * [`report`] — findings, the waiver inventory, human/JSON rendering.
//!
//! [`DomdError`]: https://example.org/domd
//!
//! ```no_run
//! let report = domd_analyzer::scan_workspace(std::path::Path::new(".")).expect("readable");
//! assert!(report.is_clean(), "{}", report.render_human());
//! ```

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod self_check;
pub mod workspace;

pub use report::{Finding, Report, Rule, Waiver};
pub use rules::scan_file;
pub use self_check::{self_check, SelfCheckReport};
pub use workspace::{collect_files, find_root, scan_workspace, AnalyzerError};
