// lint-fixture: path=crates/index/src/delta.rs
// R4 conforming in the delta module: a delta application site either
// appends to the WAL in the same body or carries an inventoried waiver
// stating the mutation replays an already-logged record.

impl Fixture {
    pub fn apply_logged(&mut self, rcc: &LogicalRcc) -> Result<(), StorageError> {
        self.wal.append(&record_of(rcc))?;
        self.index.insert_logical(rcc);
        Ok(())
    }

    fn apply_derived(&mut self, rcc: &LogicalRcc) {
        // domd-lint: allow(wal-order) — applies a delta already durable in the serving layer's WAL //~waiver wal-order
        self.index.remove_logical(rcc);
    }
}
