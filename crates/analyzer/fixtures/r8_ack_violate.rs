// lint-fixture: path=crates/serve/src/server.rs
// R8 ack-order: on the serve ingest path, every epoch publish and every
// protocol ack must be dominated by an fsync ("acked ⇒ durable"). This
// entry publishes through a helper and acks with nothing synced — both
// are flagged, the publish at its own line inside the helper.

pub struct Server;

impl Server {
    pub fn handle_ingest(&mut self, rows: &[Row]) -> Reply {
        let applied = self.apply_rows(rows);
        self.publish_epoch();
        Reply::Ingested { applied } //~ ack-order
    }

    fn apply_rows(&mut self, rows: &[Row]) -> usize {
        rows.len()
    }

    fn publish_epoch(&mut self) {
        self.store.install(self.pending.take()); //~ ack-order
    }
}
