// lint-fixture: path=crates/core/src/fixture_r1.rs
// R1: panicking constructs in non-test library code.

pub fn take(x: Option<u32>) -> u32 {
    x.unwrap() //~ no-panic
}

pub fn read(r: Result<u32, String>) -> u32 {
    r.expect("must parse") //~ no-panic
}

pub fn flipped(r: Result<u32, String>) -> String {
    r.unwrap_err() //~ no-panic
}

pub fn by_path(x: Option<u32>) -> u32 {
    Option::unwrap(x) //~ no-panic
}

pub fn boom() {
    panic!("library code must return typed errors"); //~ no-panic
}

pub fn later() -> u32 {
    todo!() //~ no-panic
}

pub fn cant_happen() {
    unreachable!("prove it to the type system instead"); //~ no-panic
}

#[cfg(test)]
mod tests {
    // Test code panics by design: none of these may be reported.
    #[test]
    fn asserts_freely() {
        Some(1).unwrap();
        Err::<u32, _>("e").expect("boom");
        panic!("fine in tests");
    }
}
