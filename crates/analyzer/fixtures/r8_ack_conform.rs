// lint-fixture: path=crates/serve/src/server.rs
// R8 ack-order, conforming: the fsync runs inside the update closure —
// arguments take effect before the call they feed — so it dominates the
// publish inside `update` and the ack that follows.

pub struct Server;

impl Server {
    pub fn handle_ingest(&mut self, rows: &[Row]) -> Reply {
        let applied = self.update(|snap| {
            snap.ingest(rows);
            self.index.sync()
        });
        Reply::Ingested { applied }
    }

    fn update(&self, next: Epoch) -> usize {
        self.store.install(next)
    }
}
