// lint-fixture: path=crates/core/src/fixture_r6.rs
// R6: unbounded queueing outside the runtime's bounded primitives.

use std::collections::VecDeque;
use std::sync::mpsc;

pub fn fan_in() -> usize {
    let (tx, rx) = mpsc::channel(); //~ bounded-queues
    tx.send(1u32).ok();
    let mut backlog: VecDeque<u32> = VecDeque::new();
    while let Ok(x) = rx.try_recv() {
        backlog.push_back(x); //~ bounded-queues
    }
    0
}
