// lint-fixture: path=src/bin/domd.rs
// R9 exit-code-map: every DomdError variant maps to exactly one literal
// exit code, no wildcard arm may hide new variants, and the doc-comment
// table must list exactly the mapped codes. This fixture drifts in every
// direction at once: an unmapped variant, a stale arm sharing a code, a
// wildcard, a documented code nothing maps to, and a mapped code the
// table omits (anchored at the table's first row).

pub enum DomdError {
    Config { message: String },
    Io { context: String },
    Parse { line: usize }, //~ exit-code-map
    Overload { shed: usize },
}

/// | code | failure class |
/// |------|---------------|
/// | 2    | configuration | //~ exit-code-map
/// | 3    | storage I/O   |
/// | 9    | never mapped  | //~ exit-code-map
fn exit_code(e: &DomdError) -> u8 {
    match e {
        DomdError::Config { .. } => 2,
        DomdError::Io { .. } => 3,
        DomdError::Gone { .. } => 3, //~ exit-code-map
        DomdError::Overload { .. } => 10,
        _ => 1, //~ exit-code-map
    }
}
