// lint-fixture: path=crates/fake/src/lib.rs
// R5 conforming: the agreed header, grouped form also accepted.

#![deny(unsafe_code)]

pub mod something;
