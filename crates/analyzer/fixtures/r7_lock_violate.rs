// lint-fixture: path=crates/serve/src/server.rs
// R7 lock-order: acquisitions must follow the declared hierarchy
// (epoch-swap 0 < tenant 1 < durable-index 2 < wal-file 3). Same-class
// re-acquisition while a guard is live is a self-deadlock; holding a
// guard across a call chain that can (transitively) acquire the same
// class or a lower rank is flagged at the *acquisition* line, so a
// waiver on the call site cannot suppress it.

pub struct Server;

impl Server {
    /// Same-body inversion: wal-file (rank 3) held, then durable-index
    /// (rank 2) acquired underneath it.
    fn flush_then_index(&self) -> Result<(), ()> {
        let wal = self.wal.lock().map_err(drop)?;
        let durable = self.durable.lock().map_err(drop)?; //~ lock-order
        durable.apply(&wal);
        Ok(())
    }

    /// Same-class re-acquisition while the first guard is still live.
    fn double_wal(&self) -> Result<(), ()> {
        let first = self.wal.lock().map_err(drop)?;
        let second = self.wal.lock().map_err(drop)?; //~ lock-order
        first.merge(second);
        Ok(())
    }

    /// The interprocedural inversion: the wal-file guard is held across
    /// a call chain (`relay` → `reindex`) whose last frame acquires
    /// durable-index (rank 2) — invisible to any same-body scan. The
    /// finding anchors here, at the acquisition.
    fn hold_across_chain(&self) -> Result<(), ()> {
        let wal = self.wal.lock().map_err(drop)?; //~ lock-order
        self.relay(&wal);
        Ok(())
    }

    fn relay(&self, wal: &WalGuard) {
        self.reindex(wal.rows());
    }

    fn reindex(&self, rows: u32) -> Result<(), ()> {
        let durable = self.durable.lock().map_err(drop)?;
        durable.insert(rows);
        Ok(())
    }

    /// Held across a call that can re-acquire the *same* class: a
    /// self-deadlock through the call graph.
    fn requeue(&self) -> Result<(), ()> {
        let wal = self.wal.lock().map_err(drop)?; //~ lock-order
        self.append_tail();
        Ok(())
    }

    fn append_tail(&self) {
        let wal = self.wal.lock().map_err(drop);
        drop(wal);
    }
}
