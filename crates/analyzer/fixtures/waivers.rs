// lint-fixture: path=crates/core/src/fixture_waivers.rs
// The waiver policy: justified waivers suppress and are inventoried;
// malformed, unknown, and unused waivers are themselves violations.

pub fn justified_same_line(x: Option<u32>) -> u32 {
    x.unwrap() // domd-lint: allow(no-panic) — fixture: caller checked is_some() //~waiver no-panic
}

pub fn justified_line_above(x: Option<u32>) -> u32 {
    // domd-lint: allow(no-panic) — fixture: value seeded two lines up //~waiver no-panic
    x.unwrap()
}

pub fn unjustified(x: Option<u32>) -> u32 {
    // domd-lint: allow(no-panic) //~ waiver-policy
    x.unwrap() //~ no-panic
}

pub fn unknown_rule(x: Option<u32>) -> u32 {
    // domd-lint: allow(no-such-rule) — never heard of it //~ waiver-policy
    x.unwrap() //~ no-panic
}

// domd-lint: allow(thread-spawn) — suppresses nothing at all //~ waiver-policy
pub fn unused_waiver() {}
