// lint-fixture: path=crates/ml/src/fixture_r3_ok.rs
// R3 conforming: seeded RNG, Fx/BTree containers, explicit hashers.

use std::collections::BTreeMap;

pub fn grouped(keys: &[u32]) -> usize {
    // The Fx aliases carry their hasher in the third type parameter.
    let mut m: FxHashMap<u32, u32> = FxHashMap::default();
    for k in keys {
        *m.entry(*k).or_insert(0) += 1;
    }
    let explicit: HashMap<u32, u32, BuildHasherDefault<FxHasher>> = Default::default();
    let mut ordered: BTreeMap<u32, u32> = BTreeMap::new();
    ordered.insert(1, 2);
    m.len() + explicit.len() + ordered.len()
}

pub fn seeded(seed: u64) -> u64 {
    let rng = SmallRng::seed_from_u64(seed);
    drop(rng);
    seed
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_default_hashers_and_clocks() {
        let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let _t = std::time::Instant::now();
        assert!(m.is_empty());
    }
}
