// lint-fixture: path=crates/index/src/durable.rs
// R4 conforming: WAL-before-apply in every mutating function.

impl<I> Fixture<I> {
    pub fn insert(&mut self, rcc: &LogicalRcc) -> Result<bool, StorageError> {
        let rec = record_of(rcc);
        self.wal.append(&rec)?;
        self.index.insert_logical(rcc);
        Ok(true)
    }

    pub fn move_end(&mut self, rcc: &LogicalRcc, end: f64) -> Result<bool, StorageError> {
        self.wal.append(&record_of(rcc))?;
        self.index.remove_logical(rcc);
        self.index.insert_logical(&moved(rcc, end));
        Ok(true)
    }

    // A replay helper is exempt only through an inventoried waiver: the
    // records it applies are already durable in the log.
    fn replay_one(&mut self, rec: &WalRecord) {
        // domd-lint: allow(wal-order) — replays a record already durable in the WAL //~waiver wal-order
        self.index.insert_logical(&rec.row);
    }
}
