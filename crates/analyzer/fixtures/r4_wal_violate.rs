// lint-fixture: path=crates/index/src/durable.rs
// R4: index mutation with no preceding WAL append in the same function.

impl<I> Fixture<I> {
    pub fn apply_unlogged(&mut self, rcc: &LogicalRcc) {
        self.index.insert_logical(rcc); //~ wal-order
    }

    pub fn append_too_late(&mut self, rcc: &LogicalRcc) -> Result<(), StorageError> {
        self.index.remove_logical(rcc); //~ wal-order
        // Logging *after* the mutation inverts the durability contract:
        // the call above is still a violation.
        self.wal.append(&rec(rcc))?;
        Ok(())
    }

    pub fn logged_in_another_fn(&mut self) {
        self.log_first();
        // The append lives in a different function body; call order is
        // checked structurally *within* one body.
        self.index.insert_logical(&self.pending); //~ wal-order
    }

    fn log_first(&mut self) {
        let _ = self.wal.append(&self.rec);
    }
}
