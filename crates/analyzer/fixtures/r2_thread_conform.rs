// lint-fixture: path=crates/runtime/src/fixture_pool.rs
// R2 conforming: inside crates/runtime/ the pool may touch std::thread.

pub fn pooled(items: &[u32]) -> Vec<u32> {
    std::thread::scope(|scope| {
        let h = scope.spawn(|| items.to_vec());
        match h.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}
