// lint-fixture: path=crates/core/src/fixture_lexing.rs
// Adversarial lexing: every construct here hides rule-shaped text from
// a correct lexer. The only real finding is the final unwrap, which
// proves the lexer re-synchronises after each trap.

pub fn traps(x: Option<u32>) -> u32 {
    let _plain = "call x.unwrap() then thread::spawn then panic!";
    let _escaped = "escapes \" x.expect(\"m\") \\\" still a string";
    let _raw = r"raw x.unwrap() thread::spawn";
    let _fenced = r#"fenced "quote inside" x.unwrap()"#;
    let _deep = r##"deeper fence "# not the end" Instant::now()"##;
    let _bytes = b"byte string with panic! inside";
    let _char = '"'; // a quote as a char literal must not open a string
    let _esc_char = '\''; // escaped quote in a char literal
    let _not_a_waiver = "domd-lint: allow(no-panic) — strings are not comments";
    /* block comment with x.unwrap() and thread::spawn
       /* nested block comment with SystemTime::now() */
       still inside the outer comment: panic!("nope") */
    let _lifetime: &'static str = "lifetimes are not char literals";
    x.unwrap() //~ no-panic
}

pub fn generic_noise<'a, T>(v: &'a [T]) -> usize {
    // Comparison operators must not be mistaken for generic brackets.
    let n = v.len();
    if n < 3 && n + 1 > 0 {
        n
    } else {
        n
    }
}

#[cfg(test)]
mod tests {
    // An entire module of violations, structurally skipped.
    use std::collections::HashMap;

    #[test]
    fn full_of_violations() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.is_empty());
        let _t = std::time::Instant::now();
        std::thread::spawn(|| ()).join().unwrap();
        panic!("tests may do all of this");
    }
}
