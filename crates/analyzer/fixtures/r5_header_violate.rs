// lint-fixture: path=crates/fake/src/lib.rs //~ lint-header
// R5: a crate root with no `#![deny(unsafe_code)]` header. The finding
// anchors to line 1 (file level).
//
// A deny of something else does not satisfy the header rule:
#![deny(dead_code)]

pub mod something;
