// lint-fixture: path=crates/core/src/fixture_r1_ok.rs
// R1 conforming: typed errors and non-panicking combinators only.

pub enum FixtureError {
    Empty,
}

pub fn take(x: Option<u32>) -> Result<u32, FixtureError> {
    x.ok_or(FixtureError::Empty)
}

pub fn defaulted(x: Option<u32>) -> u32 {
    // The `unwrap_or` family never panics and is not R1's business.
    x.unwrap_or(0).max(x.unwrap_or_default()).max(x.unwrap_or_else(|| 7))
}

pub fn checked(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

#[test]
fn a_bare_test_fn_may_panic() {
    Option::<u32>::None.expect("tests are exempt");
}
