// lint-fixture: path=src/bin/domd.rs
// R9 exit-code-map, conforming: every variant has exactly one literal
// code, no wildcard, and the doc table lists exactly the mapped codes.

pub enum DomdError {
    Config { message: String },
    Io { context: String },
}

/// | code | failure class |
/// |------|---------------|
/// | 2    | configuration |
/// | 3    | storage I/O   |
fn exit_code(e: &DomdError) -> u8 {
    match e {
        DomdError::Config { .. } => 2,
        DomdError::Io { .. } => 3,
    }
}
