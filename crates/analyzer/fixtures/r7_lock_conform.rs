// lint-fixture: path=crates/serve/src/server.rs
// R7 lock-order conforming patterns: ascending-rank nesting, guards
// scoped to an inner block before calling down the hierarchy, and
// chained statement temporaries (transient guards).

pub struct Server;

impl Server {
    /// Ascending rank is the sanctioned nesting order.
    fn swap_then_wal(&self) -> Result<(), ()> {
        let current = self.current.lock().map_err(drop)?;
        let wal = self.wal.lock().map_err(drop)?;
        wal.append(current.epoch());
        Ok(())
    }

    /// Ending the guard's block before calling down the hierarchy is
    /// the sanctioned fix for a held-across-call finding.
    fn scoped_then_call(&self) -> Result<u32, ()> {
        let epoch = {
            let wal = self.wal.lock().map_err(drop)?;
            wal.epoch()
        };
        self.reindex(epoch)
    }

    fn reindex(&self, epoch: u32) -> Result<u32, ()> {
        let durable = self.durable.lock().map_err(drop)?;
        Ok(durable.insert(epoch))
    }

    /// A chained guard is a statement temporary: it participates as the
    /// inner lock of an ordering check but is never modeled as held, so
    /// the later durable-index acquisition is clean.
    fn chained_probe(&self) -> Result<usize, ()> {
        let pending = self.wal.lock().map_err(drop)?.len();
        let durable = self.durable.lock().map_err(drop)?;
        Ok(durable.len() + pending)
    }
}
