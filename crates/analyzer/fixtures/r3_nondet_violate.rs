// lint-fixture: path=crates/ml/src/fixture_r3.rs
// R3: nondeterminism sources in result-producing code.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn timed() -> u64 {
    let _t = std::time::Instant::now(); //~ nondeterminism
    let _w = std::time::SystemTime::now(); //~ nondeterminism
    0
}

pub fn seeded_badly() -> u64 {
    let _r = thread_rng(); //~ nondeterminism
    let _s = SmallRng::from_entropy(); //~ nondeterminism
    0
}

pub fn grouped(keys: &[u32]) -> usize {
    let mut m: HashMap<u32, u32> = HashMap::new(); //~ nondeterminism nondeterminism
    for k in keys {
        *m.entry(*k).or_insert(0) += 1;
    }
    let s: HashSet<u32> = keys.iter().copied().collect(); //~ nondeterminism
    m.len() + s.len()
}
