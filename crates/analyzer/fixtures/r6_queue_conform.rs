// lint-fixture: path=crates/core/src/fixture_r6_ok.rs
// R6 conforming: enqueue paths check capacity and shed, or carry a
// justified waiver naming the bound that holds.

use std::collections::VecDeque;

pub fn admit(backlog: &mut VecDeque<u32>, cap: usize, x: u32) -> bool {
    if backlog.len() >= cap {
        return false; // shed: the caller sees rejection, memory stays flat
    }
    backlog.push_back(x);
    true
}

pub fn stage(batch: &mut VecDeque<u32>, x: u32) {
    // domd-lint: allow(bounded-queues) — batch is drained to empty by the caller in the same tick; depth is bounded by the admission queue capacity upstream //~waiver bounded-queues
    batch.push_back(x);
}

pub fn bounded_pair() -> (std::sync::mpsc::SyncSender<u32>, std::sync::mpsc::Receiver<u32>) {
    std::sync::mpsc::sync_channel(8)
}
