// lint-fixture: path=crates/features/src/fixture_r2.rs
// R2: raw threading outside the bounded domd-runtime pool.

use std::thread;

pub fn fan_out(items: &[u32]) -> Vec<u32> {
    let h = thread::spawn(|| 1); //~ thread-spawn
    let v = std::thread::scope(|_s| items.to_vec()); //~ thread-spawn
    let _b = thread::Builder::new(); //~ thread-spawn
    drop(h);
    v
}
