// lint-fixture: path=crates/index/src/delta.rs
// R4 in the delta module: applying a delta to the logical index without
// a same-body WAL append (and without a waiver naming the log the delta
// was derived from) is a violation — the delta stream's whole soundness
// argument is that every mutation is already durable somewhere.

impl Fixture {
    pub fn apply_unlogged(&mut self, delta: &Delta) {
        let old = self.arena.logical(delta.row);
        self.index.remove_logical(&old); //~ wal-order
        self.index.insert_logical(&delta.row_after); //~ wal-order
    }
}
