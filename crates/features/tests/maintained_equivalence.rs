//! Correctness gate for the delta-maintained tensor: after every patch
//! batch, [`MaintainedTensor`] must be bit-identical to a from-scratch
//! `generate_tensor_threaded` over the mutated dataset — at every thread
//! count — and copy-on-write must leave pinned readers untouched.

use domd_data::dataset::Dataset;
use domd_data::{generate, AvailId, GeneratorConfig, Rcc, RccId};
use domd_features::{FeatureEngine, FeatureTensor, MaintainedTensor};

/// SplitMix64 — deterministic, dependency-free.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn assert_bit_identical(a: &FeatureTensor, b: &FeatureTensor, label: &str) {
    assert_eq!(a.n_steps(), b.n_steps(), "{label}: step count");
    for s in 0..a.n_steps() {
        let xs = a.slice(s).as_slice();
        let ys = b.slice(s).as_slice();
        assert_eq!(xs.len(), ys.len(), "{label}: slice {s} size");
        for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: slice {s} flat index {i}: {x} vs {y}");
        }
    }
}

/// Fresh RCC rows for `avail`, templated off the avail's existing rows so
/// types/SWLINs stay in-distribution.
fn fresh_rows(rng: &mut Mix, ds: &Dataset, avail: AvailId, n: usize, next_id: &mut u32) -> Vec<Rcc> {
    let pool: Vec<&Rcc> = ds.rccs().iter().filter(|r| r.avail == avail).collect();
    let start = ds.avail(avail).expect("avail exists").actual_start;
    (0..n)
        .map(|_| {
            let template = pool[rng.below(pool.len() as u64) as usize];
            let created = start + rng.below(70) as i32;
            *next_id += 1;
            Rcc {
                id: RccId(9_000_000 + *next_id),
                avail,
                rcc_type: template.rcc_type,
                swlin: template.swlin,
                created,
                settled: created + 1 + rng.below(80) as i32,
                amount: 40.0 + rng.below(4000) as f64,
            }
        })
        .collect()
}

#[test]
fn patched_tensor_matches_full_regeneration_after_every_batch() {
    let mut rng = Mix(0x00D0_7A11);
    let mut ds = generate(&GeneratorConfig { n_avails: 10, target_rccs: 900, scale: 1, seed: 21 });
    let all: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
    let grid: Vec<f64> = (0..=5).map(|i| f64::from(i) * 20.0).collect();
    let engine = FeatureEngine::default();

    let mut maintained =
        MaintainedTensor::from_tensor(&engine.generate_tensor_threaded(&ds, &all, &grid, 1));

    let mut next_id = 0u32;
    for batch in 0..6 {
        // Mutate 1–3 distinct avails per batch, a few rows each.
        let n_touched = 1 + rng.below(3) as usize;
        let mut touched: Vec<AvailId> = Vec::new();
        let mut fresh: Vec<Rcc> = Vec::new();
        for _ in 0..n_touched {
            let a = all[rng.below(all.len() as u64) as usize];
            let n_rows = 1 + rng.below(4) as usize;
            fresh.extend(fresh_rows(&mut rng, &ds, a, n_rows, &mut next_id));
            touched.push(a);
        }
        ds = ds.with_rccs_merged(fresh);
        let reference = engine.generate_tensor_threaded(&ds, &all, &grid, 1);

        // Every thread count must patch to the same bits; patch a clone per
        // count so each starts from the same pre-batch state.
        for threads in [1usize, 2, 3, 8] {
            let mut candidate = maintained.clone();
            let patched = candidate.patch_avails(&engine, &ds, &touched, threads);
            let mut distinct = touched.clone();
            distinct.sort_unstable_by_key(|a| a.0);
            distinct.dedup();
            assert_eq!(patched, distinct.len(), "batch {batch} threads {threads}: patch count");
            assert_bit_identical(
                &candidate.to_tensor(),
                &reference,
                &format!("batch {batch} threads {threads}"),
            );
            if threads == 1 {
                maintained = candidate;
            }
        }
    }
}

#[test]
fn copy_on_write_leaves_pinned_readers_untouched() {
    let mut rng = Mix(0xBEEF);
    let ds = generate(&GeneratorConfig { n_avails: 6, target_rccs: 500, scale: 1, seed: 7 });
    let all: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
    let grid = [0.0, 50.0, 100.0];
    let engine = FeatureEngine::default();

    let base = engine.generate_tensor_threaded(&ds, &all, &grid, 2);
    let mut maintained = MaintainedTensor::from_tensor(&base);
    // A pinned reader: shares the slices via Arc, exactly like an earlier
    // published epoch would.
    let pinned = maintained.clone();

    let mut next_id = 0u32;
    let target = all[2];
    let ds2 = ds.with_rccs_merged(fresh_rows(&mut rng, &ds, target, 5, &mut next_id));
    let patched = maintained.patch_avails(&engine, &ds2, &[target], 2);
    assert_eq!(patched, 1);

    // The pinned snapshot still carries the pre-patch bits...
    assert_bit_identical(&pinned.to_tensor(), &base, "pinned reader");
    // ...while the maintained tensor equals a full regeneration.
    let reference = engine.generate_tensor_threaded(&ds2, &all, &grid, 1);
    assert_bit_identical(&maintained.to_tensor(), &reference, "maintained");
    // And the patch really changed something (the delta adds live rows).
    let before = pinned.row(1, maintained.row_of(target).expect("present"));
    let after = maintained.row(1, maintained.row_of(target).expect("present"));
    assert!(
        before.iter().zip(after).any(|(b, a)| b.to_bits() != a.to_bits()),
        "patch must alter the target avail's row"
    );
}

#[test]
fn duplicate_and_absent_ids_are_tolerated() {
    let mut rng = Mix(1);
    let ds = generate(&GeneratorConfig { n_avails: 5, target_rccs: 300, scale: 1, seed: 3 });
    let all: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
    let grid = [30.0];
    let engine = FeatureEngine::default();
    let mut maintained =
        MaintainedTensor::from_tensor(&engine.generate_tensor_threaded(&ds, &all, &grid, 1));

    let mut next_id = 0u32;
    let target = all[0];
    let ds2 = ds.with_rccs_merged(fresh_rows(&mut rng, &ds, target, 2, &mut next_id));
    // Duplicates collapse; an id outside the tensor is skipped, not patched.
    let absent = AvailId(u32::MAX);
    let patched = maintained.patch_avails(&engine, &ds2, &[target, target, absent], 2);
    assert_eq!(patched, 1);
    let reference = engine.generate_tensor_threaded(&ds2, &all, &grid, 1);
    assert_bit_identical(&maintained.to_tensor(), &reference, "dedup");
    // Empty selection is a no-op.
    assert_eq!(maintained.patch_avails(&engine, &ds2, &[], 4), 0);
}
