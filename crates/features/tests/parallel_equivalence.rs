//! Determinism contract of the sharded feature sweep: for every shard
//! count, the tensor produced by `generate_tensor_threaded` must be
//! bit-identical to the single-sweep (`threads = 1`) tensor — same shards,
//! same cells, same accumulation order per cell.

use domd_data::{generate, AvailId, GeneratorConfig};
use domd_features::{FeatureCatalog, FeatureEngine, FeatureTensor};

fn assert_bit_identical(a: &FeatureTensor, b: &FeatureTensor, label: &str) {
    assert_eq!(a.n_steps(), b.n_steps(), "{label}: step count");
    for s in 0..a.n_steps() {
        let xs = a.slice(s).as_slice();
        let ys = b.slice(s).as_slice();
        assert_eq!(xs.len(), ys.len(), "{label}: slice {s} size");
        for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: slice {s} flat index {i}: {x} vs {y}"
            );
        }
    }
}

#[test]
fn sharded_sweep_is_bit_identical_across_seeds_and_shard_counts() {
    let grid: Vec<f64> = (0..=10).map(|i| f64::from(i) * 10.0).collect();
    for seed in [3u64, 17, 99] {
        let ds =
            generate(&GeneratorConfig { n_avails: 13, target_rccs: 1100, scale: 1, seed });
        let ids: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
        let engine = FeatureEngine::default();
        let reference = engine.generate_tensor_threaded(&ds, &ids, &grid, 1);
        // 13 avails: 2/3/5 give uneven shards, 13 one avail per shard,
        // 64 clamps to 13.
        for threads in [2usize, 3, 5, 13, 64] {
            let sharded = engine.generate_tensor_threaded(&ds, &ids, &grid, threads);
            assert_bit_identical(&reference, &sharded, &format!("seed {seed} threads {threads}"));
        }
    }
}

#[test]
fn sharded_sweep_matches_at_module_depth() {
    // The extended catalog exercises the lvl2 rollup path.
    let ds = generate(&GeneratorConfig { n_avails: 7, target_rccs: 600, scale: 1, seed: 29 });
    let ids: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
    let engine = FeatureEngine::new(FeatureCatalog::extended());
    let reference = engine.generate_tensor_threaded(&ds, &ids, &[0.0, 40.0, 100.0], 1);
    for threads in [2usize, 4, 7] {
        let sharded = engine.generate_tensor_threaded(&ds, &ids, &[0.0, 40.0, 100.0], threads);
        assert_bit_identical(&reference, &sharded, &format!("module depth threads {threads}"));
    }
}

#[test]
fn sharded_sweep_handles_subsets_and_empty_selection() {
    let ds = generate(&GeneratorConfig { n_avails: 10, target_rccs: 800, scale: 1, seed: 5 });
    let all: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
    let engine = FeatureEngine::default();
    let subset = &all[2..7];
    let reference = engine.generate_tensor_threaded(&ds, subset, &[50.0], 1);
    let sharded = engine.generate_tensor_threaded(&ds, subset, &[50.0], 4);
    assert_bit_identical(&reference, &sharded, "subset");
    // Zero avails: every thread count must yield the same empty shape.
    let empty = engine.generate_tensor_threaded(&ds, &[], &[50.0], 4);
    assert_eq!(empty.n_steps(), 1);
    assert_eq!(empty.slice(0).n_rows(), 0);
}
