//! Property-based tests for feature engineering: tensor values agree with
//! a brute-force recomputation straight from the RCC rows, and the
//! structural invariants of the catalog hold on arbitrary generated data.

use domd_data::rcc::RccType;
use domd_data::{generate, logical_time, AvailId, GeneratorConfig};
use domd_features::FeatureEngine;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn count_features_match_brute_force(
        seed in 0u64..200,
        t_star in 0.0f64..110.0,
    ) {
        let ds = generate(&GeneratorConfig { n_avails: 6, target_rccs: 400, scale: 1, seed });
        let engine = FeatureEngine::default();
        let names = engine.catalog().names();
        let col = |n: &str| names.iter().position(|x| x == n).unwrap();

        for a in ds.avails() {
            let feats = engine.features_for_avail_at(&ds, a.id, t_star);
            let planned = a.planned_duration().max(1);
            let status_of = |r: &domd_data::Rcc| {
                let s = logical_time(r.created, a.actual_start, planned);
                let e = logical_time(r.settled, a.actual_start, planned);
                domd_data::status_at(s, e, t_star)
            };
            // Brute force: G-type created count under subsystem 4.
            let want_g4: usize = ds
                .rccs_of(a.id)
                .iter()
                .filter(|r| {
                    r.rcc_type == RccType::Growth
                        && r.swlin.digit(1) == 4
                        && status_of(r) != domd_data::RccStatus::NotCreated
                })
                .count();
            prop_assert_eq!(feats[col("G4-COUNT_CRE")] as usize, want_g4);
            // Brute force: overall settled amount.
            let want_amt: f64 = ds
                .rccs_of(a.id)
                .iter()
                .filter(|r| status_of(r) == domd_data::RccStatus::Settled)
                .map(|r| r.amount)
                .sum();
            let got = feats[col("ALLALL-SUM_AMT_SET")];
            prop_assert!((got - want_amt).abs() < 1e-6 * (1.0 + want_amt));
        }
    }

    #[test]
    fn status_partition_invariant_in_features(seed in 0u64..100, t_star in 0.0f64..110.0) {
        // CRE count = ACT count + SET count, per type and subsystem.
        let ds = generate(&GeneratorConfig { n_avails: 5, target_rccs: 350, scale: 1, seed });
        let engine = FeatureEngine::default();
        let names = engine.catalog().names();
        let col = |n: String| names.iter().position(|x| *x == n).unwrap();
        for a in ds.avails() {
            let feats = engine.features_for_avail_at(&ds, a.id, t_star);
            for tf in ["ALL", "G", "N", "NG"] {
                for sg in ["ALL", "1", "5", "9"] {
                    let cre = feats[col(format!("{tf}{sg}-COUNT_CRE"))];
                    let act = feats[col(format!("{tf}{sg}-COUNT_ACT"))];
                    let set = feats[col(format!("{tf}{sg}-COUNT_SET"))];
                    prop_assert!((cre - act - set).abs() < 1e-9, "{tf}{sg} at {t_star}");
                }
            }
        }
    }

    #[test]
    fn type_groups_sum_to_all(seed in 0u64..100) {
        let ds = generate(&GeneratorConfig { n_avails: 5, target_rccs: 350, scale: 1, seed });
        let engine = FeatureEngine::default();
        let ids: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
        let t = engine.generate_tensor(&ds, &ids, &[70.0]);
        let names = t.names();
        let col = |n: &str| names.iter().position(|x| x == n).unwrap();
        for a in 0..ids.len() {
            let total = t.slice(0).get(a, col("ALLALL-SUM_AMT_CRE"));
            let parts: f64 = ["G", "N", "NG"]
                .iter()
                .map(|tf| t.slice(0).get(a, col(&format!("{tf}ALL-SUM_AMT_CRE"))))
                .sum();
            prop_assert!((total - parts).abs() < 1e-6 * (1.0 + total));
        }
    }
}
