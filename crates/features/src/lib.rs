//! # domd-features
//!
//! Feature engineering for the DoMD framework — the transformation
//! function 𝒯 of Section 3.1 that turns raw avail/RCC rows into the
//! avail × feature × logical-time tensor the timeline models consume.
//!
//! * [`spec`] — the 1490-feature catalog over (RCC type × SWLIN subsystem ×
//!   status × aggregation) plus trend features, with paper-style names like
//!   `G1-AVG_AMT_SET`;
//! * [`static_features`] — the 8 static features `F_i^S`;
//! * [`engine`] — tensor generation via one incremental Status Query sweep,
//!   plus the online single-avail path for live DoMD queries;
//! * [`cache`] — a memoizing LRU over the online per-avail feature
//!   snapshots with epoch-based invalidation (plus surgical per-avail
//!   invalidation for classified deltas);
//! * [`tensor`] — the materialized tensor with per-grid-point slices;
//! * [`maintain`] — the delta-maintained tensor: copy-on-write slices
//!   whose affected avail rows are patched by subset re-sweeps instead of
//!   regenerating, bit-identical to a full regeneration.

#![deny(unsafe_code)]
pub mod cache;
pub mod engine;
pub mod maintain;
pub mod spec;
pub mod static_features;
pub mod tensor;

pub use cache::{FeatureCache, FeatureKey};
pub use engine::FeatureEngine;
pub use maintain::MaintainedTensor;
pub use spec::{Aggregation, FeatureCatalog, FeatureSpec, StatusFilter, SwlinGroup, TypeFilter};
pub use static_features::{static_matrix, static_row, N_STATIC, STATIC_FEATURE_NAMES};
pub use tensor::FeatureTensor;
