//! Memoizing snapshot cache for the online feature path.
//!
//! The serving path ([`crate::engine::FeatureEngine::features_for_avail_at`])
//! recomputes the full feature vector of an avail at every timeline anchor
//! — and a DoMD query at logical time `t*` touches `1 + ceil(t*/x)` anchors,
//! every one of which was already computed by any earlier query on the same
//! avail at an equal-or-later `t*`. [`FeatureCache`] memoizes those
//! snapshots in a [`domd_index::LruCache`] keyed on
//! `(avail, t* bits, epoch)`.
//!
//! **Invalidation** is epoch-based, mirroring
//! [`domd_index::CachedStatusQueryEngine`]: the cache is bound to one
//! dataset snapshot; whoever mutates the dataset (dynamic RCC maintenance,
//! re-censoring) calls [`FeatureCache::invalidate`], which bumps the epoch
//! embedded in every future key — stale snapshots can never be looked up
//! again and age out of the LRU.
//!
//! **Bit-identity**: a miss stores the exact `Vec<f64>` the cold path
//! produced and a hit returns it verbatim (shared via `Arc`, never
//! recomputed), so cached and uncached serving emit identical bits.

use crate::engine::FeatureEngine;
use domd_data::dataset::Dataset;
use domd_data::AvailId;
use domd_index::{CacheStats, HeapSize, LruCache, DEFAULT_CACHE_CAPACITY};
use std::sync::Arc;

/// Key of one memoized per-avail feature snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FeatureKey {
    /// The avail the snapshot describes.
    pub avail: u32,
    /// Logical timestamp as raw bits (`f64` is not `Hash`).
    pub t_bits: u64,
    /// Dataset epoch the snapshot was computed under.
    pub epoch: u64,
}

/// An LRU of per-avail feature vectors with epoch-based invalidation.
///
/// One cache serves one `(FeatureEngine, Dataset)` pair: the key does not
/// encode the catalog or dataset identity, only the epoch — rebind by
/// calling [`FeatureCache::invalidate`] (or building a fresh cache).
#[derive(Debug)]
pub struct FeatureCache {
    cache: LruCache<FeatureKey, Arc<[f64]>>,
    epoch: u64,
    /// Feature-vector width, recorded on first insert (for heap accounting).
    width: usize,
}

impl Default for FeatureCache {
    fn default() -> Self {
        FeatureCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl FeatureCache {
    /// An empty cache holding at most `capacity` snapshots.
    pub fn new(capacity: usize) -> Self {
        FeatureCache { cache: LruCache::new(capacity), epoch: 0, width: 0 }
    }

    /// The current dataset epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Declares the bound dataset changed: bumps the epoch so every
    /// memoized snapshot is dead on arrival.
    pub fn invalidate(&mut self) {
        self.epoch += 1;
    }

    /// Surgical invalidation for a classified delta: drops only the
    /// snapshots of the given avails — an RCC delta changes the features
    /// of exactly its own avail — keeping everything else warm under the
    /// *same* epoch. Returns `(dropped, retained)`. Callers that cannot
    /// classify a mutation must use [`FeatureCache::invalidate`] instead
    /// (degraded, never silently stale).
    pub fn invalidate_avails(&mut self, avails: &[AvailId]) -> (usize, usize) {
        self.cache.retain_rekey(|k| !avails.iter().any(|a| a.0 == k.avail), |k| *k)
    }

    /// Snapshots currently stored.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Zeroes the counters (entries are kept).
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
    }

    /// The memoized snapshot for `(avail, t_star)` under the current epoch,
    /// computing and storing it via `engine` on a miss. A hit returns the
    /// stored cold-path vector verbatim.
    pub fn features_at(
        &mut self,
        engine: &FeatureEngine,
        dataset: &Dataset,
        avail: AvailId,
        t_star: f64,
    ) -> Arc<[f64]> {
        let key = FeatureKey { avail: avail.0, t_bits: t_star.to_bits(), epoch: self.epoch };
        if let Some(hit) = self.cache.get(&key) {
            return Arc::clone(hit);
        }
        let cold: Arc<[f64]> = engine.features_for_avail_at(dataset, avail, t_star).into();
        self.width = cold.len();
        self.cache.insert(key, Arc::clone(&cold));
        cold
    }
}

impl HeapSize for FeatureCache {
    fn heap_bytes(&self) -> usize {
        // Slab + map, plus the shared feature vectors themselves (all the
        // same catalog width).
        self.cache.heap_bytes()
            + self.cache.len() * self.width * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domd_data::{generate, GeneratorConfig};

    fn setup() -> (Dataset, FeatureEngine) {
        let ds = generate(&GeneratorConfig { n_avails: 8, target_rccs: 600, scale: 1, seed: 5 });
        (ds, FeatureEngine::default())
    }

    #[test]
    fn hit_returns_cold_bits_verbatim() {
        let (ds, eng) = setup();
        let mut cache = FeatureCache::new(64);
        let a = ds.avails()[0].id;
        for t in [0.0, 25.0, 50.0, 75.0] {
            let cold = eng.features_for_avail_at(&ds, a, t);
            let first = cache.features_at(&eng, &ds, a, t);
            let second = cache.features_at(&eng, &ds, a, t);
            assert_eq!(cold.len(), first.len());
            for ((c, f), s) in cold.iter().zip(first.iter()).zip(second.iter()) {
                assert_eq!(c.to_bits(), f.to_bits());
                assert_eq!(f.to_bits(), s.to_bits());
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 4);
    }

    #[test]
    fn invalidate_bumps_epoch_and_misses() {
        let (ds, eng) = setup();
        let mut cache = FeatureCache::new(64);
        let a = ds.avails()[1].id;
        cache.features_at(&eng, &ds, a, 40.0);
        cache.features_at(&eng, &ds, a, 40.0);
        assert_eq!(cache.stats().hits, 1);
        cache.invalidate();
        assert_eq!(cache.epoch(), 1);
        cache.features_at(&eng, &ds, a, 40.0);
        assert_eq!(cache.stats().hits, 1, "post-invalidate lookup must miss");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn invalidate_avails_is_surgical() {
        let (ds, eng) = setup();
        let mut cache = FeatureCache::new(64);
        let a = ds.avails()[0].id;
        let b = ds.avails()[1].id;
        for t in [10.0, 20.0] {
            cache.features_at(&eng, &ds, a, t);
            cache.features_at(&eng, &ds, b, t);
        }
        let (dropped, retained) = cache.invalidate_avails(&[a]);
        assert_eq!((dropped, retained), (2, 2));
        assert_eq!(cache.epoch(), 0, "surgical invalidation keeps the epoch");
        let hits_before = cache.stats().hits;
        cache.features_at(&eng, &ds, b, 10.0);
        assert_eq!(cache.stats().hits, hits_before + 1, "untouched avail stays warm");
        cache.features_at(&eng, &ds, a, 10.0);
        assert_eq!(cache.stats().hits, hits_before + 1, "dropped avail must recompute");
        // Bits of the recomputed snapshot equal the cold path.
        let cold = eng.features_for_avail_at(&ds, a, 10.0);
        let warm = cache.features_at(&eng, &ds, a, 10.0);
        for (c, w) in cold.iter().zip(warm.iter()) {
            assert_eq!(c.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn distinct_avails_and_times_do_not_collide() {
        let (ds, eng) = setup();
        let mut cache = FeatureCache::new(64);
        let a = ds.avails()[0].id;
        let b = ds.avails()[1].id;
        let fa = cache.features_at(&eng, &ds, a, 60.0);
        let fb = cache.features_at(&eng, &ds, b, 60.0);
        let fa2 = cache.features_at(&eng, &ds, a, 80.0);
        assert_ne!(fa.as_ref(), fb.as_ref(), "different avails differ");
        assert_ne!(fa.as_ref(), fa2.as_ref(), "different anchors differ");
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn heap_bytes_grow_with_entries() {
        let (ds, eng) = setup();
        let mut cache = FeatureCache::new(64);
        let empty = cache.heap_bytes();
        cache.features_at(&eng, &ds, ds.avails()[0].id, 10.0);
        assert!(cache.heap_bytes() > empty, "payload must be accounted");
    }
}
