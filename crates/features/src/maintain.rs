//! Delta-maintained feature tensor: patch affected avail rows in place
//! instead of regenerating every slice.
//!
//! An RCC delta (insert / settle / remove) changes the feature rows of
//! exactly one avail — every catalog feature aggregates only the avail's
//! own RCCs. The sharded sweep already proves per-avail row independence
//! bit-for-bit (`subset_of_avails_only_sees_their_rccs`: a tensor generated
//! for a subset of avails carries rows identical to the full tensor's), so
//! maintenance is: re-sweep only the touched avails over the same grid,
//! and swap their rows into the standing slices. Every untouched row keeps
//! its exact bits; every patched row carries the exact bits a full
//! regeneration would produce.
//!
//! Sharing is copy-on-write at *row* granularity (`Arc<[f64]>` per
//! (step, avail) row): readers holding a tensor snapshot (e.g. a pinned
//! serve epoch) are untouched, and a patch allocates only the touched
//! rows — with the paper's 1490-feature catalog, a per-slice
//! representation would copy the whole `avails x features` matrix per
//! step to rewrite a handful of rows, which is exactly the O(dataset)
//! epoch cost this module exists to avoid.

use crate::engine::FeatureEngine;
use crate::tensor::FeatureTensor;
use domd_data::dataset::Dataset;
use domd_data::AvailId;
use domd_ml::DenseMatrix;
use std::sync::Arc;

/// A feature tensor maintained under RCC deltas: row-granular
/// copy-on-write, per-avail patching via subset re-sweeps.
#[derive(Debug, Clone)]
pub struct MaintainedTensor {
    avail_ids: Vec<AvailId>,
    grid: Vec<f64>,
    names: Vec<String>,
    /// `rows[step][avail_row]` — each row shared until patched.
    rows: Vec<Vec<Arc<[f64]>>>,
}

impl MaintainedTensor {
    /// Wraps a generated tensor for maintenance (rows are copied once;
    /// afterwards all sharing is via per-row `Arc`).
    pub fn from_tensor(tensor: &FeatureTensor) -> Self {
        let n_rows = tensor.avail_ids().len();
        MaintainedTensor {
            avail_ids: tensor.avail_ids().to_vec(),
            grid: tensor.grid().to_vec(),
            names: tensor.names().to_vec(),
            rows: (0..tensor.n_steps())
                .map(|s| (0..n_rows).map(|r| Arc::from(tensor.slice(s).row(r))).collect())
                .collect(),
        }
    }

    /// Avail order of the rows.
    pub fn avail_ids(&self) -> &[AvailId] {
        &self.avail_ids
    }

    /// The logical-time grid.
    pub fn grid(&self) -> &[f64] {
        &self.grid
    }

    /// Feature (column) names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The feature row of avail row `row` at grid index `step`.
    pub fn row(&self, step: usize, row: usize) -> &[f64] {
        &self.rows[step][row]
    }

    /// Number of grid points.
    pub fn n_steps(&self) -> usize {
        self.grid.len()
    }

    /// Row index of an avail, if present.
    pub fn row_of(&self, id: AvailId) -> Option<usize> {
        self.avail_ids.iter().position(|a| *a == id)
    }

    /// Re-sweeps only `avails` against `dataset` and swaps their rows in
    /// every step, copy-on-write. Returns the number of avails patched;
    /// ids absent from the tensor are ignored (a changed avail universe
    /// needs a full regeneration, not a patch). Bit-identity: each patched
    /// row carries exactly the bits a full `generate_tensor_threaded` over
    /// `dataset` would produce, at every thread count.
    pub fn patch_avails(
        &mut self,
        engine: &FeatureEngine,
        dataset: &Dataset,
        avails: &[AvailId],
        threads: usize,
    ) -> usize {
        // Dedup while preserving tensor row order (determinism and one
        // sweep row per avail).
        let mut targets: Vec<(usize, AvailId)> =
            avails.iter().filter_map(|&id| self.row_of(id).map(|row| (row, id))).collect();
        targets.sort_unstable();
        targets.dedup();
        if targets.is_empty() {
            return 0;
        }
        let ids: Vec<AvailId> = targets.iter().map(|&(_, id)| id).collect();
        // Sweep only the touched avails' rows: per-avail feature rows are
        // independent of every other avail (module doc), so restricting
        // the dataset to the selection is bit-identical while costing
        // O(rows of touched avails) instead of an O(|dataset|) projection
        // scan per patch. Ids the dataset does not hold are dropped here
        // too, matching the absent-from-tensor rule above.
        let selected = dataset.select_avails(&ids);
        let sub = engine.generate_tensor_threaded(&selected, &ids, &self.grid, threads);
        for (step, step_rows) in self.rows.iter_mut().enumerate() {
            for (i, &(row, _)) in targets.iter().enumerate() {
                step_rows[row] = Arc::from(sub.slice(step).row(i));
            }
        }
        targets.len()
    }

    /// Materializes a standalone [`FeatureTensor`] (gathers the rows into
    /// contiguous per-step matrices).
    pub fn to_tensor(&self) -> FeatureTensor {
        let n_features = self.names.len();
        let slices: Vec<DenseMatrix> = self
            .rows
            .iter()
            .map(|step_rows| {
                let mut data = Vec::with_capacity(step_rows.len() * n_features);
                for row in step_rows {
                    data.extend_from_slice(row);
                }
                DenseMatrix::from_rows(data, step_rows.len(), n_features)
            })
            .collect();
        FeatureTensor::new(self.avail_ids.clone(), self.grid.clone(), self.names.clone(), slices)
    }
}
