//! The avail × feature × logical-time tensor of Section 3.1.
//!
//! "Across the entire avail set, the resulting features can be thought of
//! as a tensor across the avail, feature set, and logical time dimensions.
//! Each model is trained on a slice of that tensor generated at discrete
//! logical times t*." — this type *is* that tensor, one dense matrix per
//! grid point.

use domd_data::AvailId;
use domd_ml::DenseMatrix;

/// A materialized feature tensor.
#[derive(Debug, Clone)]
pub struct FeatureTensor {
    avail_ids: Vec<AvailId>,
    grid: Vec<f64>,
    names: Vec<String>,
    /// `slices[s]` is the (n_avails × n_features) matrix at grid point `s`.
    slices: Vec<DenseMatrix>,
}

impl FeatureTensor {
    /// Assembles a tensor; every slice must be (n_avails × names.len()).
    pub fn new(
        avail_ids: Vec<AvailId>,
        grid: Vec<f64>,
        names: Vec<String>,
        slices: Vec<DenseMatrix>,
    ) -> Self {
        assert_eq!(grid.len(), slices.len(), "one slice per grid point");
        for s in &slices {
            assert_eq!(s.n_rows(), avail_ids.len());
            assert_eq!(s.n_cols(), names.len());
        }
        FeatureTensor { avail_ids, grid, names, slices }
    }

    /// Avail order of the rows.
    pub fn avail_ids(&self) -> &[AvailId] {
        &self.avail_ids
    }

    /// The logical-time grid.
    pub fn grid(&self) -> &[f64] {
        &self.grid
    }

    /// Feature (column) names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The tensor slice at grid index `step`.
    pub fn slice(&self, step: usize) -> &DenseMatrix {
        &self.slices[step]
    }

    /// Number of grid points.
    pub fn n_steps(&self) -> usize {
        self.grid.len()
    }

    /// Row index of an avail, if present.
    pub fn row_of(&self, id: AvailId) -> Option<usize> {
        self.avail_ids.iter().position(|a| *a == id)
    }

    /// Restricts the tensor to a subset of avails (rows), preserving order
    /// of `ids`. Panics if an id is absent.
    pub fn select_avails(&self, ids: &[AvailId]) -> FeatureTensor {
        let rows: Vec<usize> = ids
            .iter()
            // domd-lint: allow(no-panic) — documented panic contract: callers pass ids of this same tensor
            .map(|id| self.row_of(*id).unwrap_or_else(|| panic!("avail {id} not in tensor")))
            .collect();
        FeatureTensor {
            avail_ids: ids.to_vec(),
            grid: self.grid.clone(),
            names: self.names.clone(),
            slices: self.slices.iter().map(|s| s.select_rows(&rows)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> FeatureTensor {
        let ids = vec![AvailId(1), AvailId(2)];
        let grid = vec![0.0, 50.0];
        let names = vec!["f0".to_string(), "f1".to_string(), "f2".to_string()];
        let s0 = DenseMatrix::from_rows(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let s1 = DenseMatrix::from_rows(vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0], 2, 3);
        FeatureTensor::new(ids, grid, names, vec![s0, s1])
    }

    #[test]
    fn accessors() {
        let t = toy();
        assert_eq!(t.n_steps(), 2);
        assert_eq!(t.row_of(AvailId(2)), Some(1));
        assert_eq!(t.row_of(AvailId(99)), None);
        assert_eq!(t.slice(1).get(0, 2), 30.0);
    }

    #[test]
    fn select_avails_reorders_rows() {
        let t = toy().select_avails(&[AvailId(2), AvailId(1)]);
        assert_eq!(t.avail_ids(), &[AvailId(2), AvailId(1)]);
        assert_eq!(t.slice(0).row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(t.slice(0).row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "not in tensor")]
    fn select_missing_avail_panics() {
        toy().select_avails(&[AvailId(5)]);
    }

    #[test]
    #[should_panic(expected = "one slice per grid point")]
    fn shape_mismatch_panics() {
        let t = toy();
        FeatureTensor::new(
            t.avail_ids().to_vec(),
            vec![0.0],
            t.names().to_vec(),
            vec![t.slice(0).clone(), t.slice(1).clone()],
        );
    }
}
