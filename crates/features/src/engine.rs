//! The feature generation engine: executes the transformation 𝒯 at every
//! logical-time grid point, producing the feature tensor.
//!
//! The engine rides the incremental Status Query machinery of
//! `domd-index`: one dual-AVL index over the logical projection of the
//! requested avails' RCCs, one incremental sweep over the grid, with groups
//! = (avail × RCC type × SWLIN first digit) cells. At each grid point the
//! per-avail cells are rolled up across the type and SWLIN hierarchies and
//! the catalog's aggregations are applied — so generating all slices costs
//! one pass over the RCCs instead of `steps × |RCC|` work.

use crate::spec::{CatalogDepth, FeatureCatalog, FeatureSpec, StatusFilter, SwlinGroup, TypeFilter};
use crate::tensor::FeatureTensor;
use domd_data::dataset::Dataset;
use domd_data::rcc::RccType;
use domd_data::AvailId;
use domd_index::{
    project_dataset, sweep_incremental, Accum, AvlIndex, LogicalTimeIndex, RowColumns,
    StatStructure,
};
use domd_ml::DenseMatrix;

/// The sweep's group space: how per-avail cells map RCCs by type and
/// SWLIN prefix, sized by the catalog depth.
#[derive(Debug, Clone, Copy)]
struct CellSpace {
    depth: CatalogDepth,
}

impl CellSpace {
    fn cells_per_avail(self) -> usize {
        match self.depth {
            // 3 types x 10 first digits.
            CatalogDepth::Subsystem => 30,
            // 3 types x 100 two-digit prefixes.
            CatalogDepth::Module => 300,
        }
    }

    /// Dense cell offset of one RCC within its avail's block.
    fn cell_of(self, type_idx: usize, swlin: domd_data::Swlin) -> usize {
        match self.depth {
            CatalogDepth::Subsystem => type_idx * 10 + swlin.digit(1) as usize,
            CatalogDepth::Module => {
                type_idx * 100 + swlin.digit(1) as usize * 10 + swlin.digit(2) as usize
            }
        }
    }
}

/// Rolled-up accumulator tables for one avail at one timestamp:
/// `lvl1[type 0..=3][digit 0..=10]` where type 0 = ALL and digit 10 = ALL;
/// `lvl2` (module depth only) holds the `[type 0..=3][d1][d2]` cells flat.
struct Rollup {
    active: [[Accum; 11]; 4],
    settled: [[Accum; 11]; 4],
    created: [[Accum; 11]; 4],
    /// `[status 0..3][(type * 10 + d1) * 10 + d2]`, present at Module depth.
    lvl2: Option<Vec<[Accum; 3]>>,
}

impl Rollup {
    fn from_cells(space: CellSpace, st: &StatStructure, base: usize) -> Self {
        let mut r = Rollup {
            active: [[Accum::default(); 11]; 4],
            settled: [[Accum::default(); 11]; 4],
            created: [[Accum::default(); 11]; 4],
            lvl2: match space.depth {
                CatalogDepth::Subsystem => None,
                CatalogDepth::Module => Some(vec![[Accum::default(); 3]; 400]),
            },
        };
        match space.depth {
            CatalogDepth::Subsystem => {
                for t in 0..3 {
                    for d in 0..10 {
                        let cell = base + t * 10 + d;
                        fill(&mut r.active, t, d, &st.active[cell]);
                        fill(&mut r.settled, t, d, &st.settled[cell]);
                        fill(&mut r.created, t, d, &st.created[cell]);
                    }
                }
            }
            CatalogDepth::Module => {
                // domd-lint: allow(no-panic) — the Module-depth constructor above always allocates lvl2
                let lvl2 = r.lvl2.as_mut().expect("just built");
                for t in 0..3 {
                    for d1 in 0..10 {
                        for d2 in 0..10 {
                            let cell = base + t * 100 + d1 * 10 + d2;
                            fill(&mut r.active, t, d1, &st.active[cell]);
                            fill(&mut r.settled, t, d1, &st.settled[cell]);
                            fill(&mut r.created, t, d1, &st.created[cell]);
                            for (status, table) in
                                [&st.active, &st.settled, &st.created].into_iter().enumerate()
                            {
                                // Per-type and ALL-type module cells.
                                lvl2[((t + 1) * 10 + d1) * 10 + d2][status].merge(&table[cell]);
                                lvl2[d1 * 10 + d2][status].merge(&table[cell]);
                            }
                        }
                    }
                }
            }
        }
        r
    }

    fn table(&self, status: StatusFilter) -> &[[Accum; 11]; 4] {
        match status {
            StatusFilter::Active => &self.active,
            StatusFilter::Settled => &self.settled,
            StatusFilter::Created => &self.created,
        }
    }

    fn cell(&self, status: StatusFilter, tf: TypeFilter, sg: SwlinGroup) -> &Accum {
        let t = type_slot(tf);
        match sg {
            SwlinGroup::All => &self.table(status)[t][10],
            SwlinGroup::FirstDigit(d) => &self.table(status)[t][d as usize],
            SwlinGroup::TwoDigit(a, b) => {
                let lvl2 = self
                    .lvl2
                    .as_ref()
                    // domd-lint: allow(no-panic) — documented contract: two-digit specs exist only in Module-depth catalogs
                    .expect("two-digit features require a Module-depth catalog");
                let sidx = match status {
                    StatusFilter::Active => 0,
                    StatusFilter::Settled => 1,
                    StatusFilter::Created => 2,
                };
                &lvl2[(t * 10 + a as usize) * 10 + b as usize][sidx]
            }
        }
    }
}

fn fill(table: &mut [[Accum; 11]; 4], t: usize, d: usize, acc: &Accum) {
    // Base cell (types are offset by one: slot 0 is ALL).
    table[t + 1][d].merge(acc);
    // Hierarchy rollups.
    table[0][d].merge(acc);
    table[t + 1][10].merge(acc);
    table[0][10].merge(acc);
}

fn type_slot(tf: TypeFilter) -> usize {
    match tf {
        TypeFilter::All => 0,
        TypeFilter::One(t) => t.index() + 1,
    }
}

/// Evaluates one catalog spec against a rollup at logical time `t_star`.
fn eval_spec(spec: &FeatureSpec, r: &Rollup, t_star: f64) -> f64 {
    match *spec {
        FeatureSpec::GroupAgg { type_filter, swlin, status, agg } => {
            agg.apply(r.cell(status, type_filter, swlin))
        }
        FeatureSpec::CreationRate { type_filter, swlin } => {
            let created = r.cell(StatusFilter::Created, type_filter, swlin).count;
            created / t_star.max(1.0)
        }
        FeatureSpec::ActiveRatio { swlin } => {
            let active = r.cell(StatusFilter::Active, TypeFilter::All, swlin).count;
            let created = r.cell(StatusFilter::Created, TypeFilter::All, swlin).count;
            active / created.max(1.0)
        }
    }
}

/// Feature generation engine over a fixed catalog.
#[derive(Debug, Clone)]
pub struct FeatureEngine {
    catalog: FeatureCatalog,
}

impl Default for FeatureEngine {
    fn default() -> Self {
        FeatureEngine::new(FeatureCatalog::standard())
    }
}

impl FeatureEngine {
    /// An engine over the given catalog.
    pub fn new(catalog: FeatureCatalog) -> Self {
        FeatureEngine { catalog }
    }

    /// The catalog in use.
    pub fn catalog(&self) -> &FeatureCatalog {
        &self.catalog
    }

    /// Generates the full tensor for `avail_ids` over the logical grid via
    /// incremental sweeps (the fast path used in training), sharded across
    /// the process-wide worker cap ([`domd_runtime::threads`]).
    pub fn generate_tensor(
        &self,
        dataset: &Dataset,
        avail_ids: &[AvailId],
        grid: &[f64],
    ) -> FeatureTensor {
        self.generate_tensor_threaded(dataset, avail_ids, grid, domd_runtime::threads())
    }

    /// As [`FeatureEngine::generate_tensor`] with an explicit worker cap.
    ///
    /// The avails are partitioned into contiguous shards, each shard runs
    /// its own dual-AVL incremental sweep, and the per-step shard matrices
    /// are merged in shard order. Because every group cell belongs to
    /// exactly one avail and the AVL index visits rows in `(key, id)` order
    /// regardless of which rows it holds, each cell sees the identical
    /// accumulation sequence as in the single full sweep — the tensor is
    /// bit-identical for every thread count.
    pub fn generate_tensor_threaded(
        &self,
        dataset: &Dataset,
        avail_ids: &[AvailId],
        grid: &[f64],
        threads: usize,
    ) -> FeatureTensor {
        let n_avails = avail_ids.len();
        let n_features = self.catalog.len();
        let space = CellSpace { depth: self.catalog.depth() };
        let cells = space.cells_per_avail();
        let projected = project_dataset(dataset);
        let shards = domd_runtime::chunk_ranges(n_avails, threads.max(1));
        // Rows of the selected avails only, bucketed by shard; the group of
        // a row is shard-local: (avail pos within shard) x type x prefix.
        // Rows of different shards never meet in one sweep, so the single
        // shared `groups` column can hold shard-local values.
        let mut avail_pos =
            domd_data::hash::FxHashMap::with_capacity_and_hasher(n_avails, Default::default());
        for (i, id) in avail_ids.iter().enumerate() {
            avail_pos.insert(*id, i);
        }
        let shard_of_pos: Vec<usize> = {
            let mut v = vec![0usize; n_avails];
            for (s, range) in shards.iter().enumerate() {
                for slot in &mut v[range.clone()] {
                    *slot = s;
                }
            }
            v
        };
        let rccs = dataset.rccs();
        let mut selected_by_shard = vec![Vec::new(); shards.len()];
        let mut groups = vec![0usize; rccs.len()];
        for (i, lr) in projected.iter().enumerate() {
            if let Some(&pos) = avail_pos.get(&lr.avail) {
                let r = &rccs[i];
                let s = shard_of_pos[pos];
                let local = pos - shards[s].start;
                groups[i] = local * cells + space.cell_of(rcc_type_slot(r.rcc_type), r.swlin);
                selected_by_shard[s].push(*lr);
            }
        }
        let amounts: Vec<f64> = rccs.iter().map(|r| r.amount).collect();
        let durations: Vec<f64> = rccs.iter().map(|r| f64::from(r.duration_days())).collect();
        let cols = RowColumns { amounts: &amounts, durations: &durations, groups: &groups };

        // One independent index + sweep per shard, fanned over the pool.
        let shard_slices: Vec<Vec<DenseMatrix>> =
            domd_runtime::par_map(threads, &shards, |s, range| {
                let shard_avails = range.len();
                let index = AvlIndex::build(&selected_by_shard[s]);
                let mut slices: Vec<DenseMatrix> = Vec::with_capacity(grid.len());
                sweep_incremental(&index, cols, shard_avails * cells, grid, |_, t, st| {
                    let mut m = DenseMatrix::zeros(shard_avails, n_features);
                    for a in 0..shard_avails {
                        let rollup = Rollup::from_cells(space, st, a * cells);
                        let row = m.row_mut(a);
                        for (j, spec) in self.catalog.specs().iter().enumerate() {
                            row[j] = eval_spec(spec, &rollup, t);
                        }
                    }
                    slices.push(m);
                });
                slices
            });

        // Stitch each step's shard matrices back together in shard order,
        // restoring the original avail row order.
        let mut slices: Vec<DenseMatrix> =
            (0..grid.len()).map(|_| DenseMatrix::zeros(n_avails, n_features)).collect();
        for (shard, range) in shards.iter().enumerate() {
            for (step, shard_step) in shard_slices[shard].iter().enumerate() {
                let m = &mut slices[step];
                for (local, global) in range.clone().enumerate() {
                    m.row_mut(global).copy_from_slice(shard_step.row(local));
                }
            }
        }
        FeatureTensor::new(avail_ids.to_vec(), grid.to_vec(), self.catalog.names(), slices)
    }

    /// Features of a single avail at one logical time, computed directly
    /// from its RCC rows — the online path for DoMD queries on ongoing
    /// avails, where building a full index is overkill.
    pub fn features_for_avail_at(
        &self,
        dataset: &Dataset,
        avail: AvailId,
        t_star: f64,
    ) -> Vec<f64> {
        // domd-lint: allow(no-panic) — caller contract: the queried avail id comes from this dataset
        let a = dataset.avail(avail).expect("avail exists");
        let planned = a.planned_duration().max(1);
        let space = CellSpace { depth: self.catalog.depth() };
        let mut st = StatStructure::new(space.cells_per_avail());
        for r in dataset.rccs_of(avail) {
            let start = domd_data::logical_time(r.created, a.actual_start, planned);
            let end = domd_data::logical_time(r.settled, a.actual_start, planned);
            if start > t_star {
                continue;
            }
            let cell = space.cell_of(rcc_type_slot(r.rcc_type), r.swlin);
            let amt = r.amount;
            let dur = f64::from(r.duration_days());
            st.created[cell].add(amt, dur);
            if end <= t_star {
                st.settled[cell].add(amt, dur);
            } else {
                st.active[cell].add(amt, dur);
            }
        }
        let rollup = Rollup::from_cells(space, &st, 0);
        self.catalog.specs().iter().map(|s| eval_spec(s, &rollup, t_star)).collect()
    }
}

fn rcc_type_slot(t: RccType) -> usize {
    t.index()
}

#[cfg(test)]
mod tests {
    use super::*;
    use domd_data::{generate, GeneratorConfig};

    fn small() -> Dataset {
        generate(&GeneratorConfig { n_avails: 12, target_rccs: 900, scale: 1, seed: 17 })
    }

    fn grid() -> Vec<f64> {
        (0..=10).map(|i| i as f64 * 10.0).collect()
    }

    #[test]
    fn tensor_shape() {
        let ds = small();
        let ids: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
        let eng = FeatureEngine::default();
        let t = eng.generate_tensor(&ds, &ids, &grid());
        assert_eq!(t.n_steps(), 11);
        assert_eq!(t.slice(0).n_rows(), 12);
        assert_eq!(t.slice(0).n_cols(), 1490);
        assert_eq!(t.names().len(), 1490);
    }

    #[test]
    fn sweep_matches_single_avail_path() {
        let ds = small();
        let ids: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
        let eng = FeatureEngine::default();
        let tensor = eng.generate_tensor(&ds, &ids, &grid());
        for (step, &t) in grid().iter().enumerate() {
            for (row, id) in ids.iter().enumerate() {
                let online = eng.features_for_avail_at(&ds, *id, t);
                let offline = tensor.slice(step).row(row);
                for (j, (a, b)) in online.iter().zip(offline).enumerate() {
                    // Incremental add/sub of squared sums accumulates tiny
                    // floating-point drift: compare with relative tolerance.
                    assert!(
                        (a - b).abs() < 1e-6 * (1.0 + a.abs()),
                        "feature {} mismatch at t={t} avail {id}: {a} vs {b}",
                        tensor.names()[j]
                    );
                }
            }
        }
    }

    #[test]
    fn counts_monotone_in_time_for_created() {
        let ds = small();
        let ids: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
        let eng = FeatureEngine::default();
        let tensor = eng.generate_tensor(&ds, &ids, &grid());
        // ALLALL-COUNT_CRE is the total created count: must be monotone.
        let col = tensor
            .names()
            .iter()
            .position(|n| n == "ALLALL-COUNT_CRE")
            .expect("feature exists");
        for a in 0..ids.len() {
            let mut prev = -1.0;
            for s in 0..tensor.n_steps() {
                let v = tensor.slice(s).get(a, col);
                assert!(v >= prev, "created count decreased for avail {a}");
                prev = v;
            }
        }
    }

    #[test]
    fn created_count_at_end_close_to_rcc_count() {
        let ds = small();
        let ids: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
        let eng = FeatureEngine::default();
        // Generator allows creation up to 105% of planned duration.
        let t = eng.generate_tensor(&ds, &ids, &[110.0]);
        let col = t.names().iter().position(|n| n == "ALLALL-COUNT_CRE").unwrap();
        for (row, id) in ids.iter().enumerate() {
            let v = t.slice(0).get(row, col);
            assert_eq!(v as usize, ds.rccs_of(*id).len(), "avail {id}");
        }
    }

    #[test]
    fn all_features_finite() {
        let ds = small();
        let ids: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
        let eng = FeatureEngine::default();
        let t = eng.generate_tensor(&ds, &ids, &[0.0, 33.3, 100.0]);
        for s in 0..t.n_steps() {
            assert!(t.slice(s).as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn subset_of_avails_only_sees_their_rccs() {
        let ds = small();
        let all_ids: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
        let some = &all_ids[3..7];
        let eng = FeatureEngine::default();
        let t_all = eng.generate_tensor(&ds, &all_ids, &[50.0]);
        let t_sub = eng.generate_tensor(&ds, some, &[50.0]);
        for (i, id) in some.iter().enumerate() {
            let full_row = t_all.slice(0).row(t_all.row_of(*id).unwrap());
            assert_eq!(t_sub.slice(0).row(i), full_row, "avail {id}");
        }
    }

    #[test]
    fn active_ratio_bounded() {
        let ds = small();
        let ids: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
        let eng = FeatureEngine::default();
        let t = eng.generate_tensor(&ds, &ids, &grid());
        let cols: Vec<usize> = t
            .names()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.ends_with("ACTIVE_RATIO"))
            .map(|(j, _)| j)
            .collect();
        assert_eq!(cols.len(), 10);
        for s in 0..t.n_steps() {
            for a in 0..ids.len() {
                for &j in &cols {
                    let v = t.slice(s).get(a, j);
                    assert!((0.0..=1.0).contains(&v), "ratio {v}");
                }
            }
        }
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;
    use crate::spec::FeatureCatalog;
    use domd_data::{generate, GeneratorConfig};

    fn small() -> Dataset {
        generate(&GeneratorConfig { n_avails: 8, target_rccs: 700, scale: 1, seed: 29 })
    }

    #[test]
    fn extended_tensor_shape_and_consistency() {
        let ds = small();
        let ids: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
        let eng = FeatureEngine::new(FeatureCatalog::extended());
        let t = eng.generate_tensor(&ds, &ids, &[0.0, 50.0, 100.0]);
        assert_eq!(t.slice(0).n_cols(), 5810);
        // The standard 1490 columns are identical to the standard engine's.
        let std_eng = FeatureEngine::default();
        let t_std = std_eng.generate_tensor(&ds, &ids, &[0.0, 50.0, 100.0]);
        for s in 0..3 {
            for a in 0..ids.len() {
                let ext_row = t.slice(s).row(a);
                let std_row = t_std.slice(s).row(a);
                for j in 0..1490 {
                    assert!(
                        (ext_row[j] - std_row[j]).abs() < 1e-9 * (1.0 + std_row[j].abs()),
                        "col {} ({}) differs at step {s} avail {a}",
                        j,
                        t.names()[j]
                    );
                }
            }
        }
    }

    #[test]
    fn module_features_sum_to_subsystem_features() {
        let ds = small();
        let ids: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
        let eng = FeatureEngine::new(FeatureCatalog::extended());
        let t = eng.generate_tensor(&ds, &ids, &[60.0]);
        let names = t.names();
        let col = |n: &str| names.iter().position(|x| x == n).unwrap_or_else(|| panic!("{n}"));
        // Sum of G4{0..9}-COUNT_CRE equals G4-COUNT_CRE.
        let parent = col("G4-COUNT_CRE");
        let children: Vec<usize> = (0..10).map(|b| col(&format!("G4{b}-COUNT_CRE"))).collect();
        for a in 0..ids.len() {
            let total: f64 = children.iter().map(|&j| t.slice(0).get(a, j)).sum();
            assert!(
                (total - t.slice(0).get(a, parent)).abs() < 1e-9,
                "avail {a}: module counts {total} != subsystem {}",
                t.slice(0).get(a, parent)
            );
        }
    }

    #[test]
    fn extended_online_path_matches_sweep() {
        let ds = small();
        let ids: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
        let eng = FeatureEngine::new(FeatureCatalog::extended());
        let t = eng.generate_tensor(&ds, &ids, &[45.0]);
        for (row, id) in ids.iter().enumerate().take(3) {
            let online = eng.features_for_avail_at(&ds, *id, 45.0);
            let offline = t.slice(0).row(row);
            for (j, (a, b)) in online.iter().zip(offline).enumerate() {
                assert!(
                    (a - b).abs() < 1e-6 * (1.0 + a.abs()),
                    "feature {} mismatch: {a} vs {b}",
                    t.names()[j]
                );
            }
        }
    }
}
