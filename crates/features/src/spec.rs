//! The feature catalog: the enumeration of the transformation function 𝒯
//! over RCCs (Section 3.1).
//!
//! Features are defined per (RCC-type filter × SWLIN subsystem group ×
//! status × aggregation), mirroring the paper's examples like
//! `G1-AVG_SETTLED_AMT` ("average settled amount of Growth RCCs under
//! SWLIN first digit 1"). The catalog additionally carries creation-rate
//! and active-ratio trend features; the full enumeration is exactly the
//! **1490 RCC-dependent features** the paper's Section 5.2.1 reports:
//!
//! * 4 type filters × 10 SWLIN groups × 3 statuses × 12 aggregations = 1440
//! * 4 type filters × 10 SWLIN groups creation rates = 40
//! * 10 SWLIN-group active ratios = 10

use domd_data::rcc::RccType;

/// RCC-type restriction of a feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeFilter {
    /// Any type.
    All,
    /// One specific type.
    One(RccType),
}

impl TypeFilter {
    /// All four filters in catalog order.
    pub const ALL: [TypeFilter; 4] = [
        TypeFilter::All,
        TypeFilter::One(RccType::Growth),
        TypeFilter::One(RccType::NewWork),
        TypeFilter::One(RccType::NewGrowth),
    ];

    /// Short code for feature names.
    pub fn code(self) -> &'static str {
        match self {
            TypeFilter::All => "ALL",
            TypeFilter::One(t) => t.code(),
        }
    }
}

/// SWLIN subsystem restriction: the whole ship, one first digit (general
/// subsystem, Figure 1), or — in the extended catalog — a two-digit
/// module prefix one level deeper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwlinGroup {
    /// Whole ship.
    All,
    /// One first digit (real codes start at subsystem 1).
    FirstDigit(u8),
    /// A (subsystem, module) two-digit prefix: the next level of the
    /// Figure 1 hierarchy (`SWLIN_Level_no = 2` in the Figure 3 GROUP BY).
    TwoDigit(u8, u8),
}

impl SwlinGroup {
    /// The ten depth-1 groups in catalog order: ALL plus digits 1..=9.
    pub fn all() -> Vec<SwlinGroup> {
        let mut v = vec![SwlinGroup::All];
        v.extend((1..=9).map(SwlinGroup::FirstDigit));
        v
    }

    /// The 90 depth-2 groups: subsystems 1..=9 x modules 0..=9.
    pub fn two_digit() -> Vec<SwlinGroup> {
        (1..=9).flat_map(|a| (0..=9).map(move |b| SwlinGroup::TwoDigit(a, b))).collect()
    }

    /// Short code for feature names.
    pub fn code(self) -> String {
        match self {
            SwlinGroup::All => "ALL".to_string(),
            SwlinGroup::FirstDigit(d) => d.to_string(),
            SwlinGroup::TwoDigit(a, b) => format!("{a}{b}"),
        }
    }
}

/// RCC status the feature conditions on (Equations 3–5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatusFilter {
    /// In-flight at `t*`.
    Active,
    /// Concluded by `t*`.
    Settled,
    /// Raised by `t*` (active ∪ settled).
    Created,
}

impl StatusFilter {
    /// All three statuses in catalog order.
    pub const ALL: [StatusFilter; 3] =
        [StatusFilter::Active, StatusFilter::Settled, StatusFilter::Created];

    /// Short code for feature names.
    pub fn code(self) -> &'static str {
        match self {
            StatusFilter::Active => "ACT",
            StatusFilter::Settled => "SET",
            StatusFilter::Created => "CRE",
        }
    }
}

/// Aggregations computable from the incremental accumulators
/// (count / sum / sum-of-squares of amount and duration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregation {
    /// Row count.
    Count,
    /// Sum of settled amounts.
    SumAmt,
    /// Mean settled amount.
    AvgAmt,
    /// Std deviation of settled amounts.
    StdAmt,
    /// Root-mean-square settled amount.
    RmsAmt,
    /// sqrt(1 + sum of amounts) — concave spend scale.
    SqrtSumAmt,
    /// ln(1 + sum of amounts) — log spend scale.
    LogSumAmt,
    /// Amount per open day: sum_amount / (1 + sum_duration).
    AmtPerDay,
    /// Sum of durations (days).
    SumDur,
    /// Mean duration.
    AvgDur,
    /// Std deviation of durations.
    StdDur,
    /// sqrt(1 + sum of durations).
    SqrtSumDur,
}

impl Aggregation {
    /// The twelve aggregations in catalog order.
    pub const ALL: [Aggregation; 12] = [
        Aggregation::Count,
        Aggregation::SumAmt,
        Aggregation::AvgAmt,
        Aggregation::StdAmt,
        Aggregation::RmsAmt,
        Aggregation::SqrtSumAmt,
        Aggregation::LogSumAmt,
        Aggregation::AmtPerDay,
        Aggregation::SumDur,
        Aggregation::AvgDur,
        Aggregation::StdDur,
        Aggregation::SqrtSumDur,
    ];

    /// Short code for feature names.
    pub fn code(self) -> &'static str {
        match self {
            Aggregation::Count => "COUNT",
            Aggregation::SumAmt => "SUM_AMT",
            Aggregation::AvgAmt => "AVG_AMT",
            Aggregation::StdAmt => "STD_AMT",
            Aggregation::RmsAmt => "RMS_AMT",
            Aggregation::SqrtSumAmt => "SQRT_SUM_AMT",
            Aggregation::LogSumAmt => "LOG_SUM_AMT",
            Aggregation::AmtPerDay => "AMT_PER_DAY",
            Aggregation::SumDur => "SUM_DUR",
            Aggregation::AvgDur => "AVG_DUR",
            Aggregation::StdDur => "STD_DUR",
            Aggregation::SqrtSumDur => "SQRT_SUM_DUR",
        }
    }

    /// Applies the aggregation to an accumulator.
    pub fn apply(self, acc: &domd_index::Accum) -> f64 {
        match self {
            Aggregation::Count => acc.count,
            Aggregation::SumAmt => acc.sum_amount,
            Aggregation::AvgAmt => acc.avg_amount(),
            Aggregation::StdAmt => acc.std_amount(),
            Aggregation::RmsAmt => {
                if acc.count <= 0.0 {
                    0.0
                } else {
                    (acc.sum_amount_sq / acc.count).max(0.0).sqrt()
                }
            }
            Aggregation::SqrtSumAmt => (1.0 + acc.sum_amount.max(0.0)).sqrt(),
            Aggregation::LogSumAmt => (1.0 + acc.sum_amount.max(0.0)).ln(),
            Aggregation::AmtPerDay => acc.sum_amount / (1.0 + acc.sum_duration.max(0.0)),
            Aggregation::SumDur => acc.sum_duration,
            Aggregation::AvgDur => acc.avg_duration(),
            Aggregation::StdDur => acc.std_duration(),
            Aggregation::SqrtSumDur => (1.0 + acc.sum_duration.max(0.0)).sqrt(),
        }
    }
}

/// One RCC-dependent feature definition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureSpec {
    /// Aggregation over a (type, SWLIN group, status) cell.
    GroupAgg {
        /// Type restriction.
        type_filter: TypeFilter,
        /// Subsystem restriction.
        swlin: SwlinGroup,
        /// Status restriction.
        status: StatusFilter,
        /// Aggregation to apply.
        agg: Aggregation,
    },
    /// Created count per percent of elapsed logical time.
    CreationRate {
        /// Type restriction.
        type_filter: TypeFilter,
        /// Subsystem restriction.
        swlin: SwlinGroup,
    },
    /// Fraction of raised RCCs still active (any type) in a subsystem.
    ActiveRatio {
        /// Subsystem restriction.
        swlin: SwlinGroup,
    },
}

impl FeatureSpec {
    /// Paper-style feature name, e.g. `G1-AVG_AMT_SET`.
    pub fn name(&self) -> String {
        match self {
            FeatureSpec::GroupAgg { type_filter, swlin, status, agg } => {
                format!("{}{}-{}_{}", type_filter.code(), swlin.code(), agg.code(), status.code())
            }
            FeatureSpec::CreationRate { type_filter, swlin } => {
                format!("{}{}-CREATION_RATE", type_filter.code(), swlin.code())
            }
            FeatureSpec::ActiveRatio { swlin } => format!("ALL{}-ACTIVE_RATIO", swlin.code()),
        }
    }
}

/// How deep the catalog's SWLIN groups descend (drives the size of the
/// incremental sweep's cell space).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatalogDepth {
    /// First digit only (the paper's 1490-feature catalog).
    Subsystem,
    /// First and second digit (the extended 5810-feature catalog).
    Module,
}

/// The full ordered feature catalog.
#[derive(Debug, Clone)]
pub struct FeatureCatalog {
    specs: Vec<FeatureSpec>,
    depth: CatalogDepth,
}

impl FeatureCatalog {
    /// The paper's 1490-feature enumeration.
    pub fn standard() -> Self {
        let mut specs = Vec::with_capacity(1490);
        for type_filter in TypeFilter::ALL {
            for swlin in SwlinGroup::all() {
                for status in StatusFilter::ALL {
                    for agg in Aggregation::ALL {
                        specs.push(FeatureSpec::GroupAgg { type_filter, swlin, status, agg });
                    }
                }
            }
        }
        for type_filter in TypeFilter::ALL {
            for swlin in SwlinGroup::all() {
                specs.push(FeatureSpec::CreationRate { type_filter, swlin });
            }
        }
        for swlin in SwlinGroup::all() {
            specs.push(FeatureSpec::ActiveRatio { swlin });
        }
        debug_assert_eq!(specs.len(), 1490);
        FeatureCatalog { specs, depth: CatalogDepth::Subsystem }
    }

    /// The extended catalog: the standard 1490 features plus one level
    /// deeper — 90 (subsystem, module) prefixes x 4 type filters x 3
    /// statuses x 4 core aggregations = 4320 module-level features, 5810
    /// in total. Evaluated in `repro feature-depth`.
    pub fn extended() -> Self {
        let mut base = FeatureCatalog::standard();
        const MODULE_AGGS: [Aggregation; 4] = [
            Aggregation::Count,
            Aggregation::SumAmt,
            Aggregation::AvgAmt,
            Aggregation::SqrtSumAmt,
        ];
        for type_filter in TypeFilter::ALL {
            for swlin in SwlinGroup::two_digit() {
                for status in StatusFilter::ALL {
                    for agg in MODULE_AGGS {
                        base.specs.push(FeatureSpec::GroupAgg { type_filter, swlin, status, agg });
                    }
                }
            }
        }
        debug_assert_eq!(base.specs.len(), 5810);
        base.depth = CatalogDepth::Module;
        base
    }

    /// The SWLIN depth this catalog's groups require.
    pub fn depth(&self) -> CatalogDepth {
        self.depth
    }

    /// The ordered specs.
    pub fn specs(&self) -> &[FeatureSpec] {
        &self.specs
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All feature names, in column order.
    pub fn names(&self) -> Vec<String> {
        self.specs.iter().map(FeatureSpec::name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn standard_catalog_has_exactly_1490_features() {
        let c = FeatureCatalog::standard();
        assert_eq!(c.len(), 1490);
    }

    #[test]
    fn names_are_unique() {
        let c = FeatureCatalog::standard();
        let names = c.names();
        let set: HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len(), "duplicate feature names");
    }

    #[test]
    fn paper_style_name_shape() {
        let f = FeatureSpec::GroupAgg {
            type_filter: TypeFilter::One(RccType::Growth),
            swlin: SwlinGroup::FirstDigit(1),
            status: StatusFilter::Settled,
            agg: Aggregation::AvgAmt,
        };
        assert_eq!(f.name(), "G1-AVG_AMT_SET");
        let c = FeatureCatalog::standard();
        assert!(c.names().contains(&"G1-AVG_AMT_SET".to_string()));
    }

    #[test]
    fn aggregations_on_empty_accum_are_finite() {
        let acc = domd_index::Accum::default();
        for agg in Aggregation::ALL {
            let v = agg.apply(&acc);
            assert!(v.is_finite(), "{} on empty accum = {v}", agg.code());
        }
    }

    #[test]
    fn aggregations_match_manual_values() {
        let mut acc = domd_index::Accum::default();
        acc.add(100.0, 10.0);
        acc.add(300.0, 30.0);
        assert_eq!(Aggregation::Count.apply(&acc), 2.0);
        assert_eq!(Aggregation::SumAmt.apply(&acc), 400.0);
        assert_eq!(Aggregation::AvgAmt.apply(&acc), 200.0);
        assert!((Aggregation::StdAmt.apply(&acc) - 100.0).abs() < 1e-9);
        let rms = ((100.0f64.powi(2) + 300.0f64.powi(2)) / 2.0).sqrt();
        assert!((Aggregation::RmsAmt.apply(&acc) - rms).abs() < 1e-9);
        assert!((Aggregation::SqrtSumAmt.apply(&acc) - 401.0f64.sqrt()).abs() < 1e-12);
        assert!((Aggregation::LogSumAmt.apply(&acc) - 401.0f64.ln()).abs() < 1e-12);
        assert!((Aggregation::AmtPerDay.apply(&acc) - 400.0 / 41.0).abs() < 1e-12);
        assert_eq!(Aggregation::SumDur.apply(&acc), 40.0);
        assert_eq!(Aggregation::AvgDur.apply(&acc), 20.0);
        assert!((Aggregation::StdDur.apply(&acc) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn swlin_groups_are_ten() {
        assert_eq!(SwlinGroup::all().len(), 10);
        assert_eq!(SwlinGroup::All.code(), "ALL");
        assert_eq!(SwlinGroup::FirstDigit(7).code(), "7");
        assert_eq!(SwlinGroup::TwoDigit(4, 3).code(), "43");
        assert_eq!(SwlinGroup::two_digit().len(), 90);
    }

    #[test]
    fn extended_catalog_has_5810_unique_features() {
        let c = FeatureCatalog::extended();
        assert_eq!(c.len(), 5810);
        assert_eq!(c.depth(), CatalogDepth::Module);
        let names = c.names();
        let set: HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len(), "duplicate feature names");
        assert!(names.contains(&"NG43-SUM_AMT_CRE".to_string()));
        // The standard catalog is a strict prefix.
        let std = FeatureCatalog::standard();
        assert_eq!(&names[..1490], &std.names()[..]);
        assert_eq!(std.depth(), CatalogDepth::Subsystem);
    }
}
