//! The 8 static (time-invariant) features `F_i^S` of Section 5.2.1 —
//! ship class, RMC id, ship age, and the planning attributes known before
//! execution begins. These bypass feature selection: the paper applies
//! selection only to generated features, keeping statics in by default.

use domd_data::avail::Avail;
use domd_data::AvailId;
use domd_ml::DenseMatrix;

/// Names of the static feature columns, in order.
pub const STATIC_FEATURE_NAMES: [&str; 8] = [
    "SHIP_CLASS",
    "RMC_ID",
    "SHIP_AGE_YEARS",
    "PLANNED_DURATION",
    "PLAN_START_YEAR",
    "PLAN_START_MONTH",
    "PRIOR_AVAIL_COUNT",
    "PRIOR_AVG_DELAY",
];

/// Number of static features.
pub const N_STATIC: usize = STATIC_FEATURE_NAMES.len();

/// The static feature row of one avail.
pub fn static_row(a: &Avail) -> [f64; N_STATIC] {
    [
        f64::from(a.statics.ship_class),
        f64::from(a.statics.rmc_id),
        a.statics.ship_age_years,
        f64::from(a.planned_duration()),
        f64::from(a.plan_start.year()),
        f64::from(a.plan_start.month()),
        f64::from(a.statics.prior_avail_count),
        a.statics.prior_avg_delay,
    ]
}

/// Static feature matrix for the given avails (rows in `avail_ids` order).
pub fn static_matrix(dataset: &domd_data::Dataset, avail_ids: &[AvailId]) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(avail_ids.len(), N_STATIC);
    for (i, id) in avail_ids.iter().enumerate() {
        // domd-lint: allow(no-panic) — caller contract: row ids come from this dataset
        let a = dataset.avail(*id).expect("avail id present in dataset");
        m.row_mut(i).copy_from_slice(&static_row(a));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use domd_data::{generate, GeneratorConfig};

    #[test]
    fn matrix_matches_rows() {
        let ds = generate(&GeneratorConfig { n_avails: 8, target_rccs: 200, scale: 1, seed: 4 });
        let ids: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
        let m = static_matrix(&ds, &ids);
        assert_eq!(m.n_rows(), 8);
        assert_eq!(m.n_cols(), 8);
        for (i, a) in ds.avails().iter().enumerate() {
            assert_eq!(m.row(i), &static_row(a));
        }
    }

    #[test]
    fn row_values_are_sane() {
        let ds = generate(&GeneratorConfig { n_avails: 5, target_rccs: 100, scale: 1, seed: 5 });
        for a in ds.avails() {
            let r = static_row(a);
            assert!(r[2] >= 3.0 && r[2] <= 40.0, "ship age {}", r[2]);
            assert!(r[3] >= 120.0, "planned duration {}", r[3]);
            assert!(r[4] >= 2015.0 && r[4] <= 2024.0, "plan year {}", r[4]);
            assert!((1.0..=12.0).contains(&r[5]), "plan month {}", r[5]);
        }
    }

    #[test]
    fn names_count_matches() {
        assert_eq!(STATIC_FEATURE_NAMES.len(), N_STATIC);
    }
}
