//! # domd-data
//!
//! Data substrate for the DoMD (Days of Maintenance Delay) estimation
//! framework — the schema and synthetic-data layer of the EDBT 2025 paper
//! *"A Computational Framework for Estimating Days of Maintenance Delay of
//! Naval Ships"*.
//!
//! The crate provides:
//!
//! * [`date`] — dependency-free civil-date arithmetic (delay is day
//!   arithmetic on planned vs. actual durations, Section 2);
//! * [`avail`] — the availability table schema with the paper's
//!   duration-based delay definition;
//! * [`rcc`] — Request-for-Contract-Change rows with G/NW/NG types and
//!   hierarchical 8-digit SWLIN codes, plus the active/settled/created
//!   status predicate of Equations 3–6;
//! * [`logical_time`] — Equation 1's percent-of-planned-duration timeline
//!   and its discretization into model windows;
//! * [`dataset`] — the two-table NMD layout, Table 5 statistics, Figure 2
//!   histograms, and the train/validation/test protocol of Section 5.2.1;
//! * [`generator`] — a seeded synthetic NMD (the real data is CUI and not
//!   releasable) with an x-fold RCC scaling mode for the scalability study.

#![deny(unsafe_code)]
pub mod avail;
pub mod csv;
pub mod dataset;
pub mod date;
pub mod distributions;
pub mod fault;
pub mod generator;
pub mod hash;
pub mod logical_time;
pub mod obfuscate;
pub mod quarantine;
pub mod rcc;
pub mod validate;

pub use avail::{Avail, AvailId, AvailStatus, ShipId, StaticAttrs};
pub use dataset::{Dataset, Split, Stats};
pub use date::Date;
pub use fault::{corrupt_bytes, corrupt_text, FaultKind, StorageFault};
pub use generator::{censor_ongoing, generate, generate_with_truth, GeneratorConfig};
pub use logical_time::{logical_time, physical_time, LogicalTime, TimeGrid};
pub use obfuscate::{obfuscate, ObfuscationKey};
pub use quarantine::{read_dataset_lenient, QuarantineReport, QuarantinedRow};
pub use rcc::{status_at, Rcc, RccId, RccStatus, RccType, Swlin};
pub use validate::{validate, Finding, Severity, ValidationReport};
