//! Dataset obfuscation.
//!
//! The paper's pipeline "uses obfuscated data for training and then
//! retrains on raw data in the Navy environment without human
//! intervention" (Abstract): the NMD contains Controlled Unclassified
//! Information, so everything that leaves the enclave is transformed.
//! This module implements a keyed, deterministic obfuscation that removes
//! identifying content while preserving every relationship the pipeline
//! models — the property that makes train-outside / retrain-inside sound:
//!
//! * avail / ship / RCC identifiers are permuted (keyed Feistel-style);
//! * all dates shift by one global offset (durations, logical times, and
//!   chronological order are untouched — delay is duration arithmetic);
//! * dollar amounts scale by one global positive factor (every aggregate
//!   feature scales linearly; correlations, ranks, tree splits, and MI
//!   bins are invariant);
//! * SWLIN codes are digit-substituted per hierarchy level with a keyed
//!   permutation of 0–9, so the tree structure (which codes share a
//!   prefix) is exactly preserved while the real compartment numbering is
//!   hidden;
//! * static attributes keep their joint distribution (class/RMC labels are
//!   permuted consistently).

use crate::avail::{Avail, AvailId, ShipId};
use crate::dataset::Dataset;
use crate::rcc::{Rcc, RccId, Swlin};

/// Obfuscation parameters. The same key always produces the same
/// transformation, so obfuscated artifacts remain joinable across exports.
#[derive(Debug, Clone, Copy)]
pub struct ObfuscationKey {
    /// Master key driving every derived permutation.
    pub key: u64,
    /// Days added to every date (derived from the key when built via
    /// [`ObfuscationKey::new`]).
    pub date_shift: i32,
    /// Multiplier applied to every dollar amount (positive).
    pub amount_scale: f64,
}

impl ObfuscationKey {
    /// Derives shift and scale from the master key.
    pub fn new(key: u64) -> Self {
        // splitmix64 steps give independent sub-keys.
        let a = splitmix(key);
        let b = splitmix(a);
        ObfuscationKey {
            key,
            // Shift within +/- ~15 years, never zero.
            date_shift: ((a % 11_000) as i32) - 5_500 + 17,
            // Scale in [0.5, 2.0).
            amount_scale: 0.5 + 1.5 * (b % 10_000) as f64 / 10_000.0,
        }
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Keyed permutation of a 32-bit id (4-round Feistel over 16-bit halves):
/// bijective, so distinct ids stay distinct.
fn permute_id(id: u32, key: u64, domain: u64) -> u32 {
    let mut l = (id >> 16) as u16;
    let mut r = (id & 0xFFFF) as u16;
    for round in 0..4u64 {
        let f = splitmix(key ^ domain.wrapping_mul(0xABCD) ^ (u64::from(r) << 8) ^ round) as u16;
        let nl = r;
        r = l ^ f;
        l = nl;
    }
    (u32::from(l) << 16) | u32::from(r)
}

/// Keyed permutation of the digits 0–9 for one SWLIN level.
fn digit_permutation(key: u64, level: u32) -> [u8; 10] {
    let mut digits: [u8; 10] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9];
    // Fisher-Yates driven by splitmix.
    let mut state = splitmix(key ^ (u64::from(level) << 32) ^ 0x5711);
    for i in (1..10).rev() {
        state = splitmix(state);
        let j = (state % (i as u64 + 1)) as usize;
        digits.swap(i, j);
    }
    digits
}

/// Substitutes every SWLIN digit with its level-specific permutation:
/// prefix-sharing (the hierarchy of Figure 1) is preserved exactly.
fn obfuscate_swlin(w: Swlin, key: u64) -> Swlin {
    let mut packed = 0u32;
    for level in 1..=8u32 {
        let perm = digit_permutation(key, level);
        let d = w.digit(level);
        packed = packed * 10 + u32::from(perm[d as usize]);
    }
    // domd-lint: allow(no-panic) — digit-wise substitution of a valid SWLIN yields 8 digits (level-1 permutations fix 0 out and 1-9 in)
    Swlin::from_packed(packed).expect("digit substitution stays 8 digits")
}

/// Obfuscates a dataset under `key`. Deterministic: equal inputs and keys
/// give equal outputs.
pub fn obfuscate(dataset: &Dataset, key: &ObfuscationKey) -> Dataset {
    assert!(key.amount_scale > 0.0, "amount scale must be positive");
    let class_perm = digit_permutation(key.key, 100);
    let rmc_perm = digit_permutation(key.key, 101);

    let avails: Vec<Avail> = dataset
        .avails()
        .iter()
        .map(|a| {
            let mut o = a.clone();
            o.id = AvailId(permute_id(a.id.0, key.key, 1));
            o.ship = ShipId(permute_id(a.ship.0, key.key, 2));
            o.plan_start = a.plan_start + key.date_shift;
            o.plan_end = a.plan_end + key.date_shift;
            o.actual_start = a.actual_start + key.date_shift;
            o.actual_end = a.actual_end.map(|d| d + key.date_shift);
            o.statics.ship_class = class_perm[(a.statics.ship_class as usize) % 10];
            o.statics.rmc_id = rmc_perm[(a.statics.rmc_id as usize) % 10];
            o
        })
        .collect();

    let rccs: Vec<Rcc> = dataset
        .rccs()
        .iter()
        .map(|r| Rcc {
            id: RccId(permute_id(r.id.0, key.key, 3)),
            avail: AvailId(permute_id(r.avail.0, key.key, 1)),
            rcc_type: r.rcc_type,
            swlin: obfuscate_swlin(r.swlin, key.key),
            created: r.created + key.date_shift,
            settled: r.settled + key.date_shift,
            amount: r.amount * key.amount_scale,
        })
        .collect();

    Dataset::new(avails, rccs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use std::collections::{HashMap, HashSet};

    fn data() -> Dataset {
        generate(&GeneratorConfig { n_avails: 30, target_rccs: 2500, scale: 1, seed: 61 })
    }

    #[test]
    fn deterministic_and_key_sensitive() {
        let ds = data();
        let k = ObfuscationKey::new(42);
        let a = obfuscate(&ds, &k);
        let b = obfuscate(&ds, &k);
        assert_eq!(a.avails(), b.avails());
        assert_eq!(a.rccs(), b.rccs());
        let c = obfuscate(&ds, &ObfuscationKey::new(43));
        assert_ne!(a.avails(), c.avails());
    }

    #[test]
    fn ids_permuted_bijectively_and_joins_preserved() {
        let ds = data();
        let ob = obfuscate(&ds, &ObfuscationKey::new(7));
        // Distinct ids stay distinct.
        let ids: HashSet<u32> = ob.avails().iter().map(|a| a.id.0).collect();
        assert_eq!(ids.len(), ds.avails().len());
        // Every avail keeps exactly its RCCs (per-avail counts match under
        // the id mapping).
        let mapping: HashMap<u32, u32> = ds
            .avails()
            .iter()
            .zip(ob.avails())
            .map(|(orig, o)| (orig.id.0, o.id.0))
            .collect();
        for a in ds.avails() {
            let mapped = crate::avail::AvailId(mapping[&a.id.0]);
            assert_eq!(ob.rccs_of(mapped).len(), ds.rccs_of(a.id).len(), "avail {}", a.id);
        }
    }

    /// Obfuscated RCCs re-sorted by the permuted ids: look each one up by
    /// its mapped id instead of relying on table order.
    fn rcc_by_id(ds: &Dataset) -> HashMap<u32, Rcc> {
        ds.rccs().iter().map(|r| (r.id.0, r.clone())).collect()
    }

    #[test]
    fn delays_and_durations_invariant() {
        let ds = data();
        let key = ObfuscationKey::new(99);
        let ob = obfuscate(&ds, &key);
        for (orig, o) in ds.avails().iter().zip(ob.avails()) {
            assert_eq!(orig.delay(), o.delay());
            assert_eq!(orig.planned_duration(), o.planned_duration());
        }
        let by_id = rcc_by_id(&ob);
        for orig in ds.rccs() {
            let o = &by_id[&permute_id(orig.id.0, key.key, 3)];
            assert_eq!(orig.duration_days(), o.duration_days());
        }
    }

    #[test]
    fn swlin_hierarchy_preserved() {
        let ds = data();
        let key = ObfuscationKey::new(5);
        let ob = obfuscate(&ds, &key);
        let by_id = rcc_by_id(&ob);
        for orig in ds.rccs() {
            let o = &by_id[&permute_id(orig.id.0, key.key, 3)];
            assert_ne!(orig.swlin, o.swlin, "codes must change"); // overwhelmingly likely
        }
        // Prefix-sharing is exactly preserved at every depth.
        for depth in 1..=8u32 {
            for pair in ds.rccs().windows(2) {
                let same_orig = pair[0].swlin.prefix(depth) == pair[1].swlin.prefix(depth);
                let o0 = obfuscate_swlin(pair[0].swlin, key.key);
                let o1 = obfuscate_swlin(pair[1].swlin, key.key);
                assert_eq!(same_orig, o0.prefix(depth) == o1.prefix(depth), "depth {depth}");
            }
        }
    }

    #[test]
    fn amounts_scale_uniformly() {
        let ds = data();
        let key = ObfuscationKey::new(11);
        let ob = obfuscate(&ds, &key);
        let by_id = rcc_by_id(&ob);
        for orig in ds.rccs() {
            let o = &by_id[&permute_id(orig.id.0, key.key, 3)];
            assert!((o.amount / orig.amount - key.amount_scale).abs() < 1e-12);
        }
    }

    #[test]
    fn statics_relabelled_consistently() {
        let ds = data();
        let ob = obfuscate(&ds, &ObfuscationKey::new(3));
        let mut class_map: HashMap<u8, u8> = HashMap::new();
        for (orig, o) in ds.avails().iter().zip(ob.avails()) {
            let prev = class_map.insert(orig.statics.ship_class, o.statics.ship_class);
            if let Some(p) = prev {
                assert_eq!(p, o.statics.ship_class, "class relabelling must be a function");
            }
            // Continuous statics untouched.
            assert_eq!(orig.statics.ship_age_years, o.statics.ship_age_years);
            assert_eq!(orig.statics.prior_avg_delay, o.statics.prior_avg_delay);
        }
    }
}
