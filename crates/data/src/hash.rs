//! A fast, non-cryptographic hasher for the hot ingest paths.
//!
//! Lenient ingest and semantic validation hash every RCC row (id dedup,
//! avail-reference checks) — with the standard library's SipHash that
//! hashing alone costs a measurable slice of a full-extract parse. This
//! is the Fx multiply-rotate scheme (as used by rustc) implemented
//! locally so the workspace stays dependency-free; it is *not* DoS
//! resistant, which is fine for ids we parse ourselves.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher over machine words.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth's 64-bit multiplicative-hash constant.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_ids_hash_distinctly() {
        let mut set = FxHashSet::default();
        for i in 0u32..10_000 {
            assert!(set.insert(i));
        }
        assert_eq!(set.len(), 10_000);
        assert!(set.contains(&42));
        assert!(!set.contains(&10_000));
    }

    #[test]
    fn map_round_trips() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(7, "seven");
        map.insert(7, "seven again");
        assert_eq!(map.len(), 1);
        assert_eq!(map.get(&7), Some(&"seven again"));
    }

    #[test]
    fn hash_depends_on_input() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let build: BuildHasherDefault<FxHasher> = Default::default();
        let a = build.hash_one(1u32);
        let b = build.hash_one(2u32);
        assert_ne!(a, b);
    }
}
