//! Minimal sampling helpers (normal, log-normal, gamma, beta, categorical)
//! built on `rand`'s uniform primitives.
//!
//! The synthetic NMD generator needs a handful of classic distributions; to
//! stay within the approved dependency set we implement them here instead of
//! pulling in `rand_distr`. Algorithms: Box–Muller for the normal and
//! Marsaglia–Tsang for the gamma (with the standard `alpha < 1` boost), beta
//! as a gamma ratio.

use rand::Rng;

/// Standard normal sample via Box–Muller.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    // Avoid ln(0) by sampling the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std * z
}

/// Log-normal sample parameterized by the *underlying* normal's mean/std.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Gamma(shape, scale) sample via Marsaglia–Tsang (2000).
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(shape > 0.0 && scale > 0.0, "gamma parameters must be positive");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma(rng, shape + 1.0, scale) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal(rng, 0.0, 1.0);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v * scale;
        }
    }
}

/// Beta(a, b) sample as a gamma ratio.
pub fn beta<R: Rng + ?Sized>(rng: &mut R, a: f64, b: f64) -> f64 {
    let x = gamma(rng, a, 1.0);
    let y = gamma(rng, b, 1.0);
    x / (x + y)
}

/// Draws an index from unnormalized non-negative `weights`.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "categorical weights must have positive sum");
    let mut u = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(12345)
    }

    fn mean_and_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let m = xs.iter().sum::<f64>() / n;
        let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n;
        (m, v)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let (m, v) = mean_and_var(&xs);
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
        assert!((v - 4.0).abs() < 0.15, "var {v}");
    }

    #[test]
    fn gamma_moments() {
        let mut r = rng();
        // Gamma(3, 2): mean 6, var 12.
        let xs: Vec<f64> = (0..50_000).map(|_| gamma(&mut r, 3.0, 2.0)).collect();
        let (m, v) = mean_and_var(&xs);
        assert!((m - 6.0).abs() < 0.1, "mean {m}");
        assert!((v - 12.0).abs() < 0.6, "var {v}");
        assert!(xs.iter().all(|x| *x > 0.0));
    }

    #[test]
    fn gamma_shape_below_one() {
        let mut r = rng();
        // Gamma(0.5, 1): mean 0.5.
        let xs: Vec<f64> = (0..50_000).map(|_| gamma(&mut r, 0.5, 1.0)).collect();
        let (m, _) = mean_and_var(&xs);
        assert!((m - 0.5).abs() < 0.02, "mean {m}");
        assert!(xs.iter().all(|x| *x >= 0.0));
    }

    #[test]
    fn beta_bounded_and_centered() {
        let mut r = rng();
        // Beta(2, 2): mean 0.5, support (0, 1).
        let xs: Vec<f64> = (0..50_000).map(|_| beta(&mut r, 2.0, 2.0)).collect();
        let (m, _) = mean_and_var(&xs);
        assert!((m - 0.5).abs() < 0.01, "mean {m}");
        assert!(xs.iter().all(|x| (0.0..=1.0).contains(x)));
    }

    #[test]
    fn categorical_frequencies() {
        let mut r = rng();
        let w = [1.0, 2.0, 7.0];
        let mut counts = [0usize; 3];
        for _ in 0..100_000 {
            counts[categorical(&mut r, &w)] += 1;
        }
        assert!((counts[2] as f64 / 100_000.0 - 0.7).abs() < 0.01);
        assert!((counts[0] as f64 / 100_000.0 - 0.1).abs() < 0.01);
    }

    #[test]
    fn log_normal_positive() {
        let mut r = rng();
        assert!((0..1000).all(|_| log_normal(&mut r, 2.0, 1.0) > 0.0));
    }
}
