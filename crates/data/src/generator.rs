//! Synthetic Navy Maintenance Data (NMD) generator.
//!
//! The real NMD is Controlled Unclassified Information and cannot be shared
//! (paper, footnote 1), so this module produces a seeded synthetic dataset
//! that reproduces the published structure:
//!
//! * ~200 avails, ~52,959 RCCs (Table 5), scalable x-fold for the
//!   scalability study (Section 5.1) while keeping the temporal distribution
//!   of RCCs intact — only counts grow, exactly as the paper's synthetic
//!   scaling does;
//! * a heavy-tailed delay distribution from slightly-early to multi-year
//!   (Figure 2), including exact on-time completions;
//! * G / NW / NG RCC types with hierarchical 8-digit SWLIN codes (Figure 1);
//! * a ground-truth delay process that is a function of the static and RCC
//!   attributes plus noise and outliers, so the modeling experiments face
//!   the same qualitative problem the paper describes: small-n, wide,
//!   outlier-heavy, with information revealed progressively over the
//!   logical timeline.
//!
//! The ground-truth process (documented here because EXPERIMENTS.md refers
//! to it): a latent per-avail "trouble factor" `z ~ N(0,1)` drives both the
//! RCC volume and the delay; the delay combines additive static effects
//! (ship class, RMC, age, planned duration), concave per-(type × subsystem)
//! contributions of settled RCC dollars (`sqrt` of group totals — monotone,
//! so correlation-based feature selection works; nonlinear, so boosted trees
//! beat the linear baseline), one age × growth-spend interaction, a small
//! early-completion effect, Gaussian noise, and an exponential outlier
//! mixture that produces the multi-year tail.

use crate::avail::{Avail, AvailId, ShipId, StaticAttrs};
use crate::dataset::Dataset;
use crate::date::Date;
use crate::distributions::{beta, categorical, gamma, log_normal, normal};
use crate::rcc::{Rcc, RccId, RccType, Swlin};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of avails to generate (paper: ~200).
    pub n_avails: usize,
    /// Target total RCC count across all avails (paper: 52,959).
    pub target_rccs: usize,
    /// RCC multiplication factor for the scalability study; `1` is the
    /// original dataset, `x > 1` replicates every RCC `x` times (new ids,
    /// jittered amounts, identical dates/type/SWLIN) so the temporal
    /// distribution is kept intact.
    pub scale: u32,
    /// RNG seed; equal configs with equal seeds generate identical data.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig { n_avails: 200, target_rccs: 52_959, scale: 1, seed: 0xD0_4D }
    }
}

/// Per-(RCC type × SWLIN first digit) dollar-to-delay coefficients for
/// Growth and New Work in the ground-truth process. Columns are SWLIN first
/// digits 0..=9. Units: delay days per sqrt(k$) of group settled amount —
/// concave, so the relationship is monotone (correlation-based selection
/// works) but nonlinear (boosted trees beat the linear baseline).
const SQRT_COEF: [[f64; 10]; 2] = [
    // Growth
    [0.03, 0.10, 0.08, 0.06, 0.07, 0.03, 0.03, 0.04, 0.05, 0.08],
    // New Work
    [0.05, 0.13, 0.11, 0.09, 0.06, 0.04, 0.05, 0.08, 0.07, 0.12],
];

/// New Growth delay coefficients, *linear* in group settled k$. Unplanned
/// new-growth work — especially in hull/propulsion/electrical subsystems
/// (digits 1–3) — is the dominant, directly-proportional delay driver; the
/// multi-year tail of Figure 2 comes from large NG clusters, which makes the
/// tail predictable from RCC features rather than pure noise (the paper's
/// test-set R² of 0.88 requires exactly that).
const NG_LIN_COEF: [f64; 10] =
    [0.008, 0.006, 0.008, 0.007, 0.012, 0.008, 0.010, 0.014, 0.012, 0.018];

/// Re-baselining regimes: cumulative heavy-subsystem NG spend thresholds
/// (k$) and the additional delay (days) each regime adds. Once unplanned
/// new growth in hull/propulsion/electrical exceeds a yard's absorption
/// capacity, the schedule re-baselines in discrete jumps — a regime
/// structure trees capture with single splits, linear fits cannot, and
/// bounded enough that a robust loss still reaches every level.
const NG_REGIMES: [(f64, f64); 4] =
    [(1500.0, 60.0), (4000.0, 80.0), (9000.0, 100.0), (16_000.0, 110.0)];

/// Additive delay effect (days) of each ship class in the ground truth.
const CLASS_EFFECT: [f64; 6] = [0.0, 5.0, 10.0, 15.0, 20.0, 30.0];

/// Additive delay effect (days) of each Regional Maintenance Center.
/// Deliberately non-monotone in the id: yard capacity is a property of the
/// yard, not of its numbering, so models that treat `rmc_id` as a numeric
/// scale (the linear baseline) are misspecified while tree splits recover
/// it exactly (part of what Figure 6b shows).
const RMC_EFFECT: [f64; 8] = [0.0, 12.0, -15.0, 25.0, 18.0, -20.0, 35.0, 5.0];

/// SWLIN first-digit popularity weights (digit 0 is unused by convention:
/// real SWLINs start at 1).
const SWLIN_DIGIT_WEIGHTS: [f64; 10] = [0.0, 1.5, 1.2, 1.0, 1.4, 0.8, 0.6, 0.7, 0.9, 1.1];

/// RCC type mixture: G 60%, NW 25%, NG 15%.
const TYPE_WEIGHTS: [f64; 3] = [0.60, 0.25, 0.15];

/// Generates a synthetic NMD instance plus the ground-truth metadata needed
/// to reason about it in tests and experiments.
pub fn generate(config: &GeneratorConfig) -> Dataset {
    generate_with_truth(config).0
}

/// Ground-truth quantities the generator used; exposed for tests and for
/// experiment harnesses that need the latent signal (never used by models).
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Latent trouble factor `z` per avail (same order as `Dataset::avails`).
    pub trouble: Vec<f64>,
    /// Noiseless delay signal per avail before noise/outliers, in days.
    pub signal: Vec<f64>,
}

/// As [`generate`], also returning the latent ground truth.
pub fn generate_with_truth(config: &GeneratorConfig) -> (Dataset, GroundTruth) {
    assert!(config.n_avails > 0, "need at least one avail");
    assert!(config.scale >= 1, "scale factor must be >= 1");
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // --- Avail skeletons -------------------------------------------------
    let n = config.n_avails;
    let mut trouble = Vec::with_capacity(n);
    let mut avails = Vec::with_capacity(n);
    let mut weights = Vec::with_capacity(n);
    // domd-lint: allow(no-panic) — constant, known-valid calendar date
    let epoch_2015 = Date::from_ymd(2015, 1, 6).expect("valid date");

    for i in 0..n {
        let z = normal(&mut rng, 0.0, 1.0);
        trouble.push(z);
        let ship_class = categorical(&mut rng, &[0.25, 0.22, 0.18, 0.15, 0.12, 0.08]) as u8;
        let rmc_id = rng.gen_range(0..RMC_EFFECT.len()) as u8;
        let ship_age = rng.gen_range(3.0..40.0);
        let planned_duration = rng.gen_range(120..=700);
        // Planned starts spread over ~8 years so "30% most recent" is
        // well defined.
        let plan_start = epoch_2015 + rng.gen_range(0..(365 * 8));
        // 15% of avails start late (Table 1 row 5 pattern); irrelevant to the
        // duration-based delay but realistic for logical-time bookkeeping.
        let late_start = if rng.gen::<f64>() < 0.15 { rng.gen_range(5..45) } else { 0 };
        // Every hull has at least one prior avail; its delay history leaks
        // most of z. This is what lets the paper's 0% model already reach
        // R^2 ~ 0.88: chronic-trouble ships are identifiable from their
        // planning-time record before any RCC is raised.
        let prior_avail_count = rng.gen_range(1..7u32);
        let prior_avg_delay = (25.0 + 20.0 * z + normal(&mut rng, 0.0, 3.0)).max(-30.0);
        avails.push(Avail {
            id: AvailId(i as u32 + 1),
            ship: ShipId(rng.gen_range(1..2000)),
            plan_start,
            plan_end: plan_start + planned_duration,
            actual_start: plan_start + late_start,
            actual_end: None, // filled in after the delay is known
            statics: StaticAttrs {
                ship_class,
                rmc_id,
                ship_age_years: ship_age,
                prior_avail_count,
                prior_avg_delay,
            },
        });
        // RCC volume weight: trouble and long plans attract contract changes.
        weights.push((0.45 * z).exp() * (0.4 + planned_duration as f64 / 500.0));
    }

    // --- RCCs -------------------------------------------------------------
    let weight_sum: f64 = weights.iter().sum();
    let mut rccs = Vec::with_capacity(config.target_rccs * config.scale as usize + n);
    let mut signal = Vec::with_capacity(n);
    let mut next_rcc_id = 1u32;

    for (idx, avail) in avails.iter_mut().enumerate() {
        let planned = avail.planned_duration();
        let z = trouble[idx];
        let lambda = config.target_rccs as f64 * weights[idx] / weight_sum;
        let n_rcc = lambda.round().max(1.0) as usize;
        // Group totals in k$, indexed [type][first digit].
        let mut group_ksum = [[0.0f64; 10]; 3];

        let push_rcc = |rng: &mut SmallRng,
                            group_ksum: &mut [[f64; 10]; 3],
                            rccs: &mut Vec<Rcc>,
                            next_rcc_id: &mut u32,
                            avail: &Avail,
                            t: RccType,
                            d1: u32,
                            amount: f64,
                            create_frac: f64| {
            let rest = rng.gen_range(0..10_000_000u32);
            // domd-lint: allow(no-panic) — d1 ∈ 1..=9 and rest < 10^7 always pack to 8 digits
            let swlin = Swlin::from_packed(d1 * 10_000_000 + rest).expect("8 digits");
            // Open duration: gamma, typically 5–40% of planned duration.
            let dur_frac = (0.02 + gamma(rng, 2.0, 0.06)).min(0.9);
            let created = avail.actual_start + (create_frac * planned as f64).round() as i32;
            let settled = created + ((dur_frac * planned as f64).round() as i32).max(1);
            group_ksum[t.index()][d1 as usize] += amount / 1000.0;
            rccs.push(Rcc {
                id: RccId(*next_rcc_id),
                avail: avail.id,
                rcc_type: t,
                swlin,
                created,
                settled,
                amount,
            });
            *next_rcc_id += 1;
        };

        for _ in 0..n_rcc {
            let t = RccType::ALL[categorical(&mut rng, &TYPE_WEIGHTS)];
            let d1 = categorical(&mut rng, &SWLIN_DIGIT_WEIGHTS) as u32;
            // Amounts: log-normal, scale differs per type (NW jobs largest).
            let amount = match t {
                RccType::Growth => log_normal(&mut rng, 9.0, 1.0),   // median ~8.1k$
                RccType::NewWork => log_normal(&mut rng, 10.6, 0.9), // median ~40k$
                RccType::NewGrowth => log_normal(&mut rng, 10.0, 1.0), // median ~22k$
            };
            // Creation spread over the planned duration with mid-avail mass;
            // a small fraction appears just past 100% (late paperwork).
            let create_frac = beta(&mut rng, 1.6, 1.4) * 1.05;
            push_rcc(
                &mut rng,
                &mut group_ksum,
                &mut rccs,
                &mut next_rcc_id,
                avail,
                t,
                d1,
                amount,
                create_frac,
            );
        }

        // Catastrophic new-growth event: chronic-trouble ships (z above a
        // threshold) develop a cluster of large NG RCCs in the
        // hull/propulsion subsystems whose size scales with severity. The
        // Figure 2 multi-year tail is therefore predictable twice over —
        // from the planning-time history (severity is a function of z,
        // which prior delays leak) and, once raised, directly from the NG
        // dollar features. Both are required to reproduce the paper's
        // R^2 ~ 0.88 at every logical time including 0%.
        let severity = (z - 1.2).max(0.0);
        if severity > 0.0 {
            let n_extra = 10 + (severity * 25.0).round() as usize;
            let center = 0.2 + 0.6 * beta(&mut rng, 2.0, 2.0);
            for _ in 0..n_extra {
                let d1 = [1u32, 2, 3][categorical(&mut rng, &[1.0, 1.5, 1.2])];
                let amount = log_normal(&mut rng, 12.8, 0.6); // median ~360k$
                let create_frac = (center + normal(&mut rng, 0.0, 0.08)).clamp(0.02, 1.05);
                push_rcc(
                    &mut rng,
                    &mut group_ksum,
                    &mut rccs,
                    &mut next_rcc_id,
                    avail,
                    RccType::NewGrowth,
                    d1,
                    amount,
                    create_frac,
                );
            }
        }

        // --- Ground-truth delay -------------------------------------------
        let s = &avail.statics;
        let mut mean_delay = CLASS_EFFECT[s.ship_class as usize]
            + RMC_EFFECT[s.rmc_id as usize]
            + 0.8 * (s.ship_age_years - 20.0)
            + 0.04 * (planned as f64 - 400.0);
        let mut growth_total_k = 0.0;
        for (ti, row) in SQRT_COEF.iter().enumerate() {
            for (di, coef) in row.iter().enumerate() {
                let ks = group_ksum[ti][di];
                mean_delay += coef * ks.sqrt();
                if ti == RccType::Growth.index() {
                    growth_total_k += ks;
                }
            }
        }
        for (di, coef) in NG_LIN_COEF.iter().enumerate() {
            mean_delay += coef * group_ksum[RccType::NewGrowth.index()][di];
        }
        let ng = &group_ksum[RccType::NewGrowth.index()];
        let ng_heavy = ng[1] + ng[2] + ng[3];
        for (threshold, jump) in NG_REGIMES {
            if ng_heavy > threshold {
                mean_delay += jump;
            }
        }
        // Interaction: old ships absorb growth work badly (a term no additive
        // linear model can represent, separating GBT from the elastic net).
        mean_delay += 0.05 * (s.ship_age_years - 20.0).max(0.0) * growth_total_k.sqrt();
        signal.push(mean_delay);

        let mut delay = mean_delay + normal(&mut rng, 0.0, 12.0);
        if rng.gen::<f64>() < 0.06 {
            // Unforecastable administrative shock (contracting disputes,
            // dry-dock conflicts): invisible to both static and RCC
            // features.
            delay += gamma(&mut rng, 1.0, 80.0);
        }
        if rng.gen::<f64>() < 0.08 {
            // Early completion pressure.
            delay -= rng.gen_range(10.0..60.0);
        }
        let delay = delay.round().max(-40.0) as i32;
        // ~8% of avails land exactly on time (Figure 2 has a spike at 0).
        let delay = if rng.gen::<f64>() < 0.08 { 0 } else { delay };
        avail.actual_end = Some(avail.actual_start + planned + delay);
    }

    // --- Optional x-fold scaling (Section 5.1) ----------------------------
    if config.scale > 1 {
        let original = rccs.clone();
        for copy in 1..config.scale {
            for r in &original {
                let mut r2 = r.clone();
                r2.id = RccId(next_rcc_id);
                next_rcc_id += 1;
                // Amounts jitter a few percent so copies are not bit-equal
                // rows; dates / type / SWLIN stay fixed to preserve the
                // temporal distribution, as the paper specifies.
                r2.amount *= 1.0 + 0.02 * normal(&mut rng, 0.0, 1.0);
                let _ = copy;
                rccs.push(r2);
            }
        }
    }

    (Dataset::new(avails, rccs), GroundTruth { trouble, signal })
}

/// Hides the future of selected avails to simulate ongoing maintenance: the
/// actual end date is removed and every RCC created after `as_of` is dropped,
/// exactly the information horizon an SMDII user has when issuing a DoMD
/// query (Problem 1). Returns the censored dataset plus the true delays of
/// the censored avails (for harness evaluation only).
pub fn censor_ongoing(
    dataset: &Dataset,
    ongoing: &[AvailId],
    as_of: Date,
) -> (Dataset, Vec<(AvailId, i32)>) {
    let mut truths = Vec::with_capacity(ongoing.len());
    let avails: Vec<Avail> = dataset
        .avails()
        .iter()
        .map(|a| {
            if ongoing.contains(&a.id) {
                if let Some(d) = a.delay() {
                    truths.push((a.id, d));
                }
                let mut c = a.clone();
                c.actual_end = None;
                c
            } else {
                a.clone()
            }
        })
        .collect();
    let rccs: Vec<Rcc> = dataset
        .rccs()
        .iter()
        .filter(|r| !(ongoing.contains(&r.avail) && r.created > as_of))
        .cloned()
        .collect();
    (Dataset::new(avails, rccs), truths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avail::AvailStatus;

    fn small_config() -> GeneratorConfig {
        GeneratorConfig { n_avails: 40, target_rccs: 4000, scale: 1, seed: 7 }
    }

    #[test]
    fn default_matches_table5_cardinalities() {
        let ds = generate(&GeneratorConfig::default());
        let st = ds.stats();
        assert_eq!(st.n_avails, 200);
        // RCC count is target +/- rounding and catastrophe clusters.
        assert!(
            (st.n_rccs as i64 - 52_959).unsigned_abs() < 2000,
            "got {} RCCs",
            st.n_rccs
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a.avails(), b.avails());
        assert_eq!(a.rccs(), b.rccs());
        let mut other = small_config();
        other.seed = 8;
        let c = generate(&other);
        assert_ne!(a.avails(), c.avails());
    }

    #[test]
    fn all_avails_closed_and_valid() {
        let ds = generate(&small_config());
        for a in ds.avails() {
            assert_eq!(a.status(), AvailStatus::Closed);
            assert!(a.planned_duration() >= 120);
            assert!(a.delay().unwrap() >= -40);
            assert!(a.actual_start >= a.plan_start);
        }
    }

    #[test]
    fn rccs_reference_existing_avails_and_have_positive_durations() {
        let ds = generate(&small_config());
        for r in ds.rccs() {
            assert!(ds.avail(r.avail).is_some());
            assert!(r.duration_days() >= 1);
            assert!(r.amount > 0.0);
        }
    }

    #[test]
    fn delay_distribution_shape_matches_figure2() {
        let ds = generate(&GeneratorConfig::default());
        let delays: Vec<i32> = ds.closed_avails().filter_map(|a| a.delay()).collect();
        let n = delays.len() as f64;
        let tardy = delays.iter().filter(|d| **d > 0).count() as f64 / n;
        let early = delays.iter().filter(|d| **d < 0).count() as f64 / n;
        let on_time = delays.iter().filter(|d| **d == 0).count() as f64 / n;
        let long_tail = delays.iter().filter(|d| **d > 365).count();
        assert!(tardy > 0.6, "most avails are tardy (got {tardy})");
        assert!(early > 0.02 && early < 0.30, "some early finishes (got {early})");
        assert!(on_time > 0.02, "visible on-time spike (got {on_time})");
        assert!(long_tail >= 1, "multi-year tail exists");
        let max = *delays.iter().max().unwrap();
        assert!(max > 400, "tail reaches past a year (max {max})");
    }

    #[test]
    fn trouble_factor_correlates_with_delay() {
        let (ds, truth) = generate_with_truth(&GeneratorConfig::default());
        let delays: Vec<f64> = ds
            .avails()
            .iter()
            .map(|a| a.delay().unwrap() as f64)
            .collect();
        let n = delays.len() as f64;
        let mz = truth.trouble.iter().sum::<f64>() / n;
        let md = delays.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut vz = 0.0;
        let mut vd = 0.0;
        for (z, d) in truth.trouble.iter().zip(&delays) {
            cov += (z - mz) * (d - md);
            vz += (z - mz).powi(2);
            vd += (d - md).powi(2);
        }
        let r = cov / (vz.sqrt() * vd.sqrt());
        assert!(r > 0.2, "latent trouble must drive delay (r = {r})");
    }

    #[test]
    fn scaling_multiplies_counts_and_keeps_dates() {
        let base = generate(&small_config());
        let mut cfg5 = small_config();
        cfg5.scale = 5;
        let scaled = generate(&cfg5);
        assert_eq!(scaled.rccs().len(), base.rccs().len() * 5);
        assert_eq!(scaled.avails(), base.avails());
        // Per-(created,settled) date histogram is exactly 5x the original.
        use std::collections::HashMap;
        let mut h_base: HashMap<(i32, i32), usize> = HashMap::new();
        for r in base.rccs() {
            *h_base.entry((r.created.days(), r.settled.days())).or_default() += 1;
        }
        let mut h_scaled: HashMap<(i32, i32), usize> = HashMap::new();
        for r in scaled.rccs() {
            *h_scaled.entry((r.created.days(), r.settled.days())).or_default() += 1;
        }
        assert_eq!(h_base.len(), h_scaled.len());
        for (k, v) in &h_base {
            assert_eq!(h_scaled[k], v * 5, "temporal distribution preserved");
        }
    }

    #[test]
    fn rcc_ids_unique() {
        let mut cfg = small_config();
        cfg.scale = 3;
        let ds = generate(&cfg);
        let mut ids: Vec<u32> = ds.rccs().iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ds.rccs().len());
    }

    #[test]
    fn censor_ongoing_hides_future() {
        let ds = generate(&small_config());
        let victim = ds.avails()[0].clone();
        let as_of = victim.actual_start + victim.planned_duration() / 2;
        let (censored, truths) = censor_ongoing(&ds, &[victim.id], as_of);
        let c = censored.avail(victim.id).unwrap();
        assert_eq!(c.status(), AvailStatus::Ongoing);
        assert!(censored.rccs_of(victim.id).iter().all(|r| r.created <= as_of));
        assert!(censored.rccs_of(victim.id).len() <= ds.rccs_of(victim.id).len());
        assert_eq!(truths.len(), 1);
        assert_eq!(truths[0].0, victim.id);
        assert_eq!(truths[0].1, victim.delay().unwrap());
        // Other avails untouched.
        let other = ds.avails()[1].id;
        assert_eq!(censored.rccs_of(other).len(), ds.rccs_of(other).len());
    }
}
