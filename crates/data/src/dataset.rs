//! The two-table Navy Maintenance Data (NMD) layout: an avail table and an
//! RCC table, plus the split protocol of Section 5.2.1 and the summary
//! statistics of Table 5 / Figure 2.

use crate::avail::{Avail, AvailId, AvailStatus};
use crate::rcc::Rcc;
use crate::hash::FxHashMap;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Number of modeled + obfuscated companion attributes reported for the real
/// avail table in Table 5 of the paper. The synthetic dataset materializes
/// the modeled subset; the remaining columns of the CUI source are opaque
/// and carry no signal the pipeline uses, so we track only the count.
pub const AVAIL_TABLE_ATTRS: usize = 73;

/// Same, for the RCC table (Table 5).
pub const RCC_TABLE_ATTRS: usize = 187;

/// An in-memory NMD instance: the avail table and the RCC table.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    avails: Vec<Avail>,
    rccs: Vec<Rcc>,
    /// Index of the first RCC of each avail in `rccs` (built on construction;
    /// `rccs` is kept sorted by avail id, then creation date).
    by_avail: FxHashMap<AvailId, (usize, usize)>,
}

impl Dataset {
    /// Builds a dataset, sorting RCCs by (avail, creation date) and indexing
    /// the per-avail ranges.
    pub fn new(avails: Vec<Avail>, mut rccs: Vec<Rcc>) -> Self {
        rccs.sort_by_key(|a| (a.avail, a.created, a.id));
        let by_avail = build_ranges(&rccs, avails.len());
        Dataset { avails, rccs, by_avail }
    }

    /// Inserts `fresh` RCC rows by a single linear merge into the sorted
    /// table — O(n + k log k) for k new rows against the O((n+k) log (n+k))
    /// full re-sort a [`Dataset::new`] rebuild pays — and re-indexes the
    /// per-avail ranges. Produces exactly the dataset `Dataset::new` would
    /// build from the concatenated rows: the merge keys on the same
    /// `(avail, created, id)` triple and keeps existing rows first on ties,
    /// matching the stable sort.
    pub fn with_rccs_merged(&self, mut fresh: Vec<Rcc>) -> Dataset {
        let key = |r: &Rcc| (r.avail, r.created, r.id);
        fresh.sort_by_key(key);
        let mut rccs = Vec::with_capacity(self.rccs.len() + fresh.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.rccs.len() && j < fresh.len() {
            if key(&self.rccs[i]) <= key(&fresh[j]) {
                rccs.push(self.rccs[i].clone());
                i += 1;
            } else {
                rccs.push(fresh[j].clone());
                j += 1;
            }
        }
        rccs.extend_from_slice(&self.rccs[i..]);
        rccs.extend_from_slice(&fresh[j..]);
        let by_avail = build_ranges(&rccs, self.avails.len());
        Dataset { avails: self.avails.clone(), rccs, by_avail }
    }

    /// A dataset restricted to `ids` (ids without an avail here are
    /// dropped), preserving each kept avail's RCC rows and their relative
    /// order. Because the RCC table is sorted by `(avail, created, id)`,
    /// any per-avail computation over the selection — a feature sweep, a
    /// per-avail aggregate — sees exactly the row sequence the full
    /// dataset holds, at the cost of only the selected rows.
    pub fn select_avails(&self, ids: &[AvailId]) -> Dataset {
        let avails: Vec<Avail> =
            ids.iter().filter_map(|id| self.avail(*id)).cloned().collect();
        let rccs: Vec<Rcc> =
            avails.iter().flat_map(|a| self.rccs_of(a.id)).cloned().collect();
        Dataset::new(avails, rccs)
    }

    /// All avails, in insertion order.
    pub fn avails(&self) -> &[Avail] {
        &self.avails
    }

    /// All RCCs, sorted by (avail, creation date).
    pub fn rccs(&self) -> &[Rcc] {
        &self.rccs
    }

    /// Look up an avail by id (linear in the avail count, which is ~200).
    pub fn avail(&self, id: AvailId) -> Option<&Avail> {
        self.avails.iter().find(|a| a.id == id)
    }

    /// RCCs belonging to `avail`, sorted by creation date.
    pub fn rccs_of(&self, avail: AvailId) -> &[Rcc] {
        match self.by_avail.get(&avail) {
            Some(&(s, e)) => &self.rccs[s..e],
            None => &[],
        }
    }

    /// Closed avails only (the modeling population: delay is observable).
    pub fn closed_avails(&self) -> impl Iterator<Item = &Avail> {
        self.avails.iter().filter(|a| a.status() == AvailStatus::Closed)
    }

    /// Summary statistics in the shape of Table 5.
    pub fn stats(&self) -> Stats {
        Stats {
            n_avails: self.avails.len(),
            n_avail_attrs: AVAIL_TABLE_ATTRS,
            n_rccs: self.rccs.len(),
            n_rcc_attrs: RCC_TABLE_ATTRS,
        }
    }

    /// Histogram of closed-avail delays with the given bin width in days
    /// (Figure 2). Returns `(bin_lower_edge, count)` pairs covering the full
    /// observed range, including empty interior bins.
    pub fn delay_histogram(&self, bin_days: i32) -> Vec<(i32, usize)> {
        assert!(bin_days > 0, "bin width must be positive");
        let delays: Vec<i32> = self.closed_avails().filter_map(|a| a.delay()).collect();
        let (Some(&min), Some(&max)) = (delays.iter().min(), delays.iter().max()) else {
            return Vec::new();
        };
        let lo = (min.div_euclid(bin_days)) * bin_days;
        let hi = (max.div_euclid(bin_days)) * bin_days;
        let n_bins = ((hi - lo) / bin_days + 1) as usize;
        let mut bins = vec![0usize; n_bins];
        for d in delays {
            bins[((d - lo) / bin_days) as usize] += 1;
        }
        bins.into_iter()
            .enumerate()
            .map(|(i, c)| (lo + i as i32 * bin_days, c))
            .collect()
    }

    /// The split protocol of Section 5.2.1: the 30% most *recent* closed
    /// avails (by planned start) form the test set; of the remaining 70%, a
    /// seeded random 25% is validation and 75% is training.
    pub fn split(&self, seed: u64) -> Split {
        let mut closed: Vec<AvailId> = self.closed_avails().map(|a| a.id).collect();
        // Most recent by planned start date; ties broken by id for determinism.
        closed.sort_by_key(|id| {
            // domd-lint: allow(no-panic) — ids were just collected from self.closed_avails()
            let a = self.avail(*id).expect("closed avail present");
            (a.plan_start, a.id)
        });
        let n = closed.len();
        let n_test = (n as f64 * 0.30).round() as usize;
        let test: Vec<AvailId> = closed[n - n_test..].to_vec();
        let mut rest: Vec<AvailId> = closed[..n - n_test].to_vec();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        rest.shuffle(&mut rng);
        let n_val = (rest.len() as f64 * 0.25).round() as usize;
        let validation: Vec<AvailId> = rest[..n_val].to_vec();
        let train: Vec<AvailId> = rest[n_val..].to_vec();
        Split { train, validation, test }
    }
}

/// Per-avail `(start, end)` ranges over an RCC table already sorted by
/// `(avail, created, id)`.
fn build_ranges(rccs: &[Rcc], n_avails: usize) -> FxHashMap<AvailId, (usize, usize)> {
    let mut by_avail = FxHashMap::with_capacity_and_hasher(n_avails, Default::default());
    let mut start = 0usize;
    while start < rccs.len() {
        let aid = rccs[start].avail;
        let mut end = start + 1;
        while end < rccs.len() && rccs[end].avail == aid {
            end += 1;
        }
        by_avail.insert(aid, (start, end));
        start = end;
    }
    by_avail
}

/// Table 5-style dataset statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Row count of the avail table.
    pub n_avails: usize,
    /// Attribute count of the avail table.
    pub n_avail_attrs: usize,
    /// Row count of the RCC table.
    pub n_rccs: usize,
    /// Attribute count of the RCC table.
    pub n_rcc_attrs: usize,
}

/// Train / validation / test partition of closed avails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// 75% of the non-test avails; fits the models.
    pub train: Vec<AvailId>,
    /// 25% of the non-test avails; sets pipeline parameters (Problem 2).
    pub validation: Vec<AvailId>,
    /// The 30% most recent avails; touched only for final evaluation.
    pub test: Vec<AvailId>,
}

impl Split {
    /// Total avails across the three parts.
    pub fn len(&self) -> usize {
        self.train.len() + self.validation.len() + self.test.len()
    }

    /// True when every part is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avail::{ShipId, StaticAttrs};
    use crate::date::Date;
    use crate::rcc::{RccId, RccType};

    fn mk_avail(id: u32, start_days: i32, closed: bool) -> Avail {
        let s = Date::from_days(start_days);
        Avail {
            id: AvailId(id),
            ship: ShipId(id),
            plan_start: s,
            plan_end: s + 300,
            actual_start: s,
            actual_end: if closed { Some(s + 330) } else { None },
            statics: StaticAttrs {
                ship_class: 0,
                rmc_id: 0,
                ship_age_years: 10.0,
                prior_avail_count: 0,
                prior_avg_delay: 0.0,
            },
        }
    }

    fn mk_rcc(id: u32, avail: u32, created_days: i32) -> Rcc {
        Rcc {
            id: RccId(id),
            avail: AvailId(avail),
            rcc_type: RccType::Growth,
            swlin: "100-00-001".parse().unwrap(),
            created: Date::from_days(created_days),
            settled: Date::from_days(created_days + 30),
            amount: 1000.0,
        }
    }

    fn toy_dataset(n: usize) -> Dataset {
        let avails: Vec<Avail> = (0..n as u32).map(|i| mk_avail(i, i as i32 * 100, true)).collect();
        let rccs: Vec<Rcc> = (0..n as u32)
            .flat_map(|a| (0..3u32).map(move |j| mk_rcc(a * 10 + j, a, a as i32 * 100 + j as i32 * 5)))
            .collect();
        Dataset::new(avails, rccs)
    }

    #[test]
    fn per_avail_ranges_sorted() {
        let ds = toy_dataset(5);
        for a in ds.avails() {
            let rs = ds.rccs_of(a.id);
            assert_eq!(rs.len(), 3);
            assert!(rs.windows(2).all(|w| w[0].created <= w[1].created));
            assert!(rs.iter().all(|r| r.avail == a.id));
        }
        assert!(ds.rccs_of(AvailId(999)).is_empty());
    }

    #[test]
    fn merged_insert_equals_full_rebuild() {
        let ds = toy_dataset(5);
        // New rows landing at the front, middle, and back of avail ranges,
        // plus a tie on (avail, created) resolved by id.
        let fresh = vec![
            mk_rcc(900, 2, 205),
            mk_rcc(901, 0, 0),
            mk_rcc(902, 4, 999),
            mk_rcc(903, 2, 200), // same (avail, created) as rcc 20
        ];
        let merged = ds.with_rccs_merged(fresh.clone());
        let mut all = ds.rccs().to_vec();
        all.extend(fresh);
        let rebuilt = Dataset::new(ds.avails().to_vec(), all);
        assert_eq!(merged.rccs().len(), rebuilt.rccs().len());
        for (m, r) in merged.rccs().iter().zip(rebuilt.rccs()) {
            assert_eq!(m.id, r.id, "merge must reproduce the rebuilt order");
        }
        for a in merged.avails() {
            assert_eq!(
                merged.rccs_of(a.id).len(),
                rebuilt.rccs_of(a.id).len(),
                "ranges must match for avail {}",
                a.id
            );
        }
    }

    #[test]
    fn merged_insert_into_empty_and_with_empty() {
        let ds = toy_dataset(3);
        let same = ds.with_rccs_merged(Vec::new());
        assert_eq!(same.rccs().len(), ds.rccs().len());
        let empty = Dataset::new(ds.avails().to_vec(), Vec::new());
        let filled = empty.with_rccs_merged(ds.rccs().to_vec());
        assert_eq!(filled.rccs().len(), ds.rccs().len());
        assert_eq!(filled.rccs_of(AvailId(1)).len(), 3);
    }

    #[test]
    fn stats_shape() {
        let ds = toy_dataset(4);
        let st = ds.stats();
        assert_eq!(st.n_avails, 4);
        assert_eq!(st.n_rccs, 12);
        assert_eq!(st.n_avail_attrs, AVAIL_TABLE_ATTRS);
        assert_eq!(st.n_rcc_attrs, RCC_TABLE_ATTRS);
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let ds = toy_dataset(200);
        let sp = ds.split(42);
        assert_eq!(sp.test.len(), 60); // 30% of 200
        assert_eq!(sp.validation.len(), 35); // 25% of 140
        assert_eq!(sp.train.len(), 105);
        assert_eq!(sp.len(), 200);
        let mut all: Vec<u32> = sp
            .train
            .iter()
            .chain(&sp.validation)
            .chain(&sp.test)
            .map(|a| a.0)
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 200, "splits must be disjoint and exhaustive");
    }

    #[test]
    fn split_test_is_most_recent() {
        let ds = toy_dataset(10);
        let sp = ds.split(7);
        let max_nontest = sp
            .train
            .iter()
            .chain(&sp.validation)
            .map(|id| ds.avail(*id).unwrap().plan_start)
            .max()
            .unwrap();
        let min_test = sp.test.iter().map(|id| ds.avail(*id).unwrap().plan_start).min().unwrap();
        assert!(min_test >= max_nontest);
    }

    #[test]
    fn split_deterministic_per_seed() {
        let ds = toy_dataset(50);
        assert_eq!(ds.split(1), ds.split(1));
        assert_ne!(ds.split(1).train, ds.split(2).train);
    }

    #[test]
    fn ongoing_excluded_from_split_and_histogram() {
        let mut avails: Vec<Avail> = (0..10).map(|i| mk_avail(i, i as i32 * 10, true)).collect();
        avails.push(mk_avail(10, 2000, false)); // ongoing
        let ds = Dataset::new(avails, vec![]);
        let sp = ds.split(0);
        assert_eq!(sp.len(), 10);
        let hist = ds.delay_histogram(30);
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn histogram_covers_negative_delays() {
        let mut a = mk_avail(0, 0, true);
        a.actual_end = Some(a.actual_start + 270); // delay -30
        let mut b = mk_avail(1, 0, true);
        b.actual_end = Some(b.actual_start + 400); // delay +100
        let ds = Dataset::new(vec![a, b], vec![]);
        let hist = ds.delay_histogram(30);
        assert_eq!(hist.first().unwrap().0, -30);
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 2);
    }
}
