//! Row-level quarantine for lenient ingest.
//!
//! The deployed pipeline retrains "without human intervention"
//! (Abstract), so a handful of mangled rows in a nightly extract must
//! cost those rows, not the retrain. Lenient ingest parses what it can,
//! then applies the same semantic invariants as [`crate::validate`] *per
//! row*, moving each offender into a [`QuarantineReport`] that records
//! the line number, offending field, reason, and raw text — enough for
//! an operator to fix the upstream export without re-running anything.

use crate::avail::{Avail, AvailId};
use crate::csv::{self, CsvError};
use crate::dataset::Dataset;
use crate::hash::FxHashSet;
use crate::rcc::{Rcc, RccId};
use std::fmt;

/// One row removed from a lenient ingest.
#[derive(Debug, Clone)]
pub struct QuarantinedRow {
    /// Which table the row came from (`"avail"` or `"RCC"`).
    pub table: &'static str,
    /// 1-based line number in the source CSV.
    pub line: usize,
    /// The offending field, when a single field is at fault.
    pub field: Option<&'static str>,
    /// Why the row was quarantined.
    pub reason: String,
    /// The raw text of the row.
    pub raw: String,
}

impl fmt::Display for QuarantinedRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} line {}", self.table, self.line)?;
        if let Some(field) = self.field {
            write!(f, " (field {field})")?;
        }
        write!(f, ": {}", self.reason)
    }
}

/// Everything removed from one lenient ingest, plus what survived.
#[derive(Debug, Clone, Default)]
pub struct QuarantineReport {
    /// The quarantined rows in source order (avail table first).
    pub rows: Vec<QuarantinedRow>,
    /// Avail rows that survived.
    pub kept_avails: usize,
    /// RCC rows that survived.
    pub kept_rccs: usize,
}

impl QuarantineReport {
    /// Number of quarantined rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing was quarantined.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// One-line operator summary: `N rows quarantined, first: line L: reason`.
    pub fn summary(&self) -> String {
        match self.rows.first() {
            None => "0 rows quarantined".to_string(),
            Some(first) => format!(
                "{} row{} quarantined, first: line {}: {}",
                self.rows.len(),
                if self.rows.len() == 1 { "" } else { "s" },
                first.line,
                first.reason,
            ),
        }
    }
}

impl fmt::Display for QuarantineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for row in &self.rows {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

/// Semantic per-row checks applied after parsing. Returns the reason and
/// offending field when the avail row violates an invariant.
fn avail_violation(a: &Avail) -> Option<(&'static str, String)> {
    if a.plan_end <= a.plan_start {
        return Some((
            "plan_end",
            format!("plan_end {} not after plan_start {}", a.plan_end, a.plan_start),
        ));
    }
    if let Some(end) = a.actual_end {
        if end < a.actual_start {
            return Some((
                "actual_end",
                format!("actual_end {end} before actual_start {}", a.actual_start),
            ));
        }
    }
    if !a.statics.ship_age_years.is_finite() {
        return Some(("ship_age_years", "non-finite ship age".to_string()));
    }
    if !a.statics.prior_avg_delay.is_finite() {
        return Some(("prior_avg_delay", "non-finite prior average delay".to_string()));
    }
    None
}

/// Same for an RCC row, given the set of avail ids that survived.
fn rcc_violation(r: &Rcc, live_avails: &FxHashSet<AvailId>) -> Option<(&'static str, String)> {
    if !live_avails.contains(&r.avail) {
        return Some(("avail_id", format!("references unknown or quarantined avail {}", r.avail)));
    }
    if r.settled < r.created {
        return Some(("settled", format!("settled {} before created {}", r.settled, r.created)));
    }
    if !r.amount.is_finite() {
        return Some(("amount", format!("non-finite amount {}", r.amount)));
    }
    if r.amount < 0.0 {
        return Some(("amount", format!("negative amount {}", r.amount)));
    }
    None
}

/// Lenient two-table ingest: parse failures and semantic violations are
/// quarantined row-by-row; the surviving rows become a usable
/// [`Dataset`]. Structural problems (missing/mismatched headers) remain
/// fatal — there is no row to salvage when the table itself is wrong.
///
/// Semantic invariants enforced per row (mirroring [`crate::validate`]):
/// duplicate avail/RCC ids, `plan_end > plan_start`,
/// `actual_end ≥ actual_start`, finite statics, RCC references resolve
/// to a surviving avail, `settled ≥ created`, finite non-negative
/// amounts. Well-formed 8-digit SWLINs are enforced at parse time by
/// [`crate::rcc::Swlin`].
pub fn read_dataset_lenient(
    avail_csv: &str,
    rcc_csv: &str,
) -> Result<(Dataset, QuarantineReport), CsvError> {
    let avail_rows = csv::read_avails_lenient(avail_csv)?;
    let rcc_rows = csv::read_rccs_lenient(rcc_csv)?;

    let mut report = QuarantineReport { rows: avail_rows.quarantined, ..Default::default() };

    // Kept ids only: a quarantined row must neither shadow a later valid
    // row with the same id nor unregister an earlier kept one.
    let mut kept_avail_ids: FxHashSet<AvailId> =
        FxHashSet::with_capacity_and_hasher(avail_rows.rows.len(), Default::default());
    let mut avails: Vec<Avail> = Vec::with_capacity(avail_rows.rows.len());
    for (line, a) in avail_rows.rows {
        let verdict = if kept_avail_ids.contains(&a.id) {
            Some(("avail_id", format!("duplicate avail id {}", a.id)))
        } else {
            avail_violation(&a)
        };
        match verdict {
            None => {
                kept_avail_ids.insert(a.id);
                avails.push(a);
            }
            Some((field, reason)) => report.rows.push(QuarantinedRow {
                table: "avail",
                line,
                field: Some(field),
                reason,
                raw: raw_line(avail_csv, line),
            }),
        }
    }

    report.rows.extend(rcc_rows.quarantined);
    let mut kept_rcc_ids: FxHashSet<RccId> =
        FxHashSet::with_capacity_and_hasher(rcc_rows.rows.len(), Default::default());
    let mut rccs: Vec<Rcc> = Vec::with_capacity(rcc_rows.rows.len());
    for (line, r) in rcc_rows.rows {
        let verdict = if kept_rcc_ids.contains(&r.id) {
            Some(("rcc_id", format!("duplicate RCC id {}", r.id.0)))
        } else {
            rcc_violation(&r, &kept_avail_ids)
        };
        match verdict {
            None => {
                kept_rcc_ids.insert(r.id);
                rccs.push(r);
            }
            Some((field, reason)) => report.rows.push(QuarantinedRow {
                table: "RCC",
                line,
                field: Some(field),
                reason,
                raw: raw_line(rcc_csv, line),
            }),
        }
    }

    report.kept_avails = avails.len();
    report.kept_rccs = rccs.len();
    Ok((Dataset::new(avails, rccs), report))
}

/// The raw text of a 1-based line (empty when out of range — only
/// reachable if the caller passes mismatched text).
fn raw_line(text: &str, line: usize) -> String {
    text.lines().nth(line.saturating_sub(1)).unwrap_or_default().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::{write_avails, write_rccs, AVAIL_HEADER, RCC_HEADER};
    use crate::generator::{generate, GeneratorConfig};

    fn avail_line(id: u32, plan: (&str, &str), actual: (&str, &str), age: &str) -> String {
        format!("{id},7,{},{},{},{},0,1,{age},2,4.5", plan.0, plan.1, actual.0, actual.1)
    }

    fn rcc_line(id: u32, avail: u32, created: &str, settled: &str, amount: &str) -> String {
        format!("{id},{avail},G,434-11-001,{created},{settled},{amount}")
    }

    fn ok_avail(id: u32) -> String {
        avail_line(id, ("1/1/20", "11/1/20"), ("1/1/20", "12/1/20"), "15.0")
    }

    fn ingest(avail_rows: &[String], rcc_rows: &[String]) -> (Dataset, QuarantineReport) {
        let avail_csv = format!("{AVAIL_HEADER}\n{}\n", avail_rows.join("\n"));
        let rcc_csv = format!("{RCC_HEADER}\n{}\n", rcc_rows.join("\n"));
        read_dataset_lenient(&avail_csv, &rcc_csv).expect("headers are valid")
    }

    #[test]
    fn clean_extract_passes_untouched() {
        let ds = generate(&GeneratorConfig { n_avails: 12, target_rccs: 400, scale: 1, seed: 3 });
        let (back, report) =
            read_dataset_lenient(&write_avails(&ds), &write_rccs(&ds)).unwrap();
        assert!(report.is_empty(), "{report}");
        assert_eq!(back.avails(), ds.avails());
        assert_eq!(back.rccs(), ds.rccs());
        assert_eq!(report.summary(), "0 rows quarantined");
    }

    #[test]
    fn quarantines_inverted_planned_window() {
        let rows =
            vec![ok_avail(1), avail_line(2, ("6/1/20", "1/1/20"), ("1/1/20", "12/1/20"), "15.0")];
        let (ds, report) = ingest(&rows, &[]);
        assert_eq!(ds.avails().len(), 1);
        assert_eq!(report.len(), 1);
        assert_eq!(report.rows[0].field, Some("plan_end"));
        assert_eq!(report.rows[0].line, 3);
    }

    #[test]
    fn quarantines_inverted_actual_window() {
        let rows =
            vec![ok_avail(1), avail_line(2, ("1/1/20", "11/1/20"), ("5/1/20", "2/1/20"), "15.0")];
        let (ds, report) = ingest(&rows, &[]);
        assert_eq!(ds.avails().len(), 1);
        assert_eq!(report.rows[0].field, Some("actual_end"));
    }

    #[test]
    fn quarantines_duplicate_avail_ids_keeping_the_first() {
        let rows = vec![ok_avail(1), ok_avail(1), ok_avail(2)];
        let (ds, report) = ingest(&rows, &[]);
        assert_eq!(ds.avails().len(), 2);
        assert_eq!(report.len(), 1);
        assert!(report.rows[0].reason.contains("duplicate avail id"));
        assert_eq!(report.rows[0].line, 3);
    }

    #[test]
    fn quarantines_settled_before_created() {
        let rccs = vec![
            rcc_line(1, 1, "2/1/20", "3/1/20", "100.0"),
            rcc_line(2, 1, "3/1/20", "2/1/20", "100.0"),
        ];
        let (ds, report) = ingest(&[ok_avail(1)], &rccs);
        assert_eq!(ds.rccs().len(), 1);
        assert_eq!(report.rows[0].field, Some("settled"));
    }

    #[test]
    fn quarantines_dangling_rcc_references() {
        let rccs =
            vec![rcc_line(1, 1, "2/1/20", "3/1/20", "100.0"), rcc_line(2, 99, "2/1/20", "3/1/20", "100.0")];
        let (ds, report) = ingest(&[ok_avail(1)], &rccs);
        assert_eq!(ds.rccs().len(), 1);
        assert!(report.rows[0].reason.contains("unknown or quarantined avail A99"));
    }

    #[test]
    fn rccs_of_quarantined_avails_are_quarantined_too() {
        // Avail 2 is quarantined (bad window), so its RCC dangles.
        let rows =
            vec![ok_avail(1), avail_line(2, ("6/1/20", "1/1/20"), ("1/1/20", "12/1/20"), "15.0")];
        let rccs = vec![rcc_line(1, 2, "2/1/20", "3/1/20", "100.0")];
        let (ds, report) = ingest(&rows, &rccs);
        assert_eq!(ds.rccs().len(), 0);
        assert_eq!(report.len(), 2);
        assert_eq!(report.rows[1].table, "RCC");
    }

    #[test]
    fn quarantines_negative_and_non_finite_amounts() {
        let rccs = vec![
            rcc_line(1, 1, "2/1/20", "3/1/20", "100.0"),
            rcc_line(2, 1, "2/1/20", "3/1/20", "-5.0"),
        ];
        let (ds, report) = ingest(&[ok_avail(1)], &rccs);
        assert_eq!(ds.rccs().len(), 1);
        assert!(report.rows[0].reason.contains("negative amount"));
        // Non-finite amounts never parse, so they land in the parse-stage
        // quarantine with the same field attribution.
        let rccs = vec![rcc_line(1, 1, "2/1/20", "3/1/20", "inf")];
        let (_, report) = ingest(&[ok_avail(1)], &rccs);
        assert_eq!(report.rows[0].field, Some("amount"));
    }

    #[test]
    fn quarantines_duplicate_rcc_ids() {
        let rccs = vec![
            rcc_line(1, 1, "2/1/20", "3/1/20", "100.0"),
            rcc_line(1, 1, "2/1/20", "3/1/20", "200.0"),
        ];
        let (ds, report) = ingest(&[ok_avail(1)], &rccs);
        assert_eq!(ds.rccs().len(), 1);
        assert!(report.rows[0].reason.contains("duplicate RCC id"));
    }

    #[test]
    fn quarantines_non_finite_statics() {
        // Non-finite ages fail at parse time; the row is quarantined with
        // the field named either way.
        let rows =
            vec![ok_avail(1), avail_line(2, ("1/1/20", "11/1/20"), ("1/1/20", "12/1/20"), "NaN")];
        let (ds, report) = ingest(&rows, &[]);
        assert_eq!(ds.avails().len(), 1);
        assert_eq!(report.rows[0].field, Some("ship_age_years"));
    }

    #[test]
    fn summary_names_the_first_offender() {
        let rows = vec![ok_avail(1), "garbage".to_string()];
        let (_, report) = ingest(&rows, &[]);
        let s = report.summary();
        assert!(s.starts_with("1 row quarantined, first: line 3:"), "{s}");
        assert_eq!(report.rows[0].raw, "garbage");
    }

    #[test]
    fn ten_percent_mangled_extract_survives() {
        // The acceptance scenario: mangle 10% of rows; the report names
        // each bad line and the rest forms a usable dataset.
        let ds = generate(&GeneratorConfig { n_avails: 30, target_rccs: 900, scale: 1, seed: 5 });
        let avail_csv = write_avails(&ds);
        let mut lines: Vec<String> = write_rccs(&ds).lines().map(String::from).collect();
        let n_rows = lines.len() - 1;
        let mut mangled = Vec::new();
        for i in 0..n_rows / 10 {
            let idx = 1 + i * 10; // every 10th data row
            lines[idx] = format!("mangled-{i}");
            mangled.push(idx + 1); // 1-based line number
        }
        let rcc_csv = lines.join("\n");
        let (back, report) = read_dataset_lenient(&avail_csv, &rcc_csv).unwrap();
        assert_eq!(report.len(), mangled.len());
        let reported: Vec<usize> = report.rows.iter().map(|r| r.line).collect();
        assert_eq!(reported, mangled);
        assert_eq!(back.rccs().len(), n_rows - mangled.len());
        assert_eq!(back.avails().len(), ds.avails().len());
        assert!(!back.split(1).is_empty(), "surviving dataset must still split");
    }
}
