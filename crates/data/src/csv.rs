//! CSV interchange for the two NMD tables.
//!
//! The deployed pipeline "uses obfuscated data for training and then
//! retrains on raw data in the Navy environment without human intervention"
//! (Abstract) — i.e. the same code must ingest whatever avail/RCC extracts
//! the environment provides. This module writes and parses the two tables
//! in a plain CSV layout (no quoting needed: every field is numeric, a
//! date, or a code), so a deployment can swap the synthetic generator for
//! real extracts without touching the pipeline.
//!
//! Two ingest modes:
//! * **strict** ([`read_avails`] / [`read_rccs`] / [`read_dataset`]) —
//!   the first malformed row aborts the whole extract; right for curated
//!   inputs where any defect means the export job itself is broken;
//! * **lenient** ([`read_avails_lenient`] / [`read_rccs_lenient`], and
//!   [`read_dataset_lenient`](crate::quarantine::read_dataset_lenient)
//!   for the full semantic pass) — malformed rows are collected into a
//!   [`QuarantinedRow`](crate::quarantine::QuarantinedRow) list and the
//!   remaining rows survive; right for unattended retraining where one
//!   bad row must not take down the pipeline.

use crate::avail::{Avail, AvailId, ShipId, StaticAttrs};
use crate::dataset::Dataset;
use crate::date::Date;
use crate::quarantine::QuarantinedRow;
use crate::rcc::{Rcc, RccId, RccType, Swlin};
use std::fmt::Write as _;

/// Header of the avail table CSV.
pub const AVAIL_HEADER: &str = "avail_id,ship_id,plan_start,plan_end,actual_start,actual_end,\
ship_class,rmc_id,ship_age_years,prior_avail_count,prior_avg_delay";

/// Header of the RCC table CSV.
pub const RCC_HEADER: &str = "rcc_id,avail_id,rcc_type,swlin,created,settled,amount";

/// Error produced when parsing a CSV extract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number (0 for structural problems — see
    /// [`CsvError::is_structural`]).
    pub line: usize,
    /// The field being parsed when the error occurred, if any.
    pub field: Option<&'static str>,
    /// What went wrong.
    pub message: String,
}

impl CsvError {
    /// A whole-file problem (missing or mismatched header): no single
    /// line is at fault.
    pub fn structural(message: impl Into<String>) -> CsvError {
        CsvError { line: 0, field: None, message: message.into() }
    }

    /// A row-shape problem on one line (wrong field count).
    pub fn at_line(line: usize, message: impl Into<String>) -> CsvError {
        CsvError { line, field: None, message: message.into() }
    }

    /// A value problem in one named field of one line.
    pub fn at_field(line: usize, field: &'static str, message: impl Into<String>) -> CsvError {
        CsvError { line, field: Some(field), message: message.into() }
    }

    /// True for whole-file problems that no row-level quarantine can
    /// work around (the lenient readers refuse the extract too).
    pub fn is_structural(&self) -> bool {
        self.line == 0
    }
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_structural() {
            write!(f, "CSV structure: {}", self.message)
        } else {
            match self.field {
                Some(field) => write!(f, "CSV line {} (field {field}): {}", self.line, self.message),
                None => write!(f, "CSV line {}: {}", self.line, self.message),
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Serializes the avail table.
pub fn write_avails(dataset: &Dataset) -> String {
    let mut out = String::with_capacity(64 * dataset.avails().len());
    out.push_str(AVAIL_HEADER);
    out.push('\n');
    for a in dataset.avails() {
        let actual_end = a.actual_end.map(|d| d.to_string()).unwrap_or_default();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{}",
            a.id.0,
            a.ship.0,
            a.plan_start,
            a.plan_end,
            a.actual_start,
            actual_end,
            a.statics.ship_class,
            a.statics.rmc_id,
            a.statics.ship_age_years,
            a.statics.prior_avail_count,
            a.statics.prior_avg_delay,
        );
    }
    out
}

/// Serializes the RCC table.
pub fn write_rccs(dataset: &Dataset) -> String {
    let mut out = String::with_capacity(48 * dataset.rccs().len());
    out.push_str(RCC_HEADER);
    out.push('\n');
    for r in dataset.rccs() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            r.id.0, r.avail.0, r.rcc_type, r.swlin, r.created, r.settled, r.amount,
        );
    }
    out
}

fn fields(line: &str, want: usize, line_no: usize) -> Result<Vec<&str>, CsvError> {
    let f: Vec<&str> = line.split(',').collect();
    if f.len() != want {
        return Err(CsvError::at_line(line_no, format!("expected {want} fields, got {}", f.len())));
    }
    Ok(f)
}

fn parse<T: std::str::FromStr>(s: &str, what: &'static str, line_no: usize) -> Result<T, CsvError>
where
    T::Err: std::fmt::Display,
{
    s.trim().parse().map_err(|e| CsvError::at_field(line_no, what, format!("bad value {s:?}: {e}")))
}

fn parse_finite(s: &str, what: &'static str, line_no: usize) -> Result<f64, CsvError> {
    let v: f64 = parse(s, what, line_no)?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(CsvError::at_field(line_no, what, format!("non-finite value {s:?}")))
    }
}

fn check_header(
    lines: &mut std::iter::Enumerate<std::str::Lines<'_>>,
    expected: &str,
    table: &str,
) -> Result<(), CsvError> {
    match lines.next() {
        Some((_, h)) if h.trim() == expected => Ok(()),
        Some((_, h)) => Err(CsvError::structural(format!(
            "{table} header mismatch: expected {expected:?}, found {h:?}"
        ))),
        None => Err(CsvError::structural(format!("empty input: missing {table} header"))),
    }
}

/// Parses one avail-table data row.
fn parse_avail_row(line: &str, line_no: usize) -> Result<Avail, CsvError> {
    let f = fields(line, 11, line_no)?;
    let actual_end: Option<Date> = if f[5].trim().is_empty() {
        None
    } else {
        Some(parse(f[5], "actual_end", line_no)?)
    };
    Ok(Avail {
        id: AvailId(parse(f[0], "avail_id", line_no)?),
        ship: ShipId(parse(f[1], "ship_id", line_no)?),
        plan_start: parse(f[2], "plan_start", line_no)?,
        plan_end: parse(f[3], "plan_end", line_no)?,
        actual_start: parse(f[4], "actual_start", line_no)?,
        actual_end,
        statics: StaticAttrs {
            ship_class: parse(f[6], "ship_class", line_no)?,
            rmc_id: parse(f[7], "rmc_id", line_no)?,
            ship_age_years: parse_finite(f[8], "ship_age_years", line_no)?,
            prior_avail_count: parse(f[9], "prior_avail_count", line_no)?,
            prior_avg_delay: parse_finite(f[10], "prior_avg_delay", line_no)?,
        },
    })
}

/// Parses one RCC-table data row.
fn parse_rcc_row(line: &str, line_no: usize) -> Result<Rcc, CsvError> {
    let f = fields(line, 7, line_no)?;
    let rcc_type: RccType = f[2]
        .trim()
        .parse()
        .map_err(|e| CsvError::at_field(line_no, "rcc_type", e))?;
    let swlin: Swlin =
        f[3].trim().parse().map_err(|e| CsvError::at_field(line_no, "swlin", e))?;
    Ok(Rcc {
        id: RccId(parse(f[0], "rcc_id", line_no)?),
        avail: AvailId(parse(f[1], "avail_id", line_no)?),
        rcc_type,
        swlin,
        created: parse(f[4], "created", line_no)?,
        settled: parse(f[5], "settled", line_no)?,
        amount: parse_finite(f[6], "amount", line_no)?,
    })
}

fn read_table<T>(
    text: &str,
    header: &str,
    table: &str,
    parse_row: impl Fn(&str, usize) -> Result<T, CsvError>,
) -> Result<Vec<T>, CsvError> {
    let mut lines = text.lines().enumerate();
    check_header(&mut lines, header, table)?;
    let mut out = Vec::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_row(line, i + 1)?);
    }
    Ok(out)
}

/// Rows that survived a lenient table read, each with its 1-based line
/// number, plus the rows that did not.
#[derive(Debug, Clone)]
pub struct LenientTable<T> {
    /// Successfully parsed rows as `(line number, row)` pairs.
    pub rows: Vec<(usize, T)>,
    /// Rows that failed to parse, with the reason and raw text.
    pub quarantined: Vec<QuarantinedRow>,
}

fn read_table_lenient<T>(
    text: &str,
    header: &str,
    table: &'static str,
    parse_row: impl Fn(&str, usize) -> Result<T, CsvError>,
) -> Result<LenientTable<T>, CsvError> {
    let mut lines = text.lines().enumerate();
    check_header(&mut lines, header, table)?;
    let mut rows = Vec::new();
    let mut quarantined = Vec::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let line_no = i + 1;
        match parse_row(line, line_no) {
            Ok(row) => rows.push((line_no, row)),
            Err(e) => quarantined.push(QuarantinedRow {
                table,
                line: line_no,
                field: e.field,
                reason: e.message,
                raw: line.to_string(),
            }),
        }
    }
    Ok(LenientTable { rows, quarantined })
}

/// Parses an avail table CSV (as produced by [`write_avails`]), failing
/// on the first malformed row.
pub fn read_avails(text: &str) -> Result<Vec<Avail>, CsvError> {
    read_table(text, AVAIL_HEADER, "avail", parse_avail_row)
}

/// Parses an RCC table CSV (as produced by [`write_rccs`]), failing on
/// the first malformed row.
pub fn read_rccs(text: &str) -> Result<Vec<Rcc>, CsvError> {
    read_table(text, RCC_HEADER, "RCC", parse_rcc_row)
}

/// Lenient counterpart of [`read_avails`]: malformed rows are quarantined
/// instead of aborting the extract. Header problems are still fatal.
pub fn read_avails_lenient(text: &str) -> Result<LenientTable<Avail>, CsvError> {
    read_table_lenient(text, AVAIL_HEADER, "avail", parse_avail_row)
}

/// Lenient counterpart of [`read_rccs`].
pub fn read_rccs_lenient(text: &str) -> Result<LenientTable<Rcc>, CsvError> {
    read_table_lenient(text, RCC_HEADER, "RCC", parse_rcc_row)
}

/// Serializes both tables and reassembles a [`Dataset`] from the pair.
pub fn read_dataset(avail_csv: &str, rcc_csv: &str) -> Result<Dataset, CsvError> {
    Ok(Dataset::new(read_avails(avail_csv)?, read_rccs(rcc_csv)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    fn small() -> Dataset {
        generate(&GeneratorConfig { n_avails: 15, target_rccs: 600, scale: 1, seed: 31 })
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = small();
        let back = read_dataset(&write_avails(&ds), &write_rccs(&ds)).unwrap();
        assert_eq!(back.avails(), ds.avails());
        assert_eq!(back.rccs(), ds.rccs());
    }

    #[test]
    fn ongoing_avails_roundtrip_with_empty_end() {
        let ds = small();
        let victim = ds.avails()[2].id;
        let as_of = ds.avails()[2].actual_start + 30;
        let (censored, _) = crate::generator::censor_ongoing(&ds, &[victim], as_of);
        let text = write_avails(&censored);
        let back = read_avails(&text).unwrap();
        let a = back.iter().find(|a| a.id == victim).unwrap();
        assert_eq!(a.actual_end, None);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(read_avails("nope\n1,2,3").is_err());
        assert!(read_rccs("").is_err());
    }

    #[test]
    fn structural_errors_render_without_line_zero() {
        let e = read_avails("nope\n").unwrap_err();
        assert!(e.is_structural());
        let s = e.to_string();
        assert!(s.starts_with("CSV structure:"), "{s}");
        assert!(!s.contains("line 0"), "{s}");
        // The offending header text is included for the operator.
        assert!(s.contains("\"nope\""), "{s}");
        assert!(s.contains("avail_id"), "expected header named in {s}");

        let empty = read_rccs("").unwrap_err();
        assert!(empty.is_structural());
        assert!(empty.to_string().contains("empty input"), "{empty}");
    }

    #[test]
    fn reports_line_numbers() {
        let mut text = String::from(AVAIL_HEADER);
        text.push_str("\n1,2,1/1/20,6/1/20,1/1/20,,0,0,10.0,1,5.0\nbad,row\n");
        let e = read_avails(&text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("expected 11 fields"));
        assert!(!e.is_structural());
    }

    #[test]
    fn rejects_bad_values_naming_the_field() {
        let mut text = String::from(RCC_HEADER);
        text.push('\n');
        text.push_str("1,5,G,434-11-001,3/22/20,6/16/20,notanumber\n");
        let e = read_rccs(&text).unwrap_err();
        assert_eq!(e.field, Some("amount"));
        assert!(e.to_string().contains("field amount"), "{e}");
        let mut text2 = String::from(RCC_HEADER);
        text2.push('\n');
        text2.push_str("1,5,ZZ,434-11-001,3/22/20,6/16/20,5.0\n");
        assert_eq!(read_rccs(&text2).unwrap_err().field, Some("rcc_type"));
    }

    #[test]
    fn rejects_non_finite_amounts() {
        for bad in ["NaN", "inf", "-inf"] {
            let text = format!("{RCC_HEADER}\n1,5,G,434-11-001,3/22/20,6/16/20,{bad}\n");
            let e = read_rccs(&text).unwrap_err();
            assert_eq!(e.field, Some("amount"), "{bad}: {e}");
        }
        let text = format!("{AVAIL_HEADER}\n1,2,1/1/20,6/1/20,1/1/20,,0,0,NaN,1,5.0\n");
        assert_eq!(read_avails(&text).unwrap_err().field, Some("ship_age_years"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let ds = small();
        let mut text = write_avails(&ds);
        text.push_str("\n\n");
        assert_eq!(read_avails(&text).unwrap().len(), ds.avails().len());
    }

    #[test]
    fn lenient_keeps_good_rows_and_quarantines_bad_ones() {
        let mut text = String::from(AVAIL_HEADER);
        text.push_str("\n1,2,1/1/20,6/1/20,1/1/20,,0,0,10.0,1,5.0\n");
        text.push_str("bad,row\n");
        text.push_str("3,4,2/1/20,8/1/20,2/1/20,9/1/20,1,1,12.0,0,0.0\n");
        text.push_str("4,4,2/1/20,8/1/20,2/1/20,9/1/20,1,1,twelve,0,0.0\n");
        let out = read_avails_lenient(&text).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0].0, 2); // line numbers preserved
        assert_eq!(out.rows[1].0, 4);
        assert_eq!(out.quarantined.len(), 2);
        assert_eq!(out.quarantined[0].line, 3);
        assert_eq!(out.quarantined[0].raw, "bad,row");
        assert_eq!(out.quarantined[1].field, Some("ship_age_years"));
    }

    #[test]
    fn lenient_still_rejects_structural_problems() {
        assert!(read_avails_lenient("totally,wrong,header\n1,2,3\n")
            .unwrap_err()
            .is_structural());
        assert!(read_rccs_lenient("").unwrap_err().is_structural());
    }

    #[test]
    fn lenient_on_clean_extract_quarantines_nothing() {
        let ds = small();
        let out = read_rccs_lenient(&write_rccs(&ds)).unwrap();
        assert!(out.quarantined.is_empty());
        assert_eq!(out.rows.len(), ds.rccs().len());
    }
}
