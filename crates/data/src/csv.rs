//! CSV interchange for the two NMD tables.
//!
//! The deployed pipeline "uses obfuscated data for training and then
//! retrains on raw data in the Navy environment without human intervention"
//! (Abstract) — i.e. the same code must ingest whatever avail/RCC extracts
//! the environment provides. This module writes and parses the two tables
//! in a plain CSV layout (no quoting needed: every field is numeric, a
//! date, or a code), so a deployment can swap the synthetic generator for
//! real extracts without touching the pipeline.

use crate::avail::{Avail, AvailId, ShipId, StaticAttrs};
use crate::dataset::Dataset;
use crate::date::Date;
use crate::rcc::{Rcc, RccId, RccType, Swlin};
use std::fmt::Write as _;

/// Header of the avail table CSV.
pub const AVAIL_HEADER: &str = "avail_id,ship_id,plan_start,plan_end,actual_start,actual_end,\
ship_class,rmc_id,ship_age_years,prior_avail_count,prior_avg_delay";

/// Header of the RCC table CSV.
pub const RCC_HEADER: &str = "rcc_id,avail_id,rcc_type,swlin,created,settled,amount";

/// Error produced when parsing a CSV extract.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvError {
    /// 1-based line number (0 for structural problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

fn err(line: usize, message: impl Into<String>) -> CsvError {
    CsvError { line, message: message.into() }
}

/// Serializes the avail table.
pub fn write_avails(dataset: &Dataset) -> String {
    let mut out = String::with_capacity(64 * dataset.avails().len());
    out.push_str(AVAIL_HEADER);
    out.push('\n');
    for a in dataset.avails() {
        let actual_end = a.actual_end.map(|d| d.to_string()).unwrap_or_default();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{}",
            a.id.0,
            a.ship.0,
            a.plan_start,
            a.plan_end,
            a.actual_start,
            actual_end,
            a.statics.ship_class,
            a.statics.rmc_id,
            a.statics.ship_age_years,
            a.statics.prior_avail_count,
            a.statics.prior_avg_delay,
        );
    }
    out
}

/// Serializes the RCC table.
pub fn write_rccs(dataset: &Dataset) -> String {
    let mut out = String::with_capacity(48 * dataset.rccs().len());
    out.push_str(RCC_HEADER);
    out.push('\n');
    for r in dataset.rccs() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            r.id.0, r.avail.0, r.rcc_type, r.swlin, r.created, r.settled, r.amount,
        );
    }
    out
}

fn fields(line: &str, want: usize, line_no: usize) -> Result<Vec<&str>, CsvError> {
    let f: Vec<&str> = line.split(',').collect();
    if f.len() != want {
        return Err(err(line_no, format!("expected {want} fields, got {}", f.len())));
    }
    Ok(f)
}

fn parse<T: std::str::FromStr>(s: &str, what: &str, line_no: usize) -> Result<T, CsvError>
where
    T::Err: std::fmt::Display,
{
    s.trim().parse().map_err(|e| err(line_no, format!("bad {what} {s:?}: {e}")))
}

/// Parses an avail table CSV (as produced by [`write_avails`]).
pub fn read_avails(text: &str) -> Result<Vec<Avail>, CsvError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == AVAIL_HEADER => {}
        _ => return Err(err(0, "missing or wrong avail header")),
    }
    let mut out = Vec::new();
    for (i, line) in lines {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let f = fields(line, 11, line_no)?;
        let actual_end: Option<Date> = if f[5].trim().is_empty() {
            None
        } else {
            Some(parse(f[5], "actual_end", line_no)?)
        };
        out.push(Avail {
            id: AvailId(parse(f[0], "avail_id", line_no)?),
            ship: ShipId(parse(f[1], "ship_id", line_no)?),
            plan_start: parse(f[2], "plan_start", line_no)?,
            plan_end: parse(f[3], "plan_end", line_no)?,
            actual_start: parse(f[4], "actual_start", line_no)?,
            actual_end,
            statics: StaticAttrs {
                ship_class: parse(f[6], "ship_class", line_no)?,
                rmc_id: parse(f[7], "rmc_id", line_no)?,
                ship_age_years: parse(f[8], "ship_age_years", line_no)?,
                prior_avail_count: parse(f[9], "prior_avail_count", line_no)?,
                prior_avg_delay: parse(f[10], "prior_avg_delay", line_no)?,
            },
        });
    }
    Ok(out)
}

/// Parses an RCC table CSV (as produced by [`write_rccs`]).
pub fn read_rccs(text: &str) -> Result<Vec<Rcc>, CsvError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == RCC_HEADER => {}
        _ => return Err(err(0, "missing or wrong RCC header")),
    }
    let mut out = Vec::new();
    for (i, line) in lines {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let f = fields(line, 7, line_no)?;
        let rcc_type: RccType =
            f[2].trim().parse().map_err(|e| err(line_no, format!("bad rcc_type: {e}")))?;
        let swlin: Swlin =
            f[3].trim().parse().map_err(|e| err(line_no, format!("bad swlin: {e}")))?;
        out.push(Rcc {
            id: RccId(parse(f[0], "rcc_id", line_no)?),
            avail: AvailId(parse(f[1], "avail_id", line_no)?),
            rcc_type,
            swlin,
            created: parse(f[4], "created", line_no)?,
            settled: parse(f[5], "settled", line_no)?,
            amount: parse(f[6], "amount", line_no)?,
        });
    }
    Ok(out)
}

/// Serializes both tables and reassembles a [`Dataset`] from the pair.
pub fn read_dataset(avail_csv: &str, rcc_csv: &str) -> Result<Dataset, CsvError> {
    Ok(Dataset::new(read_avails(avail_csv)?, read_rccs(rcc_csv)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    fn small() -> Dataset {
        generate(&GeneratorConfig { n_avails: 15, target_rccs: 600, scale: 1, seed: 31 })
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = small();
        let back = read_dataset(&write_avails(&ds), &write_rccs(&ds)).unwrap();
        assert_eq!(back.avails(), ds.avails());
        assert_eq!(back.rccs(), ds.rccs());
    }

    #[test]
    fn ongoing_avails_roundtrip_with_empty_end() {
        let ds = small();
        let victim = ds.avails()[2].id;
        let as_of = ds.avails()[2].actual_start + 30;
        let (censored, _) = crate::generator::censor_ongoing(&ds, &[victim], as_of);
        let text = write_avails(&censored);
        let back = read_avails(&text).unwrap();
        let a = back.iter().find(|a| a.id == victim).unwrap();
        assert_eq!(a.actual_end, None);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(read_avails("nope\n1,2,3").is_err());
        assert!(read_rccs("").is_err());
    }

    #[test]
    fn reports_line_numbers() {
        let mut text = String::from(AVAIL_HEADER);
        text.push_str("\n1,2,1/1/20,6/1/20,1/1/20,,0,0,10.0,1,5.0\nbad,row\n");
        let e = read_avails(&text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("expected 11 fields"));
    }

    #[test]
    fn rejects_bad_values() {
        let mut text = String::from(RCC_HEADER);
        text.push('\n');
        text.push_str("1,5,G,434-11-001,3/22/20,6/16/20,notanumber\n");
        let e = read_rccs(&text).unwrap_err();
        assert!(e.message.contains("bad amount"));
        let mut text2 = String::from(RCC_HEADER);
        text2.push('\n');
        text2.push_str("1,5,ZZ,434-11-001,3/22/20,6/16/20,5.0\n");
        assert!(read_rccs(&text2).unwrap_err().message.contains("rcc_type"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let ds = small();
        let mut text = write_avails(&ds);
        text.push_str("\n\n");
        assert_eq!(read_avails(&text).unwrap().len(), ds.avails().len());
    }
}
