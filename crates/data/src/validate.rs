//! Ingest validation for NMD extracts.
//!
//! The deployed pipeline retrains on raw extracts "without human
//! intervention", so malformed rows must be caught — and explained — at
//! ingest rather than surfacing as NaNs three stages later. The checker
//! walks both tables and reports every violated invariant with the
//! offending row.

use crate::avail::AvailId;
use crate::dataset::Dataset;
use crate::hash::FxHashMap;
use std::fmt;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Data is unusable for modeling (e.g. broken referential integrity).
    Error,
    /// Suspicious but tolerable (e.g. an extreme value).
    Warning,
}

/// One validation finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// How bad it is.
    pub severity: Severity,
    /// Which invariant was violated.
    pub rule: &'static str,
    /// Human-readable description including the offending row.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Error => "ERROR",
            Severity::Warning => "WARN ",
        };
        write!(f, "[{tag}] {}: {}", self.rule, self.detail)
    }
}

/// Result of validating a dataset.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// All findings, errors first.
    pub findings: Vec<Finding>,
}

impl ValidationReport {
    /// True when no error-severity findings exist.
    pub fn is_usable(&self) -> bool {
        self.findings.iter().all(|f| f.severity != Severity::Error)
    }

    /// Count by severity.
    pub fn counts(&self) -> (usize, usize) {
        let errors = self.findings.iter().filter(|f| f.severity == Severity::Error).count();
        (errors, self.findings.len() - errors)
    }

    fn push(&mut self, severity: Severity, rule: &'static str, detail: String) {
        self.findings.push(Finding { severity, rule, detail });
    }
}

/// Validates both NMD tables. Invariants checked:
///
/// * avail ids unique; planned/actual windows well-formed
///   (`planE > planS`, `actE >= actS` when closed);
/// * planned durations within a sane range (30 days .. 5 years — outside
///   is a warning, not an error);
/// * RCCs reference existing avails; `settled >= created`; non-negative
///   amounts;
/// * RCC dates fall inside a generous horizon around their avail
///   (creation before 3x planned duration past the start is a warning).
pub fn validate(dataset: &Dataset) -> ValidationReport {
    let mut report = ValidationReport::default();

    // --- avail table -------------------------------------------------------
    // Doubles as the id → row index for the RCC reference checks below —
    // `Dataset::avail` is a linear scan, far too slow per-RCC at full
    // extract size.
    let mut seen: FxHashMap<AvailId, usize> =
        FxHashMap::with_capacity_and_hasher(dataset.avails().len(), Default::default());
    for (i, a) in dataset.avails().iter().enumerate() {
        if let Some(prev) = seen.insert(a.id, i) {
            report.push(
                Severity::Error,
                "avail-id-unique",
                format!("avail {} appears at rows {prev} and {i}", a.id),
            );
        }
        if a.plan_end - a.plan_start <= 0 {
            report.push(
                Severity::Error,
                "planned-window",
                format!("avail {}: plan_end {} not after plan_start {}", a.id, a.plan_end, a.plan_start),
            );
        } else {
            let planned = a.planned_duration();
            if !(30..=5 * 365).contains(&planned) {
                report.push(
                    Severity::Warning,
                    "planned-duration-range",
                    format!("avail {}: planned duration {planned} days is unusual", a.id),
                );
            }
        }
        if let Some(end) = a.actual_end {
            if end < a.actual_start {
                report.push(
                    Severity::Error,
                    "actual-window",
                    format!("avail {}: actual_end {} before actual_start {}", a.id, end, a.actual_start),
                );
            }
        }
        if !a.statics.ship_age_years.is_finite() || !a.statics.prior_avg_delay.is_finite() {
            report.push(
                Severity::Error,
                "statics-finite",
                format!(
                    "avail {}: non-finite statics (ship age {}, prior avg delay {})",
                    a.id, a.statics.ship_age_years, a.statics.prior_avg_delay
                ),
            );
        } else if a.statics.ship_age_years < 0.0 || a.statics.ship_age_years > 80.0 {
            report.push(
                Severity::Warning,
                "ship-age-range",
                format!("avail {}: ship age {} years", a.id, a.statics.ship_age_years),
            );
        }
    }

    // --- RCC table ----------------------------------------------------------
    for r in dataset.rccs() {
        let Some(a) = seen.get(&r.avail).map(|&i| &dataset.avails()[i]) else {
            report.push(
                Severity::Error,
                "rcc-avail-ref",
                format!("RCC {} references unknown avail {}", r.id.0, r.avail),
            );
            continue;
        };
        if r.settled < r.created {
            report.push(
                Severity::Error,
                "rcc-window",
                format!("RCC {} settled {} before created {}", r.id.0, r.settled, r.created),
            );
        }
        if !r.amount.is_finite() {
            report.push(
                Severity::Error,
                "rcc-amount-finite",
                format!("RCC {} has non-finite amount {}", r.id.0, r.amount),
            );
        } else if r.amount < 0.0 {
            report.push(
                Severity::Error,
                "rcc-amount",
                format!("RCC {} has negative amount {}", r.id.0, r.amount),
            );
        } else if r.amount > 50_000_000.0 {
            report.push(
                Severity::Warning,
                "rcc-amount-range",
                format!("RCC {} amount ${:.0} is extreme", r.id.0, r.amount),
            );
        }
        let planned = a.planned_duration().max(1);
        if r.created < a.actual_start + (-planned) || r.created > a.actual_start + planned * 3 {
            report.push(
                Severity::Warning,
                "rcc-horizon",
                format!(
                    "RCC {} created {} far outside avail {}'s execution window",
                    r.id.0, r.created, a.id
                ),
            );
        }
    }

    report.findings.sort_by_key(|f| match f.severity {
        Severity::Error => 0,
        Severity::Warning => 1,
    });
    report
}

impl Dataset {
    /// Validates this dataset against every semantic invariant — the
    /// method form of [`validate`], for call sites that already hold a
    /// [`Dataset`] (the CLI and the fault-injection harness).
    pub fn validate(&self) -> ValidationReport {
        validate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avail::{Avail, ShipId, StaticAttrs};
    use crate::date::Date;
    use crate::generator::{generate, GeneratorConfig};
    use crate::rcc::{Rcc, RccId, RccType};

    #[test]
    fn generated_data_is_clean() {
        let ds = generate(&GeneratorConfig { n_avails: 40, target_rccs: 3000, scale: 1, seed: 9 });
        let report = validate(&ds);
        let (errors, _) = report.counts();
        assert_eq!(errors, 0, "{:?}", report.findings.first());
        assert!(report.is_usable());
    }

    fn base_avail(id: u32) -> Avail {
        let s = Date::from_ymd(2020, 1, 1).unwrap();
        Avail {
            id: AvailId(id),
            ship: ShipId(1),
            plan_start: s,
            plan_end: s + 300,
            actual_start: s,
            actual_end: Some(s + 320),
            statics: StaticAttrs {
                ship_class: 0,
                rmc_id: 0,
                ship_age_years: 15.0,
                prior_avail_count: 1,
                prior_avg_delay: 5.0,
            },
        }
    }

    #[test]
    fn detects_duplicate_ids_and_bad_windows() {
        let mut a = base_avail(1);
        let b = base_avail(1); // duplicate id
        a.plan_end = a.plan_start; // empty planned window
        let ds = Dataset::new(vec![a, b], vec![]);
        let report = validate(&ds);
        assert!(!report.is_usable());
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"avail-id-unique"));
        assert!(rules.contains(&"planned-window"));
    }

    #[test]
    fn detects_broken_rcc_references_and_windows() {
        let a = base_avail(1);
        let good_date = a.plan_start + 10;
        let rccs = vec![
            Rcc {
                id: RccId(1),
                avail: AvailId(99), // dangling
                rcc_type: RccType::Growth,
                swlin: "123-45-678".parse().unwrap(),
                created: good_date,
                settled: good_date + 5,
                amount: 100.0,
            },
            Rcc {
                id: RccId(2),
                avail: AvailId(1),
                rcc_type: RccType::Growth,
                swlin: "123-45-678".parse().unwrap(),
                created: good_date,
                settled: good_date + (-3), // settles before creation
                amount: -5.0,              // negative amount
            },
        ];
        let report = validate(&Dataset::new(vec![a], rccs));
        assert!(!report.is_usable());
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"rcc-avail-ref"));
        assert!(rules.contains(&"rcc-window"));
        assert!(rules.contains(&"rcc-amount"));
    }

    #[test]
    fn warnings_do_not_block_usability() {
        let mut a = base_avail(1);
        a.plan_end = a.plan_start + 10; // unusually short: warning only
        let report = validate(&Dataset::new(vec![a], vec![]));
        assert!(report.is_usable());
        let (errors, warnings) = report.counts();
        assert_eq!(errors, 0);
        assert!(warnings >= 1);
        assert!(report.findings[0].to_string().contains("WARN"));
    }

    #[test]
    fn detects_non_finite_values() {
        let mut a = base_avail(1);
        a.statics.ship_age_years = f64::NAN;
        let r = Rcc {
            id: RccId(1),
            avail: AvailId(1),
            rcc_type: RccType::Growth,
            swlin: "123-45-678".parse().unwrap(),
            created: a.plan_start + 10,
            settled: a.plan_start + 15,
            amount: f64::INFINITY,
        };
        let report = Dataset::new(vec![a], vec![r]).validate();
        assert!(!report.is_usable());
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"statics-finite"), "{rules:?}");
        assert!(rules.contains(&"rcc-amount-finite"), "{rules:?}");
    }

    #[test]
    fn errors_sort_before_warnings() {
        let mut a = base_avail(1);
        a.plan_end = a.plan_start + 10; // warning
        let mut b = base_avail(2);
        b.actual_end = Some(b.actual_start + (-5)); // error
        let report = validate(&Dataset::new(vec![a, b], vec![]));
        assert_eq!(report.findings[0].severity, Severity::Error);
    }
}
