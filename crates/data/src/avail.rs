//! Availability ("avail") schema — Section 2 of the paper.
//!
//! Each maintenance period is `a_i = <i, planS, planE, actS, actE>` plus the
//! static attributes used by the modeling pipeline. Delay is defined on
//! *durations*, not end dates, so a late-starting avail that still takes its
//! planned number of days has zero delay (Table 1, avail 5).

use crate::date::Date;
use crate::logical_time::{logical_time, LogicalTime};

/// Identifier of an availability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AvailId(pub u32);

/// Identifier of a ship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShipId(pub u32);

impl std::fmt::Display for AvailId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "A{}", self.0)
    }
}

impl std::fmt::Display for ShipId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Execution status of an avail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AvailStatus {
    /// Maintenance still executing: no actual end date, delay unknown.
    Ongoing,
    /// Maintenance concluded: actual end date known, delay measurable.
    Closed,
}

/// Static (time-invariant) attributes of an avail, `F_i^S` in the paper.
///
/// The paper reports 8 static features "such as ship class, RMC id, ship
/// age, etc."; this struct carries the concrete set this reproduction uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticAttrs {
    /// Ship class (e.g. destroyer vs cruiser hull family), small categorical.
    pub ship_class: u8,
    /// Regional Maintenance Center executing the avail, small categorical.
    pub rmc_id: u8,
    /// Ship age in years at planned start.
    pub ship_age_years: f64,
    /// Number of prior avails recorded for this ship.
    pub prior_avail_count: u32,
    /// Mean delay (days) over this ship's prior avails; 0 when none.
    pub prior_avg_delay: f64,
}

/// One maintenance availability.
#[derive(Debug, Clone, PartialEq)]
pub struct Avail {
    /// Identifier `i`.
    pub id: AvailId,
    /// Ship undergoing maintenance.
    pub ship: ShipId,
    /// Planned start date `t_i^planS`.
    pub plan_start: Date,
    /// Planned end date `t_i^planE`.
    pub plan_end: Date,
    /// Actual start date `t_i^actS`.
    pub actual_start: Date,
    /// Actual end date `t_i^actE`; `None` while the avail is ongoing.
    pub actual_end: Option<Date>,
    /// Static attributes `F_i^S`.
    pub statics: StaticAttrs,
}

impl Avail {
    /// Execution status derived from the presence of an actual end date.
    pub fn status(&self) -> AvailStatus {
        if self.actual_end.is_some() {
            AvailStatus::Closed
        } else {
            AvailStatus::Ongoing
        }
    }

    /// Planned duration `s_i^plan = planE − planS` in days.
    pub fn planned_duration(&self) -> i32 {
        self.plan_end - self.plan_start
    }

    /// Actual duration `s_i^act = actE − actS` in days; `None` while ongoing.
    pub fn actual_duration(&self) -> Option<i32> {
        self.actual_end.map(|e| e - self.actual_start)
    }

    /// Delay `d_i = s_i^act − s_i^plan` in days (Section 2). Positive when
    /// tardy, zero when on plan, negative when early. `None` while ongoing.
    pub fn delay(&self) -> Option<i32> {
        self.actual_duration().map(|a| a - self.planned_duration())
    }

    /// Logical time `t*` of physical date `t` for this avail (Equation 1).
    pub fn logical_time_of(&self, t: Date) -> LogicalTime {
        logical_time(t, self.actual_start, self.planned_duration())
    }

    /// The logical time at which this avail actually concluded
    /// (100% + delay as a fraction of planned duration); `None` while ongoing.
    pub fn final_logical_time(&self) -> Option<LogicalTime> {
        self.actual_end.map(|e| self.logical_time_of(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_avail(
        id: u32,
        plan_s: &str,
        plan_e: &str,
        act_s: &str,
        act_e: Option<&str>,
    ) -> Avail {
        Avail {
            id: AvailId(id),
            ship: ShipId(60),
            plan_start: plan_s.parse().unwrap(),
            plan_end: plan_e.parse().unwrap(),
            actual_start: act_s.parse().unwrap(),
            actual_end: act_e.map(|s| s.parse().unwrap()),
            statics: StaticAttrs {
                ship_class: 1,
                rmc_id: 2,
                ship_age_years: 21.0,
                prior_avail_count: 3,
                prior_avg_delay: 12.0,
            },
        }
    }

    #[test]
    fn paper_table1_row2_delay_405() {
        let a = toy_avail(2, "5/7/19", "4/11/20", "5/7/19", Some("5/21/21"));
        assert_eq!(a.planned_duration(), 340);
        assert_eq!(a.actual_duration(), Some(745));
        assert_eq!(a.delay(), Some(405));
        assert_eq!(a.status(), AvailStatus::Closed);
    }

    #[test]
    fn paper_table1_row3_on_time() {
        let a = toy_avail(3, "7/18/18", "6/11/19", "7/18/18", Some("6/11/19"));
        assert_eq!(a.delay(), Some(0));
    }

    #[test]
    fn paper_table1_row5_negative_delay_despite_late_start() {
        // Started 27 days late but finished on the planned end date:
        // the duration-based definition yields a *negative* delay.
        let a = toy_avail(5, "1/31/20", "8/19/20", "2/27/20", Some("8/19/20"));
        assert_eq!(a.delay(), Some(-27));
    }

    #[test]
    fn ongoing_has_no_delay() {
        let a = toy_avail(1, "8/20/23", "12/4/24", "8/20/23", None);
        assert_eq!(a.status(), AvailStatus::Ongoing);
        assert_eq!(a.delay(), None);
        assert_eq!(a.actual_duration(), None);
        assert_eq!(a.final_logical_time(), None);
    }

    #[test]
    fn final_logical_time_exceeds_100_for_tardy_avail() {
        let a = toy_avail(2, "5/7/19", "4/11/20", "5/7/19", Some("5/21/21"));
        let f = a.final_logical_time().unwrap();
        assert!((f - 100.0 * 745.0 / 340.0).abs() < 1e-9);
        assert!(f > 200.0);
    }

    #[test]
    fn display_ids() {
        assert_eq!(AvailId(7).to_string(), "A7");
        assert_eq!(ShipId(1565).to_string(), "S1565");
    }
}
