//! Request for Contract Change (RCC) schema — Section 2 of the paper.
//!
//! An RCC is `r_j = <j, a_i, w_j, t_j^s, t_j^e, m_j>`: identifier with type,
//! owning avail, 8-digit hierarchical SWLIN code, creation date, settled
//! date, and settled dollar amount. The SWLIN's first digit names the general
//! ship subsystem, with each subsequent digit narrowing to a more specific
//! module (Figure 1).

use crate::avail::AvailId;
use crate::date::Date;
use std::fmt;
use std::str::FromStr;

/// Identifier of an RCC within its avail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RccId(pub u32);

/// The three RCC categories (Growth / New Work / New Growth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RccType {
    /// `G` — upgrades an existing system.
    Growth,
    /// `N`/`NW` — creates a new system.
    NewWork,
    /// `NG` — adds a distinct component.
    NewGrowth,
}

impl RccType {
    /// All variants, in display order.
    pub const ALL: [RccType; 3] = [RccType::Growth, RccType::NewWork, RccType::NewGrowth];

    /// Short code used in feature names ("G1-AVG_SETTLED_AMT" style).
    pub fn code(self) -> &'static str {
        match self {
            RccType::Growth => "G",
            RccType::NewWork => "N",
            RccType::NewGrowth => "NG",
        }
    }

    /// Dense index (0..3) for array-backed group-by structures.
    pub fn index(self) -> usize {
        match self {
            RccType::Growth => 0,
            RccType::NewWork => 1,
            RccType::NewGrowth => 2,
        }
    }
}

impl fmt::Display for RccType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

impl FromStr for RccType {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "G" => Ok(RccType::Growth),
            "N" | "NW" => Ok(RccType::NewWork),
            "NG" => Ok(RccType::NewGrowth),
            other => Err(format!("unknown RCC type {other:?}")),
        }
    }
}

/// An 8-digit hierarchical SWLIN code identifying a physical location on the
/// ship (Figure 1). The canonical textual form groups digits as
/// `DDD-DD-DDD`, e.g. `434-11-001`.
///
/// ```
/// use domd_data::rcc::Swlin;
/// let w: Swlin = "434-11-001".parse().unwrap();
/// assert_eq!(w.digit(1), 4); // general subsystem
/// assert_eq!(w.prefix(3), 434);
/// assert_eq!(w.to_string(), "434-11-001");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Swlin(u32);

impl Swlin {
    /// Builds a SWLIN from its 8 decimal digits packed as a number in
    /// `[0, 99_999_999]`.
    pub fn from_packed(packed: u32) -> Result<Self, String> {
        if packed > 99_999_999 {
            return Err(format!("SWLIN must be 8 decimal digits, got {packed}"));
        }
        Ok(Swlin(packed))
    }

    /// The packed 8-digit value.
    pub fn packed(self) -> u32 {
        self.0
    }

    /// The `level`-th digit (1-based from the most significant / most
    /// general). Level 1 is the general ship subsystem.
    pub fn digit(self, level: u32) -> u8 {
        assert!((1..=8).contains(&level), "SWLIN level must be 1..=8");
        ((self.0 / 10u32.pow(8 - level)) % 10) as u8
    }

    /// The numeric value of the first `len` digits — the hierarchy node this
    /// code sits under at depth `len`. `prefix(8)` is the full code.
    pub fn prefix(self, len: u32) -> u32 {
        assert!((1..=8).contains(&len), "SWLIN prefix length must be 1..=8");
        self.0 / 10u32.pow(8 - len)
    }

    /// True when `self` lies in the subtree rooted at the hierarchy node
    /// given by `prefix` of length `len`.
    pub fn has_prefix(self, prefix: u32, len: u32) -> bool {
        self.prefix(len) == prefix
    }
}

impl fmt::Display for Swlin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0;
        write!(f, "{:03}-{:02}-{:03}", d / 100_000, (d / 1000) % 100, d % 1000)
    }
}

impl FromStr for Swlin {
    type Err = String;

    /// Parses `DDD-DD-DDD` or a bare 8-digit string.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits: String = s.chars().filter(|c| c.is_ascii_digit()).collect();
        let seps: usize = s.chars().filter(|&c| c == '-').count();
        if digits.len() != 8 || (s.len() != digits.len() + seps) {
            return Err(format!("SWLIN must contain exactly 8 digits: {s:?}"));
        }
        let packed: u32 = digits.parse().map_err(|_| format!("bad SWLIN {s:?}"))?;
        Swlin::from_packed(packed)
    }
}

/// A Request for Contract Change.
#[derive(Debug, Clone, PartialEq)]
pub struct Rcc {
    /// Identifier `j`.
    pub id: RccId,
    /// Owning avail `a_i`.
    pub avail: AvailId,
    /// Category (G / NW / NG).
    pub rcc_type: RccType,
    /// SWLIN code `w_j`.
    pub swlin: Swlin,
    /// Creation date `t_j^s` — when the RCC begins.
    pub created: Date,
    /// Settled date `t_j^e` — when the RCC ends.
    pub settled: Date,
    /// Settled amount `m_j` in dollars.
    pub amount: f64,
}

impl Rcc {
    /// Duration of the RCC in days (`settled − created`, ≥ 0 for valid rows).
    pub fn duration_days(&self) -> i32 {
        self.settled - self.created
    }
}

/// Status of an RCC relative to a logical timestamp `t*`
/// (Equations 3–6: active / settled / created / not-created).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RccStatus {
    /// `created ≤ t* < settled`: work in flight at `t*` (point/stab query).
    Active,
    /// `settled ≤ t*`: work concluded by `t*`.
    Settled,
    /// `created ≤ t*`: union of active and settled.
    Created,
    /// `created > t*`: not yet raised at `t*`.
    NotCreated,
}

impl RccStatus {
    /// The three statuses used by feature generation (NotCreated rows carry
    /// no signal about the past and are excluded from Status Query results).
    pub const FEATURE_STATUSES: [RccStatus; 3] =
        [RccStatus::Active, RccStatus::Settled, RccStatus::Created];

    /// Short code used in feature names.
    pub fn code(self) -> &'static str {
        match self {
            RccStatus::Active => "ACT",
            RccStatus::Settled => "SET",
            RccStatus::Created => "CRE",
            RccStatus::NotCreated => "NC",
        }
    }
}

/// Evaluates the status predicate of Equations 3–6 directly on logical
/// start/end positions. This is the semantic ground truth the index
/// structures in `domd-index` must agree with.
pub fn status_at(logical_start: f64, logical_end: f64, t_star: f64) -> RccStatus {
    if logical_start > t_star {
        RccStatus::NotCreated
    } else if logical_end <= t_star {
        RccStatus::Settled
    } else {
        RccStatus::Active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swlin_parse_display_roundtrip() {
        for s in ["434-11-001", "911-90-001", "804-11-001", "983-11-001", "565-11-001"] {
            let w: Swlin = s.parse().unwrap();
            assert_eq!(w.to_string(), s);
        }
    }

    #[test]
    fn swlin_digits_and_prefixes() {
        let w: Swlin = "434-11-001".parse().unwrap();
        assert_eq!(w.digit(1), 4);
        assert_eq!(w.digit(2), 3);
        assert_eq!(w.digit(3), 4);
        assert_eq!(w.digit(4), 1);
        assert_eq!(w.digit(8), 1);
        assert_eq!(w.prefix(1), 4);
        assert_eq!(w.prefix(3), 434);
        assert_eq!(w.prefix(5), 43411);
        assert_eq!(w.prefix(8), 43411001);
        assert!(w.has_prefix(4, 1));
        assert!(w.has_prefix(434, 3));
        assert!(!w.has_prefix(5, 1));
    }

    #[test]
    fn swlin_leading_zeros_preserved() {
        let w: Swlin = "004-11-001".parse().unwrap();
        assert_eq!(w.digit(1), 0);
        assert_eq!(w.to_string(), "004-11-001");
    }

    #[test]
    fn swlin_rejects_bad_input() {
        assert!("12-34".parse::<Swlin>().is_err());
        assert!("123-45-67x".parse::<Swlin>().is_err());
        assert!("123456789".parse::<Swlin>().is_err()); // 9 digits
        assert!(Swlin::from_packed(100_000_000).is_err());
    }

    #[test]
    fn rcc_type_parse_and_codes() {
        assert_eq!("G".parse::<RccType>().unwrap(), RccType::Growth);
        assert_eq!("N".parse::<RccType>().unwrap(), RccType::NewWork);
        assert_eq!("NW".parse::<RccType>().unwrap(), RccType::NewWork);
        assert_eq!("NG".parse::<RccType>().unwrap(), RccType::NewGrowth);
        assert!("X".parse::<RccType>().is_err());
        assert_eq!(RccType::NewGrowth.code(), "NG");
        let idx: Vec<usize> = RccType::ALL.iter().map(|t| t.index()).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn paper_table3_first_rcc() {
        // r_1G of avail 5: created 3/22/20, settled 6/16/20, 434-11-001, $8000.
        let r = Rcc {
            id: RccId(1),
            avail: AvailId(5),
            rcc_type: RccType::Growth,
            swlin: "434-11-001".parse().unwrap(),
            created: "3/22/20".parse().unwrap(),
            settled: "6/16/20".parse().unwrap(),
            amount: 8000.0,
        };
        assert_eq!(r.duration_days(), 86);
    }

    #[test]
    fn status_predicate_semantics() {
        // Logical interval [20, 60).
        assert_eq!(status_at(20.0, 60.0, 10.0), RccStatus::NotCreated);
        assert_eq!(status_at(20.0, 60.0, 20.0), RccStatus::Active); // inclusive start
        assert_eq!(status_at(20.0, 60.0, 40.0), RccStatus::Active);
        assert_eq!(status_at(20.0, 60.0, 60.0), RccStatus::Settled); // inclusive end
        assert_eq!(status_at(20.0, 60.0, 90.0), RccStatus::Settled);
    }
}
