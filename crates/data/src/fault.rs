//! Seeded fault injection for robustness testing.
//!
//! The pipeline must survive whatever a real deployment environment can
//! hand it: truncated files, mangled fields, NaN/Inf in numeric columns,
//! duplicated or dangling identifiers, reordered headers. This module
//! produces those corruptions *deterministically from a seed*, so the
//! fault-injection property suite (`tests/fault_injection.rs` at the
//! workspace root) can replay any failing scenario from its seed alone.
//!
//! The corruptions are text-level and format-agnostic: they apply to the
//! CSV extracts and to persisted pipeline artifacts alike. A private
//! SplitMix64 generator keeps the module free of the `rand` dependency
//! so corruption streams stay stable regardless of rand upgrades.

use std::fmt;

/// The corruption families the harness draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Cut the text at an arbitrary byte (a partial download / full disk).
    TruncateBytes,
    /// Replace one field of one data line with garbage.
    MangleField,
    /// Replace one field with `NaN`, `inf`, or `-inf`.
    InjectNonFinite,
    /// Duplicate one data line verbatim (a double-exported row).
    DuplicateLine,
    /// Point an id-like field at a non-existent id.
    DanglingRef,
    /// Swap two fields of the first line (a reordered export header).
    ShuffleHeader,
}

impl FaultKind {
    /// Every corruption family, in a fixed order (the seed picks one).
    pub const ALL: [FaultKind; 6] = [
        FaultKind::TruncateBytes,
        FaultKind::MangleField,
        FaultKind::InjectNonFinite,
        FaultKind::DuplicateLine,
        FaultKind::DanglingRef,
        FaultKind::ShuffleHeader,
    ];

    /// Short name for scenario logs.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TruncateBytes => "truncate-bytes",
            FaultKind::MangleField => "mangle-field",
            FaultKind::InjectNonFinite => "inject-non-finite",
            FaultKind::DuplicateLine => "duplicate-line",
            FaultKind::DanglingRef => "dangling-ref",
            FaultKind::ShuffleHeader => "shuffle-header",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Deterministic SplitMix64 stream — the corruption source of truth.
#[derive(Debug, Clone)]
pub struct FaultRng(u64);

impl FaultRng {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        FaultRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// One element of a non-empty slice.
    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

/// Garbage replacements for [`FaultKind::MangleField`]: empty, non-ASCII,
/// overlong, wrong-type, and almost-right values.
const GARBAGE: [&str; 8] =
    ["", "x!x", "999999999999999999999999999", "-", "12/40/2020", "🦀", "1.2.3", "NULL"];

/// Non-finite injections for [`FaultKind::InjectNonFinite`].
const NON_FINITE: [&str; 4] = ["NaN", "inf", "-inf", "nan"];

/// Applies the seeded corruption for `seed` to `text`, returning the
/// corrupted text and which fault family was applied. The same
/// `(text, seed)` pair always produces the same corruption.
///
/// Line-oriented faults need at least one data line; when the text is too
/// small for the drawn fault, truncation is applied instead (it is always
/// possible), so every seed corrupts *something*.
pub fn corrupt_text(text: &str, seed: u64) -> (String, FaultKind) {
    let mut rng = FaultRng::new(seed);
    let kind = *rng.pick(&FaultKind::ALL);
    match apply(text, kind, &mut rng) {
        Some(corrupted) => (corrupted, kind),
        None => (truncate(text, &mut rng), FaultKind::TruncateBytes),
    }
}

fn truncate(text: &str, rng: &mut FaultRng) -> String {
    if text.is_empty() {
        return String::new();
    }
    // Cut at a char boundary so the result is still a valid String (a raw
    // byte cut would model the same failure; readers see the same prefix).
    let mut cut = rng.below(text.len());
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    text[..cut].to_string()
}

/// Splits into lines, remembering whether the text ended with a newline.
fn lines_of(text: &str) -> (Vec<String>, bool) {
    (text.lines().map(String::from).collect(), text.ends_with('\n'))
}

fn join(lines: Vec<String>, trailing_newline: bool) -> String {
    let mut out = lines.join("\n");
    if trailing_newline {
        out.push('\n');
    }
    out
}

/// Picks a non-header line index with at least one comma-separated field.
fn pick_data_line(lines: &[String], rng: &mut FaultRng) -> Option<usize> {
    if lines.len() < 2 {
        return None;
    }
    Some(1 + rng.below(lines.len() - 1))
}

fn apply(text: &str, kind: FaultKind, rng: &mut FaultRng) -> Option<String> {
    match kind {
        FaultKind::TruncateBytes => Some(truncate(text, rng)),
        FaultKind::MangleField => {
            let (mut lines, nl) = lines_of(text);
            let i = pick_data_line(&lines, rng)?;
            let mut fields: Vec<String> = lines[i].split(',').map(String::from).collect();
            let j = rng.below(fields.len());
            fields[j] = rng.pick(&GARBAGE).to_string();
            lines[i] = fields.join(",");
            Some(join(lines, nl))
        }
        FaultKind::InjectNonFinite => {
            let (mut lines, nl) = lines_of(text);
            let i = pick_data_line(&lines, rng)?;
            let mut fields: Vec<String> = lines[i].split(',').map(String::from).collect();
            let j = rng.below(fields.len());
            fields[j] = rng.pick(&NON_FINITE).to_string();
            lines[i] = fields.join(",");
            Some(join(lines, nl))
        }
        FaultKind::DuplicateLine => {
            let (mut lines, nl) = lines_of(text);
            let i = pick_data_line(&lines, rng)?;
            let dup = lines[i].clone();
            lines.insert(i + 1, dup);
            Some(join(lines, nl))
        }
        FaultKind::DanglingRef => {
            let (mut lines, nl) = lines_of(text);
            let i = pick_data_line(&lines, rng)?;
            let mut fields: Vec<String> = lines[i].split(',').map(String::from).collect();
            // Id-like columns sit at the front of both tables; retarget
            // one of the first two fields at an id no extract contains.
            let j = rng.below(2.min(fields.len()));
            fields[j] = "999999999".to_string();
            lines[i] = fields.join(",");
            Some(join(lines, nl))
        }
        FaultKind::ShuffleHeader => {
            let (mut lines, nl) = lines_of(text);
            let header = lines.first()?;
            let mut fields: Vec<String> = header.split(',').map(String::from).collect();
            if fields.len() < 2 {
                return None;
            }
            let a = rng.below(fields.len());
            let b = (a + 1 + rng.below(fields.len() - 1)) % fields.len();
            fields.swap(a, b);
            lines[0] = fields.join(",");
            Some(join(lines, nl))
        }
    }
}

/// The byte-level corruption families modelling *storage* failures —
/// what a crashed process or failing disk does to a WAL, checkpoint, or
/// framed artifact (as opposed to the text-level extract faults above).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageFault {
    /// A torn write: the file ends mid-record at an arbitrary byte `k`
    /// (crash between `write` and `fsync`).
    TornWrite,
    /// Truncation to an arbitrary prefix (full disk, interrupted copy).
    Truncate,
    /// A single flipped bit (media decay, transfer corruption).
    BitFlip,
    /// The final WAL record duplicated verbatim (a retried append that
    /// landed twice).
    DuplicateTail,
}

impl StorageFault {
    /// Every storage-fault family, in a fixed order (the seed picks one).
    pub const ALL: [StorageFault; 4] = [
        StorageFault::TornWrite,
        StorageFault::Truncate,
        StorageFault::BitFlip,
        StorageFault::DuplicateTail,
    ];

    /// Short name for scenario logs.
    pub fn name(self) -> &'static str {
        match self {
            StorageFault::TornWrite => "torn-write",
            StorageFault::Truncate => "truncate",
            StorageFault::BitFlip => "bit-flip",
            StorageFault::DuplicateTail => "duplicate-tail",
        }
    }
}

impl fmt::Display for StorageFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Applies the seeded *byte-level* corruption for `seed` to `bytes`,
/// returning the corrupted bytes and which fault was applied. Same
/// `(bytes, seed)` pair, same corruption — a failing recovery scenario
/// replays from its seed alone.
///
/// `record_len` tells [`StorageFault::DuplicateTail`] how many trailing
/// bytes form one record (pass [`None`] for non-record files such as
/// framed artifacts; the seed then falls back to truncation). Empty input
/// is returned unchanged as a truncation — there is nothing to corrupt.
pub fn corrupt_bytes(bytes: &[u8], seed: u64, record_len: Option<usize>) -> (Vec<u8>, StorageFault) {
    let mut rng = FaultRng::new(seed);
    let kind = *rng.pick(&StorageFault::ALL);
    if bytes.is_empty() {
        return (Vec::new(), StorageFault::Truncate);
    }
    match kind {
        // Torn write and truncation differ in intent, not mechanics: both
        // cut at byte `k`. Keeping them as distinct drawn kinds preserves
        // the scenario-log vocabulary of the issue's fault matrix.
        StorageFault::TornWrite | StorageFault::Truncate => {
            (bytes[..rng.below(bytes.len())].to_vec(), kind)
        }
        StorageFault::BitFlip => {
            let mut out = bytes.to_vec();
            let byte = rng.below(out.len());
            out[byte] ^= 1 << rng.below(8);
            (out, kind)
        }
        StorageFault::DuplicateTail => match record_len {
            Some(n) if n > 0 && bytes.len() >= n => {
                let mut out = bytes.to_vec();
                out.extend_from_slice(&bytes[bytes.len() - n..]);
                (out, kind)
            }
            _ => (bytes[..rng.below(bytes.len())].to_vec(), StorageFault::Truncate),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "id,name,amount\n1,alpha,10.0\n2,beta,20.0\n3,gamma,30.0\n";

    #[test]
    fn corruption_is_deterministic_per_seed() {
        for seed in 0..50 {
            let (a, ka) = corrupt_text(SAMPLE, seed);
            let (b, kb) = corrupt_text(SAMPLE, seed);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(ka, kb, "seed {seed}");
        }
    }

    #[test]
    fn every_fault_kind_is_reachable() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..200 {
            let (_, kind) = corrupt_text(SAMPLE, seed);
            seen.insert(kind.name());
        }
        for kind in FaultKind::ALL {
            assert!(seen.contains(kind.name()), "{kind} never drawn in 200 seeds");
        }
    }

    #[test]
    fn corruption_changes_the_text_or_truncates_to_prefix() {
        for seed in 0..200 {
            let (out, kind) = corrupt_text(SAMPLE, seed);
            match kind {
                FaultKind::TruncateBytes => {
                    assert!(SAMPLE.starts_with(&out), "seed {seed} not a prefix")
                }
                _ => assert_ne!(out, SAMPLE, "seed {seed} ({kind}) left text unchanged"),
            }
        }
    }

    #[test]
    fn tiny_inputs_fall_back_to_truncation() {
        for seed in 0..40 {
            let (out, kind) = corrupt_text("only-header\n", seed);
            // Only truncation and header shuffling have anything to work
            // with; everything else degrades to truncation.
            match kind {
                FaultKind::TruncateBytes => assert!("only-header\n".starts_with(&out)),
                FaultKind::ShuffleHeader => assert!(!out.is_empty()),
                other => panic!("seed {seed}: unexpected kind {other}"),
            }
        }
        let (out, kind) = corrupt_text("", 7);
        assert_eq!(out, "");
        assert_eq!(kind, FaultKind::TruncateBytes);
    }

    #[test]
    fn byte_corruption_is_deterministic_and_always_differs_or_prefixes() {
        let data: Vec<u8> = (0..200u8).collect();
        for seed in 0..300 {
            let (a, ka) = corrupt_bytes(&data, seed, Some(41));
            let (b, kb) = corrupt_bytes(&data, seed, Some(41));
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(ka, kb, "seed {seed}");
            match ka {
                StorageFault::TornWrite | StorageFault::Truncate => {
                    assert!(data.starts_with(&a), "seed {seed} not a prefix")
                }
                StorageFault::BitFlip => {
                    assert_eq!(a.len(), data.len());
                    let flipped: u32 = a
                        .iter()
                        .zip(&data)
                        .map(|(x, y)| (x ^ y).count_ones())
                        .sum();
                    assert_eq!(flipped, 1, "seed {seed} flipped {flipped} bits");
                }
                StorageFault::DuplicateTail => {
                    assert_eq!(a.len(), data.len() + 41);
                    assert_eq!(&a[data.len()..], &data[data.len() - 41..]);
                }
            }
        }
    }

    #[test]
    fn every_storage_fault_is_reachable() {
        let data = [7u8; 128];
        let mut seen = std::collections::HashSet::new();
        for seed in 0..200 {
            seen.insert(corrupt_bytes(&data, seed, Some(16)).1.name());
        }
        for kind in StorageFault::ALL {
            assert!(seen.contains(kind.name()), "{kind} never drawn in 200 seeds");
        }
    }

    #[test]
    fn duplicate_tail_degrades_without_record_len() {
        let data = [3u8; 64];
        for seed in 0..200 {
            let (out, kind) = corrupt_bytes(&data, seed, None);
            assert_ne!(kind, StorageFault::DuplicateTail, "seed {seed}");
            assert!(out.len() <= data.len());
        }
        let (out, kind) = corrupt_bytes(&[], 3, Some(8));
        assert!(out.is_empty());
        assert_eq!(kind, StorageFault::Truncate);
    }

    #[test]
    fn shuffle_header_only_touches_the_first_line() {
        for seed in 0..400 {
            let (out, kind) = corrupt_text(SAMPLE, seed);
            if kind == FaultKind::ShuffleHeader {
                let orig: Vec<&str> = SAMPLE.lines().skip(1).collect();
                let got: Vec<&str> = out.lines().skip(1).collect();
                assert_eq!(orig, got);
                assert_ne!(out.lines().next(), SAMPLE.lines().next());
                return;
            }
        }
        panic!("shuffle-header never drawn");
    }
}
