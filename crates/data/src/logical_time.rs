//! Logical time (Equation 1 of the paper) and its discretization into
//! model windows.
//!
//! For an avail `a_i` with actual start `actS` and planned duration
//! `s_plan`, the logical time of a physical timestamp `t` is
//! `t* = 100 · (t − actS) / s_plan` — the percentage of planned maintenance
//! duration elapsed at `t`. Values above 100% occur exactly when an avail is
//! running late, which is why the timeline models are anchored at fixed grid
//! points of the *planned* duration rather than the actual one.

use crate::date::Date;

/// A logical timestamp: percent of planned duration elapsed (may exceed 100).
pub type LogicalTime = f64;

/// Computes `t*` per Equation 1.
///
/// ```
/// use domd_data::date::Date;
/// use domd_data::logical_time::logical_time;
/// let act_s = Date::from_ymd(2019, 5, 7).unwrap();
/// let t = Date::from_ymd(2019, 7, 6).unwrap();
/// let t_star = logical_time(t, act_s, 340);
/// assert!((t_star - 17.647).abs() < 0.01); // ~18% as in the paper's example
/// ```
pub fn logical_time(t: Date, actual_start: Date, planned_duration_days: i32) -> LogicalTime {
    debug_assert!(planned_duration_days > 0, "planned duration must be positive");
    100.0 * f64::from(t - actual_start) / f64::from(planned_duration_days)
}

/// Inverse of [`logical_time`]: the physical date at logical time `t_star`
/// (rounded to the nearest whole day).
pub fn physical_time(
    t_star: LogicalTime,
    actual_start: Date,
    planned_duration_days: i32,
) -> Date {
    let days = (t_star / 100.0 * f64::from(planned_duration_days)).round() as i32;
    actual_start + days
}

/// The discretized logical-time grid over which timeline models are trained.
///
/// With a model gap interval of `x` percent the paper trains
/// `1 + ceil(100/x)` models at logical times `0, x, 2x, …` covering `[0, 100]`
/// (Problem 1). `TimeGrid` owns that enumeration so that every component of
/// the pipeline — feature engineering, training, fusion, evaluation — agrees
/// on the model anchor points.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeGrid {
    step: f64,
    points: Vec<LogicalTime>,
}

impl TimeGrid {
    /// Grid with window width `x` percent. Panics if `x` is not in `(0, 100]`.
    pub fn new(x: f64) -> Self {
        assert!(x > 0.0 && x <= 100.0, "model gap interval must be in (0, 100], got {x}");
        let n = (100.0 / x).ceil() as usize;
        let mut points = Vec::with_capacity(n + 1);
        for i in 0..=n {
            points.push((i as f64 * x).min(100.0));
        }
        TimeGrid { step: x, points }
    }

    /// The window width `x` in percent.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// All model anchor points, ascending, starting at 0 and ending at 100.
    pub fn points(&self) -> &[LogicalTime] {
        &self.points
    }

    /// Number of models (`1 + ceil(100/x)` in the paper's notation counts the
    /// base model at 0 plus one per subsequent window; this equals
    /// `points().len()`).
    pub fn n_models(&self) -> usize {
        self.points.len()
    }

    /// Index of the last grid point at or before `t_star` (clamped to the
    /// grid). This is the most recent model whose anchor has been reached.
    pub fn index_at(&self, t_star: LogicalTime) -> usize {
        if t_star <= 0.0 {
            return 0;
        }
        let i = (t_star / self.step).floor() as usize;
        i.min(self.points.len() - 1)
    }

    /// Grid points from 0 up to and including the window containing `t_star`
    /// — the prediction anchors a DoMD query must report (Problem 1).
    pub fn points_up_to(&self, t_star: LogicalTime) -> &[LogicalTime] {
        &self.points[..=self.index_at(t_star)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_eq1() {
        // Avail 2: actS = 5/7/2019, s_plan = 340, t = 7/6/2019 -> ~18%.
        let act_s = Date::from_ymd(2019, 5, 7).unwrap();
        let t = Date::from_ymd(2019, 7, 6).unwrap();
        let ts = logical_time(t, act_s, 340);
        assert!((17.0..19.0).contains(&ts), "t* = {ts}");
    }

    #[test]
    fn logical_physical_roundtrip() {
        let act_s = Date::from_ymd(2021, 3, 1).unwrap();
        for d in [0, 10, 100, 250, 617] {
            let t = act_s + d;
            let ts = logical_time(t, act_s, 617);
            assert_eq!(physical_time(ts, act_s, 617), t);
        }
    }

    #[test]
    fn grid_x10_has_11_models() {
        let g = TimeGrid::new(10.0);
        assert_eq!(g.n_models(), 11);
        assert_eq!(g.points()[0], 0.0);
        assert_eq!(*g.points().last().unwrap(), 100.0);
        assert_eq!(g.points()[3], 30.0);
    }

    #[test]
    fn grid_non_divisor_step_clamps_to_100() {
        let g = TimeGrid::new(30.0);
        assert_eq!(g.points(), &[0.0, 30.0, 60.0, 90.0, 100.0]);
        assert_eq!(g.n_models(), 5);
    }

    #[test]
    fn index_at_matches_paper_query_example() {
        // Paper: x = 10%, t* in [50, 60) -> 6 estimates at 0..50.
        let g = TimeGrid::new(10.0);
        assert_eq!(g.points_up_to(50.0).len(), 6);
        assert_eq!(g.points_up_to(55.0).len(), 6);
        assert_eq!(g.points_up_to(0.0).len(), 1);
        assert_eq!(g.points_up_to(-5.0).len(), 1);
        assert_eq!(g.points_up_to(100.0).len(), 11);
        assert_eq!(g.points_up_to(250.0).len(), 11); // late avail clamps to grid end
    }

    #[test]
    #[should_panic(expected = "model gap interval")]
    fn rejects_zero_step() {
        TimeGrid::new(0.0);
    }
}
