//! Civil-date arithmetic without external dependencies.
//!
//! Delay computation in the paper (Section 2) is pure day arithmetic between
//! planned/actual start and end dates, so a date is represented as the number
//! of days since the Unix epoch (1970-01-01). Conversions to and from
//! year/month/day use Howard Hinnant's `days_from_civil` / `civil_from_days`
//! algorithms, which are exact over the full `i32` day range we care about.

use std::fmt;
use std::str::FromStr;

/// A calendar date stored as days since 1970-01-01 (may be negative).
///
/// ```
/// use domd_data::date::Date;
/// let d = Date::from_ymd(2019, 5, 7).unwrap();
/// let e = Date::from_ymd(2020, 4, 11).unwrap();
/// assert_eq!(e - d, 340); // planned duration of avail 2 in Table 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(i32);

/// Error returned when a calendar date is invalid or unparsable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DateError {
    /// The year/month/day triple does not name a real calendar day.
    InvalidComponents { year: i32, month: u32, day: u32 },
    /// The textual form could not be parsed as `M/D/YYYY` or `YYYY-MM-DD`.
    Unparsable(String),
}

impl fmt::Display for DateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DateError::InvalidComponents { year, month, day } => {
                write!(f, "invalid calendar date {year:04}-{month:02}-{day:02}")
            }
            DateError::Unparsable(s) => write!(f, "unparsable date string {s:?}"),
        }
    }
}

impl std::error::Error for DateError {}

/// True when `year` is a leap year in the proleptic Gregorian calendar.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in `month` of `year` (month is 1-based).
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days since epoch of the civil triple (Hinnant's `days_from_civil`).
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let mp = ((m as i64) + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + (d as i64) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era as i64 * 146_097 + doe - 719_468) as i32
}

/// Civil triple of days since epoch (Hinnant's `civil_from_days`).
fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    let y = if m <= 2 { y + 1 } else { y };
    (y as i32, m, d)
}

impl Date {
    /// Construct a date from year, 1-based month, and 1-based day.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Self, DateError> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(DateError::InvalidComponents { year, month, day });
        }
        Ok(Date(days_from_civil(year, month, day)))
    }

    /// Construct directly from a days-since-epoch count.
    pub fn from_days(days: i32) -> Self {
        Date(days)
    }

    /// Days since 1970-01-01.
    pub fn days(self) -> i32 {
        self.0
    }

    /// `(year, month, day)` triple of this date.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0)
    }

    /// Calendar year.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// Calendar month, 1-based.
    pub fn month(self) -> u32 {
        self.ymd().1
    }

    /// Day of month, 1-based.
    pub fn day(self) -> u32 {
        self.ymd().2
    }

    /// This date shifted forward by `days` (negative shifts backward).
    pub fn plus_days(self, days: i32) -> Self {
        Date(self.0 + days)
    }
}

impl std::ops::Sub for Date {
    type Output = i32;

    /// Signed number of days from `rhs` to `self`.
    fn sub(self, rhs: Date) -> i32 {
        self.0 - rhs.0
    }
}

impl std::ops::Add<i32> for Date {
    type Output = Date;

    fn add(self, rhs: i32) -> Date {
        self.plus_days(rhs)
    }
}

impl fmt::Display for Date {
    /// Formats as `M/D/YYYY`, matching the paper's tables.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{m}/{d}/{y}")
    }
}

impl FromStr for Date {
    type Err = DateError;

    /// Parses `M/D/YYYY` (paper style, 2- or 4-digit year) or ISO `YYYY-MM-DD`.
    fn from_str(s: &str) -> Result<Self, DateError> {
        let bad = || DateError::Unparsable(s.to_string());
        if s.contains('/') {
            let mut it = s.split('/');
            let m: u32 = it.next().ok_or_else(bad)?.trim().parse().map_err(|_| bad())?;
            let d: u32 = it.next().ok_or_else(bad)?.trim().parse().map_err(|_| bad())?;
            let ys = it.next().ok_or_else(bad)?.trim();
            if it.next().is_some() {
                return Err(bad());
            }
            let mut y: i32 = ys.parse().map_err(|_| bad())?;
            if ys.len() <= 2 {
                // Two-digit years in the paper's tables are all 20xx.
                y += 2000;
            }
            Date::from_ymd(y, m, d)
        } else if s.contains('-') {
            let mut it = s.split('-');
            let y: i32 = it.next().ok_or_else(bad)?.trim().parse().map_err(|_| bad())?;
            let m: u32 = it.next().ok_or_else(bad)?.trim().parse().map_err(|_| bad())?;
            let d: u32 = it.next().ok_or_else(bad)?.trim().parse().map_err(|_| bad())?;
            if it.next().is_some() {
                return Err(bad());
            }
            Date::from_ymd(y, m, d)
        } else {
            Err(bad())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).unwrap().days(), 0);
        assert_eq!(Date::from_days(0).ymd(), (1970, 1, 1));
    }

    #[test]
    fn known_offsets() {
        assert_eq!(Date::from_ymd(1970, 1, 2).unwrap().days(), 1);
        assert_eq!(Date::from_ymd(1969, 12, 31).unwrap().days(), -1);
        assert_eq!(Date::from_ymd(2000, 3, 1).unwrap().days(), 11_017);
    }

    #[test]
    fn paper_table1_durations() {
        // Avail 2: planned 5/7/19 .. 4/11/20 = 340 days; actual 5/7/19 .. 5/21/21 = 745.
        let plan_s: Date = "5/7/19".parse().unwrap();
        let plan_e: Date = "4/11/20".parse().unwrap();
        let act_e: Date = "5/21/21".parse().unwrap();
        assert_eq!(plan_e - plan_s, 340);
        assert_eq!(act_e - plan_s, 745);
        assert_eq!((act_e - plan_s) - (plan_e - plan_s), 405); // d_2 in the paper
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2000));
        assert!(is_leap_year(2024));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2023));
        assert_eq!(days_in_month(2024, 2), 29);
        assert_eq!(days_in_month(2023, 2), 28);
    }

    #[test]
    fn rejects_invalid() {
        assert!(Date::from_ymd(2023, 2, 29).is_err());
        assert!(Date::from_ymd(2023, 13, 1).is_err());
        assert!(Date::from_ymd(2023, 0, 1).is_err());
        assert!(Date::from_ymd(2023, 4, 31).is_err());
        assert!("not-a-date".parse::<Date>().is_err());
        assert!("1/2".parse::<Date>().is_err());
    }

    #[test]
    fn parse_iso_and_display() {
        let d: Date = "2021-03-01".parse().unwrap();
        assert_eq!(d.ymd(), (2021, 3, 1));
        assert_eq!(d.to_string(), "3/1/2021");
    }

    #[test]
    fn arithmetic() {
        let d = Date::from_ymd(2020, 2, 27).unwrap();
        assert_eq!((d + 3).ymd(), (2020, 3, 1)); // crosses a leap day
        assert_eq!(d.plus_days(-27).ymd(), (2020, 1, 31));
    }

    #[test]
    fn accessors() {
        let d = Date::from_ymd(2022, 11, 8).unwrap();
        assert_eq!(d.year(), 2022);
        assert_eq!(d.month(), 11);
        assert_eq!(d.day(), 8);
    }

    #[test]
    fn roundtrip_dense_range() {
        // Every day across several decades round-trips exactly.
        for days in -20_000..40_000 {
            let d = Date::from_days(days);
            let (y, m, dd) = d.ymd();
            assert_eq!(Date::from_ymd(y, m, dd).unwrap().days(), days);
        }
    }
}
