//! Property-based tests for the CSV interchange: arbitrary generated
//! datasets round-trip exactly, and mangled inputs fail cleanly instead of
//! panicking.

use domd_data::csv::{read_avails, read_dataset, read_rccs, write_avails, write_rccs};
use domd_data::{generate, GeneratorConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_datasets_roundtrip(
        n_avails in 1usize..25,
        target_rccs in 1usize..800,
        seed in 0u64..500,
    ) {
        let ds = generate(&GeneratorConfig { n_avails, target_rccs, scale: 1, seed });
        let back = read_dataset(&write_avails(&ds), &write_rccs(&ds)).unwrap();
        prop_assert_eq!(back.avails(), ds.avails());
        prop_assert_eq!(back.rccs(), ds.rccs());
    }

    #[test]
    fn corrupted_lines_never_panic(
        seed in 0u64..100,
        victim_line in 1usize..20,
        garbage in "[a-z0-9,./-]{0,40}",
    ) {
        let ds = generate(&GeneratorConfig { n_avails: 5, target_rccs: 100, scale: 1, seed });
        for text in [write_avails(&ds), write_rccs(&ds)] {
            let mut lines: Vec<&str> = text.lines().collect();
            if victim_line < lines.len() {
                lines[victim_line] = &garbage;
            }
            let mangled = lines.join("\n");
            // Must return Ok (if the garbage happened to parse or the line
            // was out of range) or a structured error — never panic.
            let _ = read_avails(&mangled);
            let _ = read_rccs(&mangled);
        }
    }

    #[test]
    fn truncation_never_panics(seed in 0u64..50, cut in 0usize..2000) {
        let ds = generate(&GeneratorConfig { n_avails: 4, target_rccs: 80, scale: 1, seed });
        let text = write_rccs(&ds);
        let cut = cut.min(text.len());
        // Slice on a char boundary (the format is pure ASCII).
        let _ = read_rccs(&text[..cut]);
    }
}
