//! Property-based tests for the data substrate: date arithmetic, logical
//! time, delay identities, and status-predicate coherence.

use domd_data::avail::{Avail, AvailId, ShipId, StaticAttrs};
use domd_data::date::Date;
use domd_data::logical_time::{logical_time, physical_time, TimeGrid};
use domd_data::rcc::{status_at, RccStatus};
use proptest::prelude::*;

proptest! {
    #[test]
    fn date_roundtrips_through_civil(days in -200_000i32..200_000) {
        let d = Date::from_days(days);
        let (y, m, dd) = d.ymd();
        prop_assert_eq!(Date::from_ymd(y, m, dd).unwrap(), d);
    }

    #[test]
    fn date_roundtrips_through_display(days in -50_000i32..80_000) {
        let d = Date::from_days(days);
        let parsed: Date = d.to_string().parse().unwrap();
        prop_assert_eq!(parsed, d);
    }

    #[test]
    fn date_addition_is_associative(days in -10_000i32..10_000, a in -5000i32..5000, b in -5000i32..5000) {
        let d = Date::from_days(days);
        prop_assert_eq!((d + a) + b, d + (a + b));
        prop_assert_eq!((d + a) - d, a);
    }

    #[test]
    fn month_days_always_valid(days in -100_000i32..100_000) {
        let d = Date::from_days(days);
        let (y, m, dd) = d.ymd();
        prop_assert!((1..=12).contains(&m));
        prop_assert!(dd >= 1 && dd <= domd_data::date::days_in_month(y, m));
    }

    #[test]
    fn logical_physical_roundtrip(start in -5000i32..5000, planned in 1i32..2000, offset in 0i32..4000) {
        let act_s = Date::from_days(start);
        let t = act_s + offset;
        let ts = logical_time(t, act_s, planned);
        prop_assert_eq!(physical_time(ts, act_s, planned), t);
    }

    #[test]
    fn delay_is_duration_difference(
        start in 0i32..10_000,
        planned in 1i32..2000,
        late_start in 0i32..100,
        delay in -200i32..2000,
    ) {
        let plan_start = Date::from_days(start);
        let actual_start = plan_start + late_start;
        let a = Avail {
            id: AvailId(1),
            ship: ShipId(1),
            plan_start,
            plan_end: plan_start + planned,
            actual_start,
            actual_end: Some(actual_start + planned + delay),
            statics: StaticAttrs {
                ship_class: 0,
                rmc_id: 0,
                ship_age_years: 10.0,
                prior_avail_count: 1,
                prior_avg_delay: 0.0,
            },
        };
        // The duration-based definition is invariant to the late start.
        prop_assert_eq!(a.delay(), Some(delay));
    }

    #[test]
    fn status_partition_is_exhaustive_and_exclusive(
        start in 0.0f64..100.0,
        width in 0.01f64..80.0,
        t in -20.0f64..180.0,
    ) {
        let end = start + width;
        let s = status_at(start, end, t);
        // Exactly one of the three primitive statuses holds.
        let active = start <= t && t < end;
        let settled = end <= t;
        let not_created = start > t;
        prop_assert_eq!(s == RccStatus::Active, active);
        prop_assert_eq!(s == RccStatus::Settled, settled);
        prop_assert_eq!(s == RccStatus::NotCreated, not_created);
        prop_assert_eq!(u32::from(active) + u32::from(settled) + u32::from(not_created), 1);
    }

    #[test]
    fn time_grid_is_sound(x in 0.5f64..100.0, t in -10.0f64..300.0) {
        let g = TimeGrid::new(x);
        let pts = g.points();
        prop_assert_eq!(pts[0], 0.0);
        prop_assert_eq!(*pts.last().unwrap(), 100.0);
        prop_assert!(pts.windows(2).all(|w| w[0] < w[1]));
        let idx = g.index_at(t);
        prop_assert!(idx < g.n_models());
        // The anchor at idx has been reached whenever t >= 0.
        if t >= 0.0 {
            prop_assert!(pts[idx] <= t || idx == 0);
        }
        prop_assert_eq!(g.points_up_to(t).len(), idx + 1);
    }
}
