//! # domd-runtime
//!
//! The deterministic parallel execution layer shared by every hot path of
//! the framework: the sharded feature-engine sweep, pooled per-step model
//! training, GBT/forest split search, and batch Status Query execution.
//!
//! Design contract (enforced by the equivalence tests of each consumer):
//!
//! * **Bounded** — [`par_map`] runs at most `threads` concurrent workers
//!   (the calling thread participates, so at most `threads - 1` OS threads
//!   are spawned per call), never one thread per item.
//! * **Deterministic** — results are merged back in input order, so the
//!   output of `par_map(t, items, f)` is bit-identical to the sequential
//!   `items.iter().enumerate().map(f)` for every `t`, provided `f` is a
//!   pure function of its arguments.
//! * **Non-nesting** — a `par_map` issued from inside a pool worker runs
//!   sequentially on that worker. Depth-1 parallelism keeps the global
//!   concurrency at the configured cap even when parallel code calls into
//!   other parallel code (e.g. pooled step training calling GBT fits).
//! * **Configurable** — the effective thread count resolves, in order:
//!   an explicit argument, [`set_threads`] (the CLI's `--threads`), the
//!   `DOMD_THREADS` environment variable, then
//!   `std::thread::available_parallelism()`. `threads = 1` is the exact
//!   sequential fallback on every path.

#![deny(unsafe_code)]
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Global override installed by `--threads` / [`set_threads`]. 0 = auto.
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Concurrently live pool workers (all pools), and the high-water mark.
/// Test instrumentation for the "never exceeds the cap" guarantee.
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);
static PEAK_WORKERS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True while the current thread is executing inside a pool worker;
    /// nested [`par_map`] calls then degrade to sequential execution.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Hardware parallelism (1 when undetectable).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Installs a process-wide thread-count override (the CLI's `--threads`).
/// `0` restores auto-detection.
pub fn set_threads(n: usize) {
    CONFIGURED.store(n, Ordering::SeqCst);
}

/// The effective worker cap: [`set_threads`] override, else `DOMD_THREADS`,
/// else [`available_threads`]. Always at least 1.
pub fn threads() -> usize {
    let configured = CONFIGURED.load(Ordering::SeqCst);
    if configured > 0 {
        return configured;
    }
    if let Ok(v) = std::env::var("DOMD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    available_threads()
}

/// Resets the worker high-water mark (see [`peak_workers`]).
pub fn reset_peak_workers() {
    PEAK_WORKERS.store(0, Ordering::SeqCst);
}

/// The maximum number of pool workers that were ever live at once since the
/// last [`reset_peak_workers`], across all `par_map` calls in the process.
pub fn peak_workers() -> usize {
    PEAK_WORKERS.load(Ordering::SeqCst)
}

/// RAII registration of one live worker in the concurrency accounting.
struct WorkerGuard {
    was_in_pool: bool,
}

impl WorkerGuard {
    fn enter() -> Self {
        let live = ACTIVE_WORKERS.fetch_add(1, Ordering::SeqCst) + 1;
        PEAK_WORKERS.fetch_max(live, Ordering::SeqCst);
        let was_in_pool = IN_POOL.with(|f| f.replace(true));
        WorkerGuard { was_in_pool }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        IN_POOL.with(|f| f.set(self.was_in_pool));
        ACTIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Maps `f` over `items` with at most `threads` concurrent workers and
/// returns the results in input order.
///
/// Work distribution is dynamic (an atomic cursor hands out items), but the
/// merge is by original index, so the output is independent of scheduling:
/// bit-identical to the sequential map for any thread count. `threads <= 1`,
/// a single item, or a call from inside another pool worker all take the
/// purely sequential path with zero thread spawns.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, n.max(1));
    if workers == 1 || n <= 1 || IN_POOL.with(|flag| flag.get()) {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers - 1)
            .map(|_| scope.spawn(|| run_worker(&cursor, items, &f)))
            .collect();
        // The calling thread is the final worker.
        let mut parts = vec![run_worker(&cursor, items, &f)];
        parts.extend(handles.into_iter().map(|h| match h.join() {
            Ok(part) => part,
            // Re-raise the worker's own panic payload on the calling
            // thread instead of masking it as "pool worker panicked" —
            // the original message is the one that names the failing item.
            Err(payload) => std::panic::resume_unwind(payload),
        }));
        parts
    });

    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for part in &mut parts {
        for (i, r) in part.drain(..) {
            debug_assert!(out[i].is_none(), "item {i} produced twice");
            out[i] = Some(r);
        }
    }
    // domd-lint: allow(no-panic) — the cursor hands out each index once; a hole means the scope above lost a part
    out.into_iter().map(|r| r.expect("every item visited exactly once")).collect()
}

fn run_worker<T, R, F>(cursor: &AtomicUsize, items: &[T], f: &F) -> Vec<(usize, R)>
where
    F: Fn(usize, &T) -> R,
{
    let _guard = WorkerGuard::enter();
    let mut out = Vec::new();
    loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= items.len() {
            return out;
        }
        out.push((i, f(i, &items[i])));
    }
}

/// Runs `roles` copies of `f` concurrently (each receives its role index)
/// and returns when every role has finished. The calling thread executes
/// role `0`, so at most `roles - 1` OS threads are spawned. Each role is
/// registered in the worker accounting ([`peak_workers`]) and marked
/// in-pool, so `par_map` calls issued from inside a role run sequentially
/// — a worker group never multiplies the configured concurrency.
///
/// A panic in any role is re-raised on the calling thread with its
/// original payload. Called from inside a pool worker, the roles run
/// sequentially in index order on the calling thread; blocking
/// rendezvous between roles (e.g. one role feeding a queue another
/// drains) therefore must only be used from non-pool threads.
pub fn run_workers<F>(roles: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let roles = roles.max(1);
    if roles == 1 || IN_POOL.with(|flag| flag.get()) {
        for role in 0..roles {
            f(role);
        }
        return;
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..roles)
            .map(|role| {
                scope.spawn(move || {
                    let _guard = WorkerGuard::enter();
                    f(role);
                })
            })
            .collect();
        {
            let _guard = WorkerGuard::enter();
            f(0);
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// A work cycle was abandoned because the caller's cancel predicate fired.
/// `completed` counts items whose results were produced before the
/// cancellation was observed (they are discarded — partial output would
/// depend on scheduling and break the determinism contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    pub completed: usize,
}

/// [`par_map`] with a cooperative cancel predicate, polled before every
/// item on every worker. When `cancel()` first returns `true`, all workers
/// stop taking new work and the call returns `Err(Cancelled)`; otherwise
/// the result is bit-identical to `par_map(threads, items, f)`.
///
/// This is the deadline hook for expensive sweeps: the predicate is
/// typically "deadline exceeded", so an admitted request burns at most one
/// item of work per worker past its budget instead of finishing the sweep.
pub fn par_map_cancellable<T, R, F, C>(
    threads: usize,
    items: &[T],
    cancel: C,
    f: F,
) -> Result<Vec<R>, Cancelled>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    C: Fn() -> bool + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, n.max(1));
    let done = AtomicUsize::new(0);
    if workers == 1 || n <= 1 || IN_POOL.with(|flag| flag.get()) {
        let mut out = Vec::with_capacity(n);
        for (i, x) in items.iter().enumerate() {
            if cancel() {
                return Err(Cancelled { completed: done.load(Ordering::Relaxed) });
            }
            out.push(f(i, x));
            done.fetch_add(1, Ordering::Relaxed);
        }
        return Ok(out);
    }

    let cursor = AtomicUsize::new(0);
    let stop = std::sync::atomic::AtomicBool::new(false);
    let worker = |out: &mut Vec<(usize, R)>| {
        let _guard = WorkerGuard::enter();
        loop {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            if cancel() {
                stop.store(true, Ordering::Relaxed);
                return;
            }
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                return;
            }
            out.push((i, f(i, &items[i])));
            done.fetch_add(1, Ordering::Relaxed);
        }
    };
    let mut parts: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers - 1)
            .map(|_| {
                scope.spawn(|| {
                    let mut part = Vec::new();
                    worker(&mut part);
                    part
                })
            })
            .collect();
        let mut parts = vec![{
            let mut part = Vec::new();
            worker(&mut part);
            part
        }];
        parts.extend(handles.into_iter().map(|h| match h.join() {
            Ok(part) => part,
            Err(payload) => std::panic::resume_unwind(payload),
        }));
        parts
    });

    if stop.load(Ordering::Relaxed) {
        return Err(Cancelled { completed: done.load(Ordering::Relaxed) });
    }
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for part in &mut parts {
        for (i, r) in part.drain(..) {
            out[i] = Some(r);
        }
    }
    // domd-lint: allow(no-panic) — no worker observed the cancel flag, so the cursor handed out every index exactly once
    Ok(out.into_iter().map(|r| r.expect("every item visited exactly once")).collect())
}

/// An item was rejected by [`BoundedQueue::try_push`] because the queue
/// was at capacity (or closed). The rejected item rides along so the
/// caller can answer the producer with a typed shed instead of dropping
/// the request on the floor.
#[derive(Debug)]
pub struct QueueRejected<T> {
    pub item: T,
    pub depth: usize,
    pub capacity: usize,
    pub closed: bool,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    peak: usize,
}

/// A blocking MPMC queue with a hard capacity: `try_push` never blocks and
/// never grows the buffer past `capacity` — at capacity it hands the item
/// back as a [`QueueRejected`], making backpressure explicit and typed
/// rather than silent. `pop` blocks until an item arrives or the queue is
/// closed and drained, which is the worker-shutdown signal.
///
/// The queue is the admission-control primitive behind `domd serve`; it
/// lives here because `crates/runtime` is the one place the analyzer
/// permits blocking thread rendezvous, and because its peak-depth
/// accounting is part of the bounded-memory proof in the chaos suite.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    capacity: usize,
    available: Condvar,
}

impl<T> BoundedQueue<T> {
    /// An empty queue that will never hold more than `capacity` items
    /// (`capacity` is clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                peak: 0,
            }),
            capacity,
            available: Condvar::new(),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        // domd-lint: allow(no-panic) — a poisoned queue lock means a worker already panicked; propagating is the only sound exit
        self.state.lock().expect("queue lock")
    }

    /// Enqueues `item`, or returns it inside [`QueueRejected`] when the
    /// queue is full or closed. On success returns the depth after the
    /// push. Never blocks.
    pub fn try_push(&self, item: T) -> Result<usize, QueueRejected<T>> {
        let mut st = self.locked();
        if st.closed || st.items.len() >= self.capacity {
            let depth = st.items.len();
            let closed = st.closed;
            drop(st);
            return Err(QueueRejected { item, depth, capacity: self.capacity, closed });
        }
        st.items.push_back(item);
        let depth = st.items.len();
        st.peak = st.peak.max(depth);
        drop(st);
        self.available.notify_one();
        Ok(depth)
    }

    /// Dequeues the oldest item, blocking while the queue is empty but
    /// open. Returns `None` once the queue is closed *and* drained — the
    /// clean-shutdown signal for worker loops.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.locked();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            // domd-lint: allow(no-panic) — a poisoned queue lock means a worker already panicked; propagating is the only sound exit
            st = self.available.wait(st).expect("queue lock");
        }
    }

    /// Closes the queue: future pushes are rejected, and `pop` returns
    /// `None` once the backlog drains. Idempotent.
    pub fn close(&self) {
        self.locked().closed = true;
        self.available.notify_all();
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.locked().items.len()
    }

    /// True when empty (the queue may still be open).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The hard capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// High-water mark of the depth since construction; the chaos suite
    /// asserts this never exceeds [`Self::capacity`] under storm load.
    pub fn peak_depth(&self) -> usize {
        self.locked().peak
    }

    /// True once [`Self::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.locked().closed
    }
}

/// Splits `0..n` into at most `parts` contiguous, near-equal, non-empty
/// ranges — the shard layout used when work must stay contiguous (e.g. the
/// feature sweep shards whole avail ranges so merged rows keep their
/// original order).
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().enumerate().map(|(i, x)| x * 3 + i as u64).collect();
        for t in [1, 2, 3, 8, 1000] {
            let par = par_map(t, &items, |i, x| x * 3 + i as u64);
            assert_eq!(par, seq, "threads={t}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(4, &[] as &[u8], |_, x| *x), Vec::<u8>::new());
        assert_eq!(par_map(4, &[9u8], |i, x| (i, *x)), vec![(0, 9)]);
    }

    #[test]
    fn nested_par_map_runs_sequentially() {
        // Outer parallelism 2, inner requests 8: the inner calls must not
        // spawn (they run inside pool workers), so the peak stays <= 2.
        reset_peak_workers();
        let outer: Vec<usize> = (0..4).collect();
        let sums = par_map(2, &outer, |_, &o| {
            let inner: Vec<usize> = (0..64).collect();
            par_map(8, &inner, |_, &x| x + o).iter().sum::<usize>()
        });
        assert_eq!(sums.len(), 4);
        assert!(peak_workers() <= 2, "peak {} exceeded the cap", peak_workers());
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 2, 7, 100] {
            for parts in [1usize, 2, 3, 64] {
                let ranges = chunk_ranges(n, parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} parts={parts}");
                assert!(ranges.iter().all(|r| !r.is_empty()));
                assert!(ranges.len() <= parts.max(1));
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
            }
        }
    }

    #[test]
    fn par_map_cancellable_matches_par_map_when_not_cancelled() {
        let items: Vec<u64> = (0..311).collect();
        let seq: Vec<u64> = items.iter().enumerate().map(|(i, x)| x * 7 + i as u64).collect();
        for t in [1, 2, 3, 8] {
            let got = par_map_cancellable(t, &items, || false, |i, x| x * 7 + i as u64);
            assert_eq!(got.as_deref(), Ok(seq.as_slice()), "threads={t}");
        }
    }

    #[test]
    fn par_map_cancellable_stops_on_cancel() {
        let items: Vec<u64> = (0..10_000).collect();
        let seen = AtomicUsize::new(0);
        for t in [1, 4] {
            seen.store(0, Ordering::SeqCst);
            let got = par_map_cancellable(
                t,
                &items,
                || seen.load(Ordering::SeqCst) >= 16,
                |_, &x| {
                    seen.fetch_add(1, Ordering::SeqCst);
                    x
                },
            );
            let err = got.expect_err("must cancel");
            assert!(err.completed < items.len(), "threads={t} ran to completion");
        }
    }

    #[test]
    fn bounded_queue_sheds_at_capacity_and_tracks_peak() {
        let q: BoundedQueue<u32> = BoundedQueue::with_capacity(3);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.try_push(3).unwrap(), 3);
        let rej = q.try_push(4).unwrap_err();
        assert_eq!((rej.item, rej.depth, rej.capacity, rej.closed), (4, 3, 3, false));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(5).unwrap(), 3);
        assert_eq!(q.peak_depth(), 3);
        q.close();
        let rej = q.try_push(6).unwrap_err();
        assert!(rej.closed);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), None, "closed and drained");
        assert_eq!(q.peak_depth(), 3);
    }

    #[test]
    fn run_workers_rendezvous_through_queue() {
        let q: BoundedQueue<usize> = BoundedQueue::with_capacity(4);
        let total = AtomicUsize::new(0);
        run_workers(4, |role| {
            if role == 0 {
                for i in 1..=100 {
                    loop {
                        match q.try_push(i) {
                            Ok(_) => break,
                            Err(_) => std::thread::yield_now(),
                        }
                    }
                }
                q.close();
            } else {
                while let Some(v) = q.pop() {
                    total.fetch_add(v, Ordering::SeqCst);
                }
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 5050);
        assert!(q.peak_depth() <= 4, "peak {} exceeded capacity", q.peak_depth());
    }

    #[test]
    fn run_workers_counts_toward_peak_and_blocks_nested_parallelism() {
        reset_peak_workers();
        let inner_peaks = Mutex::new(Vec::new());
        run_workers(2, |_| {
            let items: Vec<usize> = (0..64).collect();
            let r = par_map(8, &items, |_, &x| x * 2);
            assert_eq!(r[63], 126);
            inner_peaks.lock().unwrap().push(peak_workers());
        });
        assert!(peak_workers() <= 2, "peak {} exceeded role count", peak_workers());
    }

    #[test]
    fn threads_resolution_prefers_override() {
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }
}
