//! # domd-runtime
//!
//! The deterministic parallel execution layer shared by every hot path of
//! the framework: the sharded feature-engine sweep, pooled per-step model
//! training, GBT/forest split search, and batch Status Query execution.
//!
//! Design contract (enforced by the equivalence tests of each consumer):
//!
//! * **Bounded** — [`par_map`] runs at most `threads` concurrent workers
//!   (the calling thread participates, so at most `threads - 1` OS threads
//!   are spawned per call), never one thread per item.
//! * **Deterministic** — results are merged back in input order, so the
//!   output of `par_map(t, items, f)` is bit-identical to the sequential
//!   `items.iter().enumerate().map(f)` for every `t`, provided `f` is a
//!   pure function of its arguments.
//! * **Non-nesting** — a `par_map` issued from inside a pool worker runs
//!   sequentially on that worker. Depth-1 parallelism keeps the global
//!   concurrency at the configured cap even when parallel code calls into
//!   other parallel code (e.g. pooled step training calling GBT fits).
//! * **Configurable** — the effective thread count resolves, in order:
//!   an explicit argument, [`set_threads`] (the CLI's `--threads`), the
//!   `DOMD_THREADS` environment variable, then
//!   `std::thread::available_parallelism()`. `threads = 1` is the exact
//!   sequential fallback on every path.

#![deny(unsafe_code)]
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global override installed by `--threads` / [`set_threads`]. 0 = auto.
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Concurrently live pool workers (all pools), and the high-water mark.
/// Test instrumentation for the "never exceeds the cap" guarantee.
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);
static PEAK_WORKERS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True while the current thread is executing inside a pool worker;
    /// nested [`par_map`] calls then degrade to sequential execution.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Hardware parallelism (1 when undetectable).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Installs a process-wide thread-count override (the CLI's `--threads`).
/// `0` restores auto-detection.
pub fn set_threads(n: usize) {
    CONFIGURED.store(n, Ordering::SeqCst);
}

/// The effective worker cap: [`set_threads`] override, else `DOMD_THREADS`,
/// else [`available_threads`]. Always at least 1.
pub fn threads() -> usize {
    let configured = CONFIGURED.load(Ordering::SeqCst);
    if configured > 0 {
        return configured;
    }
    if let Ok(v) = std::env::var("DOMD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    available_threads()
}

/// Resets the worker high-water mark (see [`peak_workers`]).
pub fn reset_peak_workers() {
    PEAK_WORKERS.store(0, Ordering::SeqCst);
}

/// The maximum number of pool workers that were ever live at once since the
/// last [`reset_peak_workers`], across all `par_map` calls in the process.
pub fn peak_workers() -> usize {
    PEAK_WORKERS.load(Ordering::SeqCst)
}

/// RAII registration of one live worker in the concurrency accounting.
struct WorkerGuard {
    was_in_pool: bool,
}

impl WorkerGuard {
    fn enter() -> Self {
        let live = ACTIVE_WORKERS.fetch_add(1, Ordering::SeqCst) + 1;
        PEAK_WORKERS.fetch_max(live, Ordering::SeqCst);
        let was_in_pool = IN_POOL.with(|f| f.replace(true));
        WorkerGuard { was_in_pool }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        IN_POOL.with(|f| f.set(self.was_in_pool));
        ACTIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Maps `f` over `items` with at most `threads` concurrent workers and
/// returns the results in input order.
///
/// Work distribution is dynamic (an atomic cursor hands out items), but the
/// merge is by original index, so the output is independent of scheduling:
/// bit-identical to the sequential map for any thread count. `threads <= 1`,
/// a single item, or a call from inside another pool worker all take the
/// purely sequential path with zero thread spawns.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, n.max(1));
    if workers == 1 || n <= 1 || IN_POOL.with(|flag| flag.get()) {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers - 1)
            .map(|_| scope.spawn(|| run_worker(&cursor, items, &f)))
            .collect();
        // The calling thread is the final worker.
        let mut parts = vec![run_worker(&cursor, items, &f)];
        parts.extend(handles.into_iter().map(|h| match h.join() {
            Ok(part) => part,
            // Re-raise the worker's own panic payload on the calling
            // thread instead of masking it as "pool worker panicked" —
            // the original message is the one that names the failing item.
            Err(payload) => std::panic::resume_unwind(payload),
        }));
        parts
    });

    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for part in &mut parts {
        for (i, r) in part.drain(..) {
            debug_assert!(out[i].is_none(), "item {i} produced twice");
            out[i] = Some(r);
        }
    }
    // domd-lint: allow(no-panic) — the cursor hands out each index once; a hole means the scope above lost a part
    out.into_iter().map(|r| r.expect("every item visited exactly once")).collect()
}

fn run_worker<T, R, F>(cursor: &AtomicUsize, items: &[T], f: &F) -> Vec<(usize, R)>
where
    F: Fn(usize, &T) -> R,
{
    let _guard = WorkerGuard::enter();
    let mut out = Vec::new();
    loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= items.len() {
            return out;
        }
        out.push((i, f(i, &items[i])));
    }
}

/// Splits `0..n` into at most `parts` contiguous, near-equal, non-empty
/// ranges — the shard layout used when work must stay contiguous (e.g. the
/// feature sweep shards whole avail ranges so merged rows keep their
/// original order).
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().enumerate().map(|(i, x)| x * 3 + i as u64).collect();
        for t in [1, 2, 3, 8, 1000] {
            let par = par_map(t, &items, |i, x| x * 3 + i as u64);
            assert_eq!(par, seq, "threads={t}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(4, &[] as &[u8], |_, x| *x), Vec::<u8>::new());
        assert_eq!(par_map(4, &[9u8], |i, x| (i, *x)), vec![(0, 9)]);
    }

    #[test]
    fn nested_par_map_runs_sequentially() {
        // Outer parallelism 2, inner requests 8: the inner calls must not
        // spawn (they run inside pool workers), so the peak stays <= 2.
        reset_peak_workers();
        let outer: Vec<usize> = (0..4).collect();
        let sums = par_map(2, &outer, |_, &o| {
            let inner: Vec<usize> = (0..64).collect();
            par_map(8, &inner, |_, &x| x + o).iter().sum::<usize>()
        });
        assert_eq!(sums.len(), 4);
        assert!(peak_workers() <= 2, "peak {} exceeded the cap", peak_workers());
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 2, 7, 100] {
            for parts in [1usize, 2, 3, 64] {
                let ranges = chunk_ranges(n, parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} parts={parts}");
                assert!(ranges.iter().all(|r| !r.is_empty()));
                assert!(ranges.len() <= parts.max(1));
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
            }
        }
    }

    #[test]
    fn threads_resolution_prefers_override() {
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }
}
