//! `bench_restart` — recovery-to-first-answer for a restarted `domd
//! serve`, as a function of store size.
//!
//! Two restart paths over the same durable store:
//!
//! * **store-rebuild** (this PR): recover the store, rebuild the tenant
//!   snapshot from its delta stream alone (`rebuild_tenant`), answer the
//!   first Status Query. Sees every acked ingest.
//! * **extract-reload** (the old path): recover the store for
//!   durability, rebuild the snapshot from the extracts
//!   (`TenantSnapshot::from_dataset`), answer the first query. Blind to
//!   every row the extracts lack — the reason it was replaced — so it is
//!   a *baseline*, not an alternative.
//!
//! The store-rebuild arm is bit-identity-gated first: its aggregates
//! must equal a from-scratch snapshot over the store's own rows. Each
//! timing column reports its minimum over `--runs` repetitions.
//!
//! ```text
//! bench_restart [--scales 1,4] [--ingests N] [--runs N] [--out FILE]
//! ```

use domd_bench::util::{scaled_dataset, time_ms};
use domd_data::rcc::{Rcc, RccId, RccStatus};
use domd_data::{logical_time, Dataset};
use domd_index::{project_dataset, DurableIndex, FlatAvlIndex, LogicalRcc, StatusQuery};
use domd_serve::{rebuild_tenant, TenantSnapshot};
use std::path::{Path, PathBuf};

/// Builds the restart scenario: a full-payload (v2) store initialized
/// from the extracts plus `ingests` acked v2 rows in the WAL — the disk
/// state a killed serving process leaves behind.
fn build_store(dir: &Path, ds: &Dataset, ingests: usize) {
    let _ = std::fs::remove_dir_all(dir);
    let projected = project_dataset(ds);
    let mut di: DurableIndex<FlatAvlIndex> = DurableIndex::create_full(
        dir,
        projected.iter().copied().zip(ds.rccs().iter().cloned()),
    )
    .expect("create full store");
    // Stop auto-checkpointing so every ingest stays a WAL record and the
    // recovery being timed actually replays them.
    di.set_checkpoint_every(None);
    let base = projected.len() as u32;
    let next_rcc = ds.rccs().iter().map(|r| r.id.0 + 1).max().unwrap_or(0);
    for k in 0..ingests {
        let template = &ds.rccs()[k % ds.rccs().len()];
        let a = ds.avail(template.avail).expect("template avail exists");
        let planned = a.planned_duration().max(1);
        let rcc = Rcc { id: RccId(next_rcc + k as u32), ..template.clone() };
        let logical = LogicalRcc {
            id: base + k as u32,
            avail: rcc.avail,
            start: logical_time(rcc.created, a.actual_start, planned),
            end: logical_time(rcc.settled, a.actual_start, planned),
        };
        assert!(di.insert_full(&logical, &rcc).expect("ingest row"), "duplicate ingest id");
    }
    di.sync().expect("sync");
}

fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .expect("read store dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

/// The "first answer" a restarted server produces: one Status Query
/// aggregate, fingerprinted for the identity gate.
fn first_answer(snap: &TenantSnapshot) -> (usize, u64) {
    let q = StatusQuery {
        rcc_type: None,
        swlin_prefix: None,
        status: RccStatus::Active,
        t_star: 60.0,
    };
    let agg = snap.engine.aggregate(&q);
    (agg.count, agg.sum_amount.to_bits())
}

struct ScaleResult {
    scale: u32,
    rows: usize,
    ingested: usize,
    store_bytes: u64,
    recover_ms: f64,
    rebuild_ms: f64,
    store_to_answer_ms: f64,
    extract_to_answer_ms: f64,
    extract_missing_rows: usize,
}

impl ScaleResult {
    fn json(&self) -> String {
        format!(
            "{{\"scale\":{},\"rows\":{},\"ingested\":{},\"store_bytes\":{},\"recover_ms\":{:.3},\"rebuild_ms\":{:.3},\"store_to_answer_ms\":{:.3},\"extract_to_answer_ms\":{:.3},\"extract_missing_rows\":{}}}",
            self.scale,
            self.rows,
            self.ingested,
            self.store_bytes,
            self.recover_ms,
            self.rebuild_ms,
            self.store_to_answer_ms,
            self.extract_to_answer_ms,
            self.extract_missing_rows
        )
    }
}

fn bench_scale(scale: u32, ingests: usize, runs: usize) -> ScaleResult {
    let ds = scaled_dataset(scale);
    let dir = std::env::temp_dir()
        .join(format!("domd-bench-restart-{}-{scale}", std::process::id()));
    build_store(&dir, &ds, ingests);
    let store_bytes = dir_bytes(&dir);

    // Bit-identity gate: the store-rebuild snapshot must answer exactly
    // like a from-scratch snapshot over the store's own rows.
    let (index, _) = DurableIndex::<FlatAvlIndex>::recover(&dir).expect("recover");
    let (rebuilt, summary) = rebuild_tenant(&ds, &index).expect("rebuild");
    assert_eq!(summary.from_store, index.len(), "store must rebuild from its own payloads");
    let reference_rccs: Vec<Rcc> = index
        .entries_full()
        .into_iter()
        .map(|s| s.rcc.expect("full payload"))
        .collect();
    let reference =
        TenantSnapshot::from_dataset(Dataset::new(ds.avails().to_vec(), reference_rccs));
    assert_eq!(
        first_answer(&rebuilt),
        first_answer(&reference),
        "store-rebuild answers diverged from from-scratch at scale {scale}"
    );
    let rows = index.len();
    drop((index, rebuilt));

    let mut recover_ms = f64::INFINITY;
    let mut rebuild_ms = f64::INFINITY;
    let mut store_to_answer_ms = f64::INFINITY;
    let mut extract_to_answer_ms = f64::INFINITY;
    let mut extract_missing_rows = 0;
    for _ in 0..runs {
        // Store-rebuild path: recover + rebuild + first answer.
        let t0 = std::time::Instant::now();
        let (index, _) = DurableIndex::<FlatAvlIndex>::recover(&dir).expect("recover");
        let rec = t0.elapsed().as_secs_f64() * 1e3;
        let ((snap, _), reb) = time_ms(|| rebuild_tenant(&ds, &index).expect("rebuild"));
        let (_, ans) = time_ms(|| first_answer(&snap));
        recover_ms = recover_ms.min(rec);
        rebuild_ms = rebuild_ms.min(reb);
        store_to_answer_ms = store_to_answer_ms.min(rec + reb + ans);

        // Extract-reload baseline: recover (still needed for durability)
        // + from-extracts snapshot + first answer.
        let t1 = std::time::Instant::now();
        let (index, _) = DurableIndex::<FlatAvlIndex>::recover(&dir).expect("recover");
        let old_snap = TenantSnapshot::from_dataset(ds.clone());
        let _ = first_answer(&old_snap);
        extract_to_answer_ms =
            extract_to_answer_ms.min(t1.elapsed().as_secs_f64() * 1e3);
        extract_missing_rows = index.len() - old_snap.dataset.rccs().len();
    }
    let _ = std::fs::remove_dir_all(&dir);

    ScaleResult {
        scale,
        rows,
        ingested: ingests,
        store_bytes,
        recover_ms,
        rebuild_ms,
        store_to_answer_ms,
        extract_to_answer_ms,
        extract_missing_rows,
    }
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1).map(|v| v.trim().to_string()))
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let scales: Vec<u32> = get("--scales")
        .unwrap_or_else(|| "1,4".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("--scales takes comma-separated integers"))
        .collect();
    let ingests: usize = get("--ingests")
        .map(|v| v.parse().expect("--ingests takes a number"))
        .unwrap_or(512);
    let runs: usize =
        get("--runs").map(|v| v.parse().expect("--runs takes a number")).unwrap_or(3);
    let out_path: Option<PathBuf> = get("--out").map(PathBuf::from);

    eprintln!("bench_restart: scales={scales:?}, ingests={ingests}, runs={runs}");
    let mut blocks = Vec::new();
    for &scale in &scales {
        let r = bench_scale(scale, ingests, runs);
        eprintln!(
            "  scale {:>2}x  {:>7} rows  {:>9} B  recover {:>7.1} ms  rebuild {:>7.1} ms  \
             store→answer {:>7.1} ms  extract→answer {:>7.1} ms (missing {} acked rows)",
            r.scale,
            r.rows,
            r.store_bytes,
            r.recover_ms,
            r.rebuild_ms,
            r.store_to_answer_ms,
            r.extract_to_answer_ms,
            r.extract_missing_rows
        );
        blocks.push(r.json());
    }
    let json = format!(
        "{{\"bench\":\"restart_recovery_to_first_answer\",\"cpu\":{{\"model\":\"{}\"}},\"runs\":{},\"ingests\":{},\"scales\":[{}]}}\n",
        cpu_model().replace('"', "'"),
        runs,
        ingests,
        blocks.join(",")
    );
    match out_path {
        Some(p) => {
            std::fs::write(&p, &json).expect("writing bench output");
            eprintln!("wrote {}", p.display());
        }
        None => print!("{json}"),
    }
}
