//! `bench_gbt` — batch-predict throughput of the branchless flat-forest
//! kernel versus the pointer walker, plus the histogram-vs-exact training
//! comparison behind `RegressionTree::fit_binned`.
//!
//! One boosted ensemble is trained, then three inference arms score the
//! same row matrices at growing scales: `pointer` walks the enum trees
//! row-by-row (`GbtModel::predict_pointer`, the pre-kernel code path),
//! `flat` runs the compiled SoA pool tree-at-a-time over row blocks
//! (`GbtModel::predict`), and `binned` sweeps a pre-quantized `u16` block
//! (`FlatForest::predict_binned`; the one-off quantization cost is its own
//! column since a served block is swept by many models/epochs). All three
//! arms are gated on `to_bits`-identical predictions before any timing
//! counts — the quantized descent is exact, not approximate, so no
//! tolerance is needed.
//!
//! Per-arm columns report minima over `--runs` interleaved rounds (the
//! interference-free floor on a shared container); the headline speedups
//! are the *median of per-round paired ratios*, where both arms of a
//! ratio saw the same container load phase. The acceptance target is a
//! ≥5x flat-vs-pointer speedup at the largest scale.
//!
//! ```text
//! bench_gbt [--scales 1,4,20] [--runs 3] [--trees 600] [--depth 10]
//!           [--rows 2048] [--train-rows 16384] [--out FILE]
//! ```
//!
//! The default model (600 trees × depth 10, trained on 16384 rows) is the
//! fleet-scale regime the kernel exists for: the pointer ensemble's node
//! pool is tens of MB, so its per-row full-model sweep chases dependent
//! pointers through cold cache, while the flat kernel streams each tree's
//! contiguous pool once per row block.

use domd_bench::util::time_ms;
use domd_ml::{DenseMatrix, GbtModel, GbtParams, RegressionTree, TrainingBins, TreeParams};

/// Deterministic SplitMix64 stream for the synthetic matrices.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Feature count of every matrix in this bench (the paper's pipelines
/// assemble ~2 static + ~20 RCC columns; 24 matches that regime).
const N_FEATURES: usize = 24;

fn synthetic_xy(n: usize, seed: u64) -> (DenseMatrix, Vec<f64>) {
    let mut rng = Mix(seed);
    let mut data = Vec::with_capacity(n * N_FEATURES);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..N_FEATURES).map(|_| rng.unit() * 6.0 - 3.0).collect();
        y.push(2.0 * row[0] + row[1] * row[2] + (row[3] * 2.0).sin() * 3.0 + rng.unit() * 0.2);
        data.extend_from_slice(&row);
    }
    (DenseMatrix::from_rows(data, n, N_FEATURES), y)
}

fn identical(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

struct ScaleResult {
    scale: u32,
    n_rows: usize,
    pointer_ms: f64,
    flat_ms: f64,
    binned_sweep_ms: f64,
    bin_prep_ms: f64,
    flat_speedup: f64,
    binned_speedup: f64,
}

impl ScaleResult {
    fn json(&self) -> String {
        format!(
            "{{\"scale\":{},\"n_rows\":{},\"pointer_ms\":{:.3},\"flat_ms\":{:.3},\"binned_sweep_ms\":{:.3},\"bin_prep_ms\":{:.3},\"flat_speedup\":{:.2},\"binned_speedup\":{:.2},\"bit_identical\":true}}",
            self.scale,
            self.n_rows,
            self.pointer_ms,
            self.flat_ms,
            self.binned_sweep_ms,
            self.bin_prep_ms,
            self.flat_speedup,
            self.binned_speedup
        )
    }
}

fn bench_scale(model: &GbtModel, base_rows: usize, scale: u32, runs: usize) -> ScaleResult {
    let n = base_rows * scale as usize;
    let (x, _) = synthetic_xy(n, 0xBEEF ^ u64::from(scale));

    // Bit-identity gate: every arm must reproduce the pointer walker's
    // exact bits before any timing is reported.
    let want = model.predict_pointer(&x);
    assert!(identical(&want, &model.predict(&x)), "flat arm diverged at scale {scale}");
    let bins = model.flat().bins().expect("fitted thresholds always bin");
    let block = bins.bin_matrix(&x);
    assert!(
        identical(&want, &model.flat().predict_binned(&bins, &block)),
        "binned arm diverged at scale {scale}"
    );

    // Interleaved rounds: per-arm minima + median of per-round paired
    // ratios (both sides of a ratio see the same container load phase).
    let mut pointer_ms = f64::INFINITY;
    let mut flat_ms = f64::INFINITY;
    let mut binned_sweep_ms = f64::INFINITY;
    let mut bin_prep_ms = f64::INFINITY;
    let mut flat_ratios = Vec::with_capacity(runs);
    let mut binned_ratios = Vec::with_capacity(runs);
    for _ in 0..runs {
        let (_, p_ms) = time_ms(|| model.predict_pointer(&x));
        let (_, f_ms) = time_ms(|| model.predict(&x));
        let (round_block, prep_ms) = time_ms(|| bins.bin_matrix(&x));
        let (_, b_ms) = time_ms(|| model.flat().predict_binned(&bins, &round_block));
        pointer_ms = pointer_ms.min(p_ms);
        flat_ms = flat_ms.min(f_ms);
        binned_sweep_ms = binned_sweep_ms.min(b_ms);
        bin_prep_ms = bin_prep_ms.min(prep_ms);
        flat_ratios.push(p_ms / f_ms);
        binned_ratios.push(p_ms / b_ms);
    }

    ScaleResult {
        scale,
        n_rows: n,
        pointer_ms,
        flat_ms,
        binned_sweep_ms,
        bin_prep_ms,
        flat_speedup: median(flat_ratios),
        binned_speedup: median(binned_ratios),
    }
}

struct TrainResult {
    rows: usize,
    exact_ms: f64,
    hist_ms: f64,
    bins_build_ms: f64,
    speedup: f64,
    exact_mse: f64,
    hist_mse: f64,
}

impl TrainResult {
    fn json(&self) -> String {
        format!(
            "{{\"rows\":{},\"exact_fit_ms\":{:.3},\"hist_fit_ms\":{:.3},\"bins_build_ms\":{:.3},\"fit_speedup\":{:.2},\"exact_train_mse\":{:.4},\"hist_train_mse\":{:.4}}}",
            self.rows,
            self.exact_ms,
            self.hist_ms,
            self.bins_build_ms,
            self.speedup,
            self.exact_mse,
            self.hist_mse
        )
    }
}

/// Exact-greedy vs. histogram split finding on one tree fit (squared
/// loss, depth 6): the per-tree cost every boosting round of a large fit
/// pays. The bins build is a separate column — it runs once per ensemble
/// and amortizes over `n_estimators` rounds.
fn bench_training(rows: usize, runs: usize) -> TrainResult {
    let (x, y) = synthetic_xy(rows, 0x7EA1);
    let grad: Vec<f64> = y.iter().map(|v| -v).collect();
    let hess = vec![1.0; rows];
    let all_rows: Vec<usize> = (0..rows).collect();
    let feats: Vec<usize> = (0..N_FEATURES).collect();
    let params = TreeParams { max_depth: 6, ..TreeParams::default() };

    let (bins, mut bins_build_ms) =
        time_ms(|| TrainingBins::build(&x, domd_ml::flat::MAX_TRAIN_BINS, 1));
    let mut exact_ms = f64::INFINITY;
    let mut hist_ms = f64::INFINITY;
    let mut ratios = Vec::with_capacity(runs);
    let mut exact_tree = None;
    let mut hist_tree = None;
    for _ in 0..runs {
        let (t_exact, e_ms) =
            time_ms(|| RegressionTree::fit_threaded(&x, &grad, &hess, &all_rows, &feats, params, 1));
        let (t_hist, h_ms) = time_ms(|| {
            RegressionTree::fit_binned(&x, &grad, &hess, &all_rows, &feats, params, 1, &bins)
        });
        let (_, b_ms) = time_ms(|| TrainingBins::build(&x, domd_ml::flat::MAX_TRAIN_BINS, 1));
        exact_ms = exact_ms.min(e_ms);
        hist_ms = hist_ms.min(h_ms);
        bins_build_ms = bins_build_ms.min(b_ms);
        ratios.push(e_ms / h_ms);
        exact_tree = Some(t_exact);
        hist_tree = Some(t_hist);
    }
    let mse = |t: &RegressionTree| -> f64 {
        (0..rows).map(|i| (t.predict_row(x.row(i)) - y[i]).powi(2)).sum::<f64>() / rows as f64
    };
    TrainResult {
        rows,
        exact_ms,
        hist_ms,
        bins_build_ms,
        speedup: median(ratios),
        exact_mse: mse(&exact_tree.unwrap()),
        hist_mse: mse(&hist_tree.unwrap()),
    }
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1).map(|v| v.trim().to_string()))
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let scales: Vec<u32> = get("--scales")
        .unwrap_or_else(|| "1,4,20".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("--scales takes comma-separated integers"))
        .collect();
    let runs: usize = get("--runs").map(|v| v.parse().expect("--runs takes a number")).unwrap_or(3);
    let trees: usize =
        get("--trees").map(|v| v.parse().expect("--trees takes a number")).unwrap_or(600);
    let depth: usize =
        get("--depth").map(|v| v.parse().expect("--depth takes a number")).unwrap_or(10);
    let base_rows: usize =
        get("--rows").map(|v| v.parse().expect("--rows takes a number")).unwrap_or(2048);
    let train_rows: usize = get("--train-rows")
        .map(|v| v.parse().expect("--train-rows takes a number"))
        .unwrap_or(16384);
    let out_path = get("--out");

    eprintln!(
        "bench_gbt: scales={scales:?}, runs={runs}, trees={trees}, depth={depth}, rows={base_rows}, train_rows={train_rows}"
    );
    let (x_train, y_train) = synthetic_xy(train_rows, 0x5EED);
    let params = GbtParams {
        n_estimators: trees,
        max_depth: depth,
        subsample: 0.9,
        colsample_bytree: 0.9,
        ..GbtParams::default()
    };
    let (model, fit_ms) = time_ms(|| GbtModel::fit(&x_train, &y_train, &params));
    eprintln!("  trained {} trees on {train_rows} rows in {fit_ms:.0} ms", model.n_trees());

    let training = bench_training(train_rows * 4, runs);
    eprintln!(
        "  tree fit @ {} rows: exact {:>8.1} ms  hist {:>6.1} ms ({:.1}x; bins build {:.1} ms)  mse {:.3} vs {:.3}",
        training.rows, training.exact_ms, training.hist_ms, training.speedup,
        training.bins_build_ms, training.exact_mse, training.hist_mse
    );

    let mut blocks = Vec::new();
    let largest = scales.iter().copied().max().unwrap_or(1);
    for &scale in &scales {
        let r = bench_scale(&model, base_rows, scale, runs);
        eprintln!(
            "  scale {:>2}x ({:>6} rows)  pointer {:>8.1} ms  flat {:>7.1} ms ({:.1}x)  binned {:>7.1} ms ({:.1}x; prep {:.1} ms)",
            r.scale, r.n_rows, r.pointer_ms, r.flat_ms, r.flat_speedup, r.binned_sweep_ms,
            r.binned_speedup, r.bin_prep_ms
        );
        if scale == largest && r.flat_speedup < 5.0 {
            eprintln!(
                "  WARNING: flat speedup {:.2}x misses the 5x acceptance target at {scale}x",
                r.flat_speedup
            );
        }
        blocks.push(r.json());
    }
    let json = format!(
        "{{\"bench\":\"gbt_flat_kernel\",\"cpu\":{{\"model\":\"{}\"}},\"runs\":{},\"trees\":{},\"depth\":{},\"train_rows\":{},\"training\":{},\"scales\":[{}]}}\n",
        cpu_model().replace('"', "'"),
        runs,
        trees,
        depth,
        train_rows,
        training.json(),
        blocks.join(",")
    );
    match out_path {
        Some(p) => {
            std::fs::write(&p, &json).expect("writing bench output");
            eprintln!("wrote {p}");
        }
        None => print!("{json}"),
    }
}
