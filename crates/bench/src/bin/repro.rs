//! `repro` — regenerates every table and figure of the paper's evaluation
//! (Section 5) from the synthetic NMD.
//!
//! ```text
//! repro <experiment> [--quick]
//!
//! experiments:
//!   swlin    Figure 1  — SWLIN hierarchy walk
//!   fig2     Figure 2  — delay distribution
//!   table5   Table 5   — dataset statistics
//!   table6   Table 6   — index construction memory
//!   fig5a    Figure 5a — index creation time
//!   fig5b    Figure 5b — query processing time
//!   fig5c    Figure 5c — total time
//!   fig5     all of Table 6 + Figures 5a-5c in one measurement pass
//!   fig6a-f  Figure 6  — pipeline design studies (one per letter)
//!   table7   Table 7   — test-set quality with the paper-final config
//!   pipeline full greedy optimization (Tasks 2-6) + Table 7 on its output
//!   fusion-ablation   extended fusion operators (paper future work)
//!   delta-sweep       pseudo-Huber delta sensitivity around 18
//!   dynamic-index     streaming AVL insert/delete maintenance
//!   incremental       incremental vs from-scratch on the same index
//!   backtest          rolling-origin deployment replay (extension)
//!   groupby-depth     Status Query latency vs SWLIN GROUP BY depth
//!   model-ablation    GBT vs random forest vs elastic net
//!   feature-depth     subsystem (1490) vs module (5810) feature catalogs
//!   all      everything above, in paper order
//!
//! `--quick` shrinks the scaling factors and search grids so the full suite
//! finishes quickly (useful for CI smoke runs).
//! ```

use domd_bench::modeling::{self, ModelingContext};
use domd_bench::{dataset_exp, scalability};
use domd_core::{OptimizerSettings, PipelineConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_default();

    let scales: &[u32] = if quick { &[1, 5] } else { &scalability::SCALES };
    let settings = if quick {
        OptimizerSettings {
            k_grid: vec![20, 60],
            trial_grid: vec![5, 10],
            chosen_trials: 10,
            ..OptimizerSettings::default()
        }
    } else {
        OptimizerSettings::default()
    };
    let base = if quick {
        let mut c = PipelineConfig::default0();
        c.gbt.n_estimators = 60;
        c
    } else {
        PipelineConfig::default0()
    };
    // Figures 6b-6f assume Task 2's outcome (pearson, k = 60), so they can
    // be regenerated individually without re-running the whole greedy pass.
    let after_task2 = PipelineConfig { k: if quick { 20 } else { 60 }, ..base.clone() };

    match what.as_str() {
        "swlin" => print!("{}", dataset_exp::swlin_hierarchy()),
        "fig2" => print!("{}", dataset_exp::fig2()),
        "table5" => print!("{}", dataset_exp::table5()),
        "table6" | "fig5a" | "fig5b" | "fig5c" | "fig5" => {
            let rows = scalability::measure(scales);
            match what.as_str() {
                "table6" => print!("{}", scalability::table6(&rows)),
                "fig5a" => print!("{}", scalability::fig5a(&rows)),
                "fig5b" => print!("{}", scalability::fig5b(&rows)),
                "fig5c" => print!("{}", scalability::fig5c(&rows)),
                _ => print!(
                    "{}\n{}\n{}\n{}",
                    scalability::table6(&rows),
                    scalability::fig5a(&rows),
                    scalability::fig5b(&rows),
                    scalability::fig5c(&rows)
                ),
            }
        }
        "fig6a" => with_ctx(|ctx| print!("{}", modeling::fig6a(ctx, &settings, &base))),
        "fig6b" => with_ctx(|ctx| print!("{}", modeling::fig6b(ctx, &after_task2))),
        "fig6c" => with_ctx(|ctx| print!("{}", modeling::fig6c(ctx, &after_task2))),
        "fig6d" => with_ctx(|ctx| print!("{}", modeling::fig6d(ctx, &settings, &after_task2))),
        "fig6e" => {
            let tuned = PipelineConfig {
                loss: domd_ml::Loss::PseudoHuber(18.0),
                ..after_task2.clone()
            };
            with_ctx(|ctx| print!("{}", modeling::fig6e(ctx, &settings, &tuned)))
        }
        "fig6f" => {
            let tuned = PipelineConfig {
                loss: domd_ml::Loss::PseudoHuber(18.0),
                ..after_task2.clone()
            };
            with_ctx(|ctx| print!("{}", modeling::fig6f(ctx, &tuned)))
        }
        "fusion-ablation" => {
            let tuned = PipelineConfig {
                loss: domd_ml::Loss::PseudoHuber(18.0),
                ..after_task2.clone()
            };
            with_ctx(|ctx| print!("{}", domd_bench::ablations::fusion_ablation(ctx, &tuned)))
        }
        "delta-sweep" => {
            with_ctx(|ctx| print!("{}", domd_bench::ablations::delta_sweep(ctx, &after_task2)))
        }
        "dynamic-index" => print!("{}", domd_bench::ablations::dynamic_index()),
        "backtest" => {
            let ds = domd_bench::util::standard_dataset();
            let mut cfg = domd_core::BacktestConfig::default();
            if quick {
                cfg.pipeline.gbt.n_estimators = 60;
                cfg.pipeline.grid_step = 25.0;
                cfg.eval_every_days = 365;
            }
            eprintln!("replaying the deployment loop (retrain at each as-of date)...");
            let points = domd_core::backtest(&ds, &cfg);
            print!("{}", domd_core::backtest::render(&points));
        }
        "groupby-depth" => print!("{}", domd_bench::ablations::groupby_depth_ablation()),
        "model-ablation" => {
            with_ctx(|ctx| print!("{}", domd_bench::ablations::model_ablation(ctx, &after_task2)))
        }
        "feature-depth" => with_ctx(|ctx| {
            print!("{}", domd_bench::ablations::feature_depth_ablation(ctx, &after_task2))
        }),
        "incremental" => print!("{}", domd_bench::ablations::incremental_ablation()),
        "table7" => {
            with_ctx(|ctx| print!("{}", modeling::table7(ctx, &PipelineConfig::paper_final())))
        }
        "pipeline" => with_ctx(|ctx| {
            eprintln!("running greedy optimization (Tasks 2-6)...");
            let report = modeling::full_optimization(ctx, &settings, &base);
            print!("{}", modeling::render_final_config(&report.final_config));
            print!("{}", modeling::table7(ctx, &report.final_config));
        }),
        "all" => {
            print!("{}", dataset_exp::swlin_hierarchy());
            println!();
            print!("{}", dataset_exp::fig2());
            println!();
            print!("{}", dataset_exp::table5());
            println!();
            let rows = scalability::measure(scales);
            print!("{}", scalability::table6(&rows));
            println!();
            print!("{}", scalability::fig5a(&rows));
            println!();
            print!("{}", scalability::fig5b(&rows));
            println!();
            print!("{}", scalability::fig5c(&rows));
            println!();
            let ctx = ModelingContext::standard();
            print!("{}", modeling::fig6a(&ctx, &settings, &base));
            println!();
            eprintln!("running greedy optimization (Tasks 2-6)...");
            let report = modeling::full_optimization(&ctx, &settings, &base);
            print!("{}", modeling::fig6b(&ctx, &report.final_config));
            println!();
            print!("{}", modeling::fig6c(&ctx, &report.final_config));
            println!();
            print!("{}", modeling::fig6d(&ctx, &settings, &report.final_config));
            println!();
            print!("{}", modeling::fig6e(&ctx, &settings, &report.final_config));
            println!();
            print!("{}", modeling::fig6f(&ctx, &report.final_config));
            println!();
            print!("{}", modeling::render_final_config(&report.final_config));
            println!();
            print!("{}", modeling::table7(&ctx, &report.final_config));
        }
        other => {
            eprintln!("unknown experiment {other:?}\n");
            eprintln!(
                "usage: repro <swlin|fig2|table5|table6|fig5a|fig5b|fig5c|fig5|fig6a|fig6b|fig6c|fig6d|fig6e|fig6f|table7|pipeline|fusion-ablation|delta-sweep|dynamic-index|incremental|groupby-depth|model-ablation|feature-depth|backtest|all> [--quick]"
            );
            std::process::exit(2);
        }
    }
}

fn with_ctx(f: impl FnOnce(&ModelingContext)) {
    let ctx = ModelingContext::standard();
    f(&ctx);
}
