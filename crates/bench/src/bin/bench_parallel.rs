//! `bench_parallel` — wall-clock benchmark of the deterministic parallel
//! execution layer across its four hot paths (sharded feature sweep, pooled
//! step training, per-step batch prediction, batch Status Queries) plus the
//! in-round GBT split search, at 1x and 4x RCC scale.
//!
//! Every parallel run is checked bit-for-bit against its sequential
//! counterpart before the timing is reported, so the numbers can never come
//! from a diverged code path. Output is machine-readable JSON (see
//! `scripts/bench.sh`, which writes `BENCH_pr2.json`).
//!
//! ```text
//! bench_parallel [--threads N] [--scales 1,4] [--out FILE]
//! ```

use domd_core::{PipelineConfig, PipelineInputs, TrainedPipeline};
use domd_data::{generate, Dataset, GeneratorConfig};
use domd_features::FeatureEngine;
use domd_index::{project_dataset, AvlIndex, StatusQuery, StatusQueryEngine};
use domd_ml::{DenseMatrix, GbtModel, GbtParams};
use std::time::Instant;

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// Best of `runs` timed repetitions (discards scheduler noise, which only
/// ever slows a run down).
fn best_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let (mut out, mut best) = time_ms(&mut f);
    for _ in 1..runs {
        let (o, ms) = time_ms(&mut f);
        if ms < best {
            best = ms;
            out = o;
        }
    }
    (out, best)
}

struct PathResult {
    name: &'static str,
    seq_ms: f64,
    par_ms: f64,
    identical: bool,
}

impl PathResult {
    fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"seq_ms\":{:.3},\"par_ms\":{:.3},\"speedup\":{:.3},\"identical\":{}}}",
            self.name,
            self.seq_ms,
            self.par_ms,
            self.seq_ms / self.par_ms.max(1e-9),
            self.identical
        )
    }
}

fn grid() -> Vec<f64> {
    (0..=10).map(|i| f64::from(i) * 10.0).collect()
}

fn quick_config() -> PipelineConfig {
    let mut c = PipelineConfig::default0();
    c.k = 12;
    c.grid_step = 25.0; // 5 timeline models
    c.gbt.n_estimators = 40;
    c
}

fn bench_scale(scale: u32, threads: usize, runs: usize) -> Vec<PathResult> {
    let ds: Dataset =
        generate(&GeneratorConfig { n_avails: 60, target_rccs: 9000, scale, seed: 0xD0_4D });
    let ids: Vec<_> = ds.avails().iter().map(|a| a.id).collect();
    let engine = FeatureEngine::default();
    let grid = grid();
    let mut out = Vec::new();

    // Path 1: sharded incremental feature sweep.
    let (t_seq, seq_ms) =
        best_ms(runs, || engine.generate_tensor_threaded(&ds, &ids, &grid, 1));
    let (t_par, par_ms) =
        best_ms(runs, || engine.generate_tensor_threaded(&ds, &ids, &grid, threads));
    let identical = (0..t_seq.n_steps()).all(|s| {
        t_seq.slice(s).as_slice().iter().zip(t_par.slice(s).as_slice()).all(|(a, b)| {
            a.to_bits() == b.to_bits()
        })
    });
    out.push(PathResult { name: "feature_sweep", seq_ms, par_ms, identical });

    // Paths 2 and 4: pooled step training and per-step batch prediction.
    let inputs = PipelineInputs::build(&ds, 25.0);
    let split = ds.split(1);
    let cfg = quick_config();
    let (p_seq, seq_ms) =
        best_ms(runs, || TrainedPipeline::fit_threaded(&inputs, &split.train, &cfg, 1));
    let (p_par, par_ms) =
        best_ms(runs, || TrainedPipeline::fit_threaded(&inputs, &split.train, &cfg, threads));
    let identical = domd_core::save_pipeline(&p_seq) == domd_core::save_pipeline(&p_par);
    out.push(PathResult { name: "step_training", seq_ms, par_ms, identical });

    let (pr_seq, seq_ms) = best_ms(runs, || p_seq.predict_steps_threaded(&inputs, &ids, 1));
    let (pr_par, par_ms) =
        best_ms(runs, || p_seq.predict_steps_threaded(&inputs, &ids, threads));
    let identical = pr_seq
        .as_slice()
        .iter()
        .zip(pr_par.as_slice())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    out.push(PathResult { name: "predict_steps", seq_ms, par_ms, identical });

    // Path 3: batch Status Queries over the dual-AVL index.
    let proj = project_dataset(&ds);
    let sq = StatusQueryEngine::<AvlIndex>::build(&ds, &proj);
    let mut queries = Vec::new();
    for t in 0..200u32 {
        for status in domd_data::rcc::RccStatus::FEATURE_STATUSES {
            queries.push(StatusQuery {
                rcc_type: None,
                swlin_prefix: Some((1 + t % 9, 1)),
                status,
                t_star: f64::from(t % 101),
            });
        }
    }
    let (a_seq, seq_ms) = best_ms(runs, || sq.aggregate_batch(&queries, 1));
    let (a_par, par_ms) = best_ms(runs, || sq.aggregate_batch(&queries, threads));
    let identical = a_seq == a_par;
    out.push(PathResult { name: "batch_query", seq_ms, par_ms, identical });

    // Path 5: in-round GBT split search on a wide training matrix.
    let (x, y) = synthetic_xy(1500 * scale as usize, 30, 42);
    let params = GbtParams { n_estimators: 20, ..GbtParams::default() };
    let (g_seq, seq_ms) = best_ms(runs, || GbtModel::fit_threaded(&x, &y, &params, 1));
    let (g_par, par_ms) = best_ms(runs, || GbtModel::fit_threaded(&x, &y, &params, threads));
    let identical = g_seq
        .predict(&x)
        .iter()
        .zip(g_par.predict(&x))
        .all(|(a, b)| a.to_bits() == b.to_bits());
    out.push(PathResult { name: "gbt_split_search", seq_ms, par_ms, identical });

    out
}

fn synthetic_xy(n: usize, p: usize, seed: u64) -> (DenseMatrix, Vec<f64>) {
    // Small deterministic LCG: the bench needs volume, not statistics.
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut data = Vec::with_capacity(n * p);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..p).map(|_| next() * 6.0 - 3.0).collect();
        y.push(2.0 * row[0] + row[1] * row[2] + (row[3] * 2.0).sin() * 3.0 + next() * 0.2);
        data.extend_from_slice(&row);
    }
    (DenseMatrix::from_rows(data, n, p), y)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let threads: usize = get("--threads")
        .map(|v| v.parse().expect("--threads takes a number"))
        .filter(|&t| t > 0)
        .unwrap_or_else(domd_runtime::available_threads);
    let scales: Vec<u32> = get("--scales")
        .unwrap_or_else(|| "1,4".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("--scales takes comma-separated integers"))
        .collect();
    let runs: usize = get("--runs").map(|v| v.parse().expect("--runs takes a number")).unwrap_or(2);
    let out_path = get("--out");

    eprintln!(
        "bench_parallel: threads={threads} (available={}), scales={scales:?}, runs={runs}",
        domd_runtime::available_threads()
    );
    let mut scale_blocks = Vec::new();
    for &scale in &scales {
        eprintln!("-- scale {scale}x --");
        let results = bench_scale(scale, threads, runs);
        for r in &results {
            eprintln!(
                "  {:<18} seq {:>9.1} ms  par {:>9.1} ms  speedup {:>5.2}x  identical={}",
                r.name,
                r.seq_ms,
                r.par_ms,
                r.seq_ms / r.par_ms.max(1e-9),
                r.identical
            );
            assert!(r.identical, "{} diverged from sequential output", r.name);
        }
        let paths: Vec<String> = results.iter().map(PathResult::json).collect();
        scale_blocks
            .push(format!("{{\"scale\":{},\"paths\":[{}]}}", scale, paths.join(",")));
    }
    let json = format!(
        "{{\"bench\":\"pr2_parallel_runtime\",\"threads\":{},\"available_threads\":{},\"runs\":{},\"scales\":[{}]}}\n",
        threads,
        domd_runtime::available_threads(),
        runs,
        scale_blocks.join(",")
    );
    match out_path {
        Some(p) => {
            std::fs::write(&p, &json).expect("writing bench output");
            eprintln!("wrote {p}");
        }
        None => print!("{json}"),
    }
}
