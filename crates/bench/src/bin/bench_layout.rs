//! `bench_layout` — wall-clock and memory benchmark of the PR-3 layout
//! work: flat cache-friendly index variants (sorted array, Eytzinger,
//! pointer AVL, arena-backed AVL) over the 11-step Status Query sweep, and
//! the memoizing snapshot cache on repeated Status Queries, at 1x–20x RCC
//! scale.
//!
//! Every timed arm is first checked bit-for-bit against the pointer-AVL
//! reference sweep, and the cached Status Query path against the uncached
//! engine, so a reported speedup can never come from a diverged code path.
//! Output is machine-readable JSON (see `scripts/bench.sh`, which writes
//! `BENCH_pr3.json`).
//!
//! ```text
//! bench_layout [--scales 1,5,10,20] [--runs N] [--passes N] [--out FILE]
//! ```

use domd_bench::util::{mb, mean_time_ms, scaled_dataset, time_ms};
use domd_data::rcc::RccStatus;
use domd_data::Dataset;
use domd_index::{
    project_dataset, sweep_from_scratch, sweep_incremental, AvlIndex, CachedStatusQueryEngine,
    EytzingerIndex, FlatAvlIndex, HeapSize, LogicalTimeIndex, RowColumns, SortedArrayIndex,
    StatStructure, StatusQuery, StatusQueryEngine, DEFAULT_CACHE_CAPACITY,
};

const N_GROUPS: usize = 30;

struct Workload {
    projected: Vec<domd_index::LogicalRcc>,
    amounts: Vec<f64>,
    durations: Vec<f64>,
    groups: Vec<usize>,
    grid: Vec<f64>,
}

impl Workload {
    fn build(ds: &Dataset) -> Self {
        let projected = project_dataset(ds);
        let rccs = ds.rccs();
        Workload {
            projected,
            amounts: rccs.iter().map(|r| r.amount).collect(),
            durations: rccs.iter().map(|r| f64::from(r.duration_days())).collect(),
            groups: rccs
                .iter()
                .map(|r| r.rcc_type.index() * 10 + r.swlin.digit(1) as usize)
                .collect(),
            grid: (0..=10).map(|i| f64::from(i) * 10.0).collect(),
        }
    }

    fn cols(&self) -> RowColumns<'_> {
        RowColumns { amounts: &self.amounts, durations: &self.durations, groups: &self.groups }
    }
}

/// Agreement of two sweep traces (one `StatStructure` per grid point).
/// `bitwise` compares raw f64 bits — only valid between sweeps with the
/// same accumulation order (the two incremental AVL variants). The
/// from-scratch arms recompute each grid point independently, so their
/// sums associate differently; they are held to a 1e-9 relative tolerance
/// instead (counts stay exact either way).
fn traces_agree(a: &[StatStructure], b: &[StatStructure], bitwise: bool) -> bool {
    let close = |p: f64, q: f64| {
        if bitwise {
            p.to_bits() == q.to_bits()
        } else {
            (p - q).abs() <= 1e-9 * p.abs().max(q.abs()).max(1.0)
        }
    };
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            (0..N_GROUPS).all(|g| {
                let cells = [
                    (&x.active[g], &y.active[g]),
                    (&x.settled[g], &y.settled[g]),
                    (&x.created[g], &y.created[g]),
                ];
                cells.iter().all(|(p, q)| {
                    p.count.to_bits() == q.count.to_bits()
                        && close(p.sum_amount, q.sum_amount)
                        && close(p.sum_duration, q.sum_duration)
                })
            })
        })
}

struct ArmResult {
    name: &'static str,
    build_ms: f64,
    query_ms: f64,
    heap_mb: f64,
    identical: bool,
}

impl ArmResult {
    fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"build_ms\":{:.3},\"query_ms\":{:.3},\"heap_mb\":{:.3},\"identical\":{}}}",
            self.name, self.build_ms, self.query_ms, self.heap_mb, self.identical
        )
    }
}

fn trace_of(sweep: impl Fn(&mut Vec<StatStructure>)) -> Vec<StatStructure> {
    let mut t = Vec::new();
    sweep(&mut t);
    t
}

fn bench_arms(w: &Workload, runs: usize) -> Vec<ArmResult> {
    // Reference trace: the pointer-AVL incremental sweep every other arm
    // must reproduce bit-for-bit.
    let avl = AvlIndex::build(&w.projected);
    let reference = trace_of(|t| {
        sweep_incremental(&avl, w.cols(), N_GROUPS, &w.grid, |_, _, st| t.push(st.clone()));
    });
    let mut out = Vec::new();

    let (sa, sa_build) = time_ms(|| SortedArrayIndex::build(&w.projected));
    let trace = trace_of(|t| {
        sweep_from_scratch(&sa, w.cols(), N_GROUPS, &w.grid, |_, _, st| t.push(st.clone()));
    });
    out.push(ArmResult {
        name: "sorted-array",
        build_ms: sa_build,
        query_ms: mean_time_ms(runs, || {
            sweep_from_scratch(&sa, w.cols(), N_GROUPS, &w.grid, |_, _, _| {})
        }),
        heap_mb: mb(sa.heap_bytes()),
        identical: traces_agree(&reference, &trace, false),
    });

    let (ey, ey_build) = time_ms(|| EytzingerIndex::build(&w.projected));
    let trace = trace_of(|t| {
        sweep_from_scratch(&ey, w.cols(), N_GROUPS, &w.grid, |_, _, st| t.push(st.clone()));
    });
    out.push(ArmResult {
        name: "eytzinger",
        build_ms: ey_build,
        query_ms: mean_time_ms(runs, || {
            sweep_from_scratch(&ey, w.cols(), N_GROUPS, &w.grid, |_, _, _| {})
        }),
        heap_mb: mb(ey.heap_bytes()),
        identical: traces_agree(&reference, &trace, false),
    });

    out.push(ArmResult {
        name: "avl+incremental",
        build_ms: mean_time_ms(runs, || AvlIndex::build(&w.projected)),
        query_ms: mean_time_ms(runs, || {
            sweep_incremental(&avl, w.cols(), N_GROUPS, &w.grid, |_, _, _| {})
        }),
        heap_mb: mb(avl.heap_bytes()),
        identical: true,
    });

    let (favl, favl_build) = time_ms(|| FlatAvlIndex::build(&w.projected));
    let trace = trace_of(|t| {
        sweep_incremental(&favl, w.cols(), N_GROUPS, &w.grid, |_, _, st| t.push(st.clone()));
    });
    out.push(ArmResult {
        name: "flat-avl+incr",
        build_ms: favl_build,
        query_ms: mean_time_ms(runs, || {
            sweep_incremental(&favl, w.cols(), N_GROUPS, &w.grid, |_, _, _| {})
        }),
        heap_mb: mb(favl.heap_bytes()),
        identical: traces_agree(&reference, &trace, true),
    });

    out
}

struct CacheResult {
    passes: usize,
    n_queries: usize,
    uncached_ms: f64,
    cached_ms: f64,
    hit_rate: f64,
    heap_mb: f64,
    identical: bool,
}

impl CacheResult {
    fn speedup(&self) -> f64 {
        self.uncached_ms / self.cached_ms.max(1e-9)
    }

    fn json(&self) -> String {
        format!(
            "{{\"passes\":{},\"n_queries\":{},\"uncached_ms\":{:.3},\"cached_ms\":{:.3},\"speedup\":{:.3},\"hit_rate\":{:.4},\"heap_mb\":{:.3},\"identical\":{}}}",
            self.passes,
            self.n_queries,
            self.uncached_ms,
            self.cached_ms,
            self.speedup(),
            self.hit_rate,
            self.heap_mb,
            self.identical
        )
    }
}

/// The serving workload: the same Status Query mix the feature sweep and
/// repeated online DoMD queries issue — every grid anchor × group-by node
/// × status, asked `passes` times (a monitoring dashboard refreshing).
fn serving_queries() -> Vec<StatusQuery> {
    let mut qs = Vec::new();
    for t in 0..=20u32 {
        for prefix in 1..=9u32 {
            for status in RccStatus::FEATURE_STATUSES {
                qs.push(StatusQuery {
                    rcc_type: None,
                    swlin_prefix: Some((prefix, 1)),
                    status,
                    t_star: f64::from(t) * 5.0,
                });
            }
        }
    }
    qs
}

fn bench_cache(ds: &Dataset, projected: &[domd_index::LogicalRcc], passes: usize) -> CacheResult {
    let qs = serving_queries();
    let plain = StatusQueryEngine::<AvlIndex>::build(ds, projected);
    let mut cached =
        CachedStatusQueryEngine::<AvlIndex>::build(ds, projected, DEFAULT_CACHE_CAPACITY);

    // Single-thread repeated Status Queries: the uncached engine pays the
    // full retrieval every pass; the memoizing engine pays it once.
    let (want, uncached_ms) = time_ms(|| {
        let mut last = Vec::new();
        for _ in 0..passes {
            last = qs.iter().map(|q| plain.aggregate(q)).collect();
        }
        last
    });
    let (got, cached_ms) = time_ms(|| {
        let mut last = Vec::new();
        for _ in 0..passes {
            last = qs.iter().map(|q| cached.aggregate_cached(q)).collect();
        }
        last
    });
    let identical = want.len() == got.len()
        && want.iter().zip(&got).all(|(a, b)| {
            a.count == b.count
                && a.sum_amount.to_bits() == b.sum_amount.to_bits()
                && a.sum_duration.to_bits() == b.sum_duration.to_bits()
        });
    CacheResult {
        passes,
        n_queries: qs.len() * passes,
        uncached_ms,
        cached_ms,
        hit_rate: cached.stats().hit_rate(),
        heap_mb: mb(cached.heap_bytes()),
        identical,
    }
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let scales: Vec<u32> = get("--scales")
        .unwrap_or_else(|| "1,5,10,20".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("--scales takes comma-separated integers"))
        .collect();
    let runs: usize = get("--runs").map(|v| v.parse().expect("--runs takes a number")).unwrap_or(3);
    let passes: usize =
        get("--passes").map(|v| v.parse().expect("--passes takes a number")).unwrap_or(3);
    let out_path = get("--out");

    eprintln!("bench_layout: scales={scales:?}, runs={runs}, passes={passes}");
    let mut scale_blocks = Vec::new();
    for &scale in &scales {
        eprintln!("-- scale {scale}x --");
        let ds = scaled_dataset(scale);
        let w = Workload::build(&ds);
        let arms = bench_arms(&w, runs);
        for a in &arms {
            eprintln!(
                "  {:<16} build {:>9.1} ms  query {:>9.1} ms  heap {:>8.1} MB  identical={}",
                a.name, a.build_ms, a.query_ms, a.heap_mb, a.identical
            );
            assert!(a.identical, "{} diverged from the reference sweep", a.name);
        }
        let cache = bench_cache(&ds, &w.projected, passes);
        eprintln!(
            "  snapshot-cache   uncached {:>8.1} ms  cached {:>8.1} ms  speedup {:>5.2}x  hit-rate {:.3}  identical={}",
            cache.uncached_ms,
            cache.cached_ms,
            cache.speedup(),
            cache.hit_rate,
            cache.identical
        );
        assert!(cache.identical, "cached Status Queries diverged from the uncached engine");
        if scale >= 10 && cache.speedup() < 1.5 {
            eprintln!(
                "  WARNING: cache speedup {:.2}x below the 1.5x acceptance floor at {scale}x",
                cache.speedup()
            );
        }
        let arm_json: Vec<String> = arms.iter().map(ArmResult::json).collect();
        scale_blocks.push(format!(
            "{{\"scale\":{},\"n_rccs\":{},\"arms\":[{}],\"status_query_cache\":{}}}",
            scale,
            w.projected.len(),
            arm_json.join(","),
            cache.json()
        ));
    }
    let json = format!(
        "{{\"bench\":\"pr3_layout_cache\",\"cpu\":{{\"model\":\"{}\",\"threads\":{}}},\"runs\":{},\"passes\":{},\"scales\":[{}]}}\n",
        cpu_model().replace('"', "'"),
        domd_runtime::available_threads(),
        runs,
        passes,
        scale_blocks.join(",")
    );
    match out_path {
        Some(p) => {
            std::fs::write(&p, &json).expect("writing bench output");
            eprintln!("wrote {p}");
        }
        None => print!("{json}"),
    }
}
