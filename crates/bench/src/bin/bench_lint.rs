//! `bench_lint` — cold vs warm sweep time of the workspace invariant
//! analyzer's incremental cache.
//!
//! The cold arm deletes the cache file first, so every per-file summary
//! (lex, parse, per-file rules) is recomputed; the warm arm re-reads the
//! cache the cold sweep just wrote, so every unchanged file is a
//! content-hash hit and only the interprocedural passes (R7/R8/R9) and
//! the waiver accounting run fresh. Before any timing is reported the
//! two reports are identity-gated byte-for-byte on their JSON rendering,
//! and the sweep stats must show zero hits cold / zero misses warm —
//! a cache that changes answers is worse than no cache. Each arm
//! reports its minimum over `--runs` repetitions. The acceptance target
//! is a ≥5x warm speedup; the harness warns (does not fail) below it,
//! since wall-clock ratios are load-dependent on shared containers.
//!
//! ```text
//! bench_lint [--runs 3] [--root DIR] [--out FILE]
//! ```

use domd_analyzer::{find_root, scan_workspace_cached};
use domd_bench::util::time_ms;
use std::fmt::Write as _;
use std::path::PathBuf;

fn main() {
    let mut runs = 3usize;
    let mut out = PathBuf::from("BENCH_lint.json");
    let mut root: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--runs" => runs = it.next().expect("--runs N").parse().expect("numeric --runs"),
            "--out" => out = PathBuf::from(it.next().expect("--out FILE")),
            "--root" => root = Some(PathBuf::from(it.next().expect("--root DIR"))),
            other => panic!("bench_lint: unknown flag {other}"),
        }
    }
    assert!(runs > 0, "--runs must be positive");
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().expect("readable cwd");
        find_root(&cwd).expect("run from inside the workspace or pass --root")
    });

    let cache_dir =
        std::env::temp_dir().join(format!("domd-bench-lint-{}", std::process::id()));
    std::fs::create_dir_all(&cache_dir).expect("temp cache dir");
    let cache = cache_dir.join("lint-cache");

    let mut cold_min = f64::INFINITY;
    let mut warm_min = f64::INFINITY;
    let mut files = 0usize;
    let mut violations = 0usize;
    let mut waivers = 0usize;
    let mut warm_hits = 0usize;

    for _ in 0..runs {
        let _ = std::fs::remove_file(&cache);
        let ((cold_report, cold_stats), cold_ms) =
            time_ms(|| scan_workspace_cached(&root, Some(&cache)).expect("cold sweep"));
        assert_eq!(cold_stats.cache_hits, 0, "cold sweep saw a stale cache");
        cold_min = cold_min.min(cold_ms);

        let ((warm_report, warm_stats), warm_ms) =
            time_ms(|| scan_workspace_cached(&root, Some(&cache)).expect("warm sweep"));
        assert_eq!(warm_stats.cache_misses, 0, "warm sweep missed a cached file");
        warm_min = warm_min.min(warm_ms);

        // Identity gate: the cache must never change the answer.
        assert_eq!(
            cold_report.render_json(),
            warm_report.render_json(),
            "cold and warm sweeps disagree — the cache is unsound"
        );
        files = warm_report.files_scanned;
        violations = warm_report.violations.len();
        waivers = warm_report.waivers.len();
        warm_hits = warm_stats.cache_hits;
    }
    std::fs::remove_dir_all(&cache_dir).ok();

    let speedup = cold_min / warm_min;
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"suite\": \"lint\",");
    let _ = writeln!(json, "  \"runs\": {runs},");
    let _ = writeln!(json, "  \"files_scanned\": {files},");
    let _ = writeln!(json, "  \"violations\": {violations},");
    let _ = writeln!(json, "  \"waivers\": {waivers},");
    let _ = writeln!(json, "  \"warm_cache_hits\": {warm_hits},");
    let _ = writeln!(json, "  \"cold_ms\": {cold_min:.3},");
    let _ = writeln!(json, "  \"warm_ms\": {warm_min:.3},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.2},");
    let _ = writeln!(json, "  \"identical_findings\": true");
    json.push_str("}\n");
    std::fs::write(&out, &json).expect("write bench output");

    println!(
        "bench_lint: {files} file(s), cold {cold_min:.1} ms, warm {warm_min:.1} ms \
         ({speedup:.1}x), reports identical"
    );
    if speedup < 5.0 {
        eprintln!(
            "bench_lint: WARNING — warm speedup {speedup:.1}x is below the 5x \
             acceptance target"
        );
    }
}
