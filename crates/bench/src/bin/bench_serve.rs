//! `bench_serve` — latency and shedding behaviour of the serving core
//! under open-loop overload.
//!
//! For each data scale, a calibration pass measures the mean closed-loop
//! request latency and derives a base inter-arrival gap that puts 1x
//! offered load comfortably under capacity. Each offered-load multiplier
//! then divides that gap: arrivals follow the deterministic open-loop
//! schedule from [`domd_serve::generate_schedule`] and never wait for
//! completions, so overload is real — the admission queue fills, sheds
//! arrive as typed `DomdError::Overloaded`, and deadline misses surface
//! as `DomdError::DeadlineExceeded`, never as silent queue growth.
//!
//! Reported per (scale, load): p50/p99 latency of *admitted* requests
//! (queue wait + service, in ms ticks), sustained completed-QPS, and
//! shed rate. The acceptance gate: at the highest offered load, the
//! admitted-request p99 must stay within 5x of the 1x-load p99 — the
//! whole point of shedding is that the requests we do accept stay fast.
//! Each load takes its best (minimum) p50/p99 over `--runs` repetitions,
//! the interference floor on a shared container.
//!
//! ```text
//! bench_serve [--scales 1,5,20] [--loads 1,2,5,10] [--requests N]
//!             [--runs N] [--workers N] [--out FILE]
//! ```

use domd_bench::util::time_ms;
use domd_core::{PipelineConfig, PipelineInputs, TrainedPipeline};
use domd_data::{generate, Dataset, GeneratorConfig};
use domd_features::FeatureEngine;
use domd_serve::{
    generate_schedule, LoadGenConfig, Request, ServeConfig, ServeCore, SharedModel,
    TenantSnapshot, WallClock,
};
use std::sync::Arc;

const TENANTS: usize = 4;

/// The serve-sized tenant dataset: small enough that a single predict is
/// milliseconds (so offered load, not model cost, is the variable), with
/// `scale` multiplying RCC volume exactly as the paper's scalability arm.
fn serve_dataset(scale: u32) -> Dataset {
    generate(&GeneratorConfig { n_avails: 24, target_rccs: 1_500, scale, seed: 0xD0_4D })
}

/// One small pipeline shared across all scales — the serving layer's
/// latency contract does not depend on model size, and training is not
/// what this bench measures.
fn model() -> SharedModel {
    let ds = serve_dataset(1);
    let inputs = PipelineInputs::build(&ds, 50.0);
    let split = ds.split(1);
    let mut cfg = PipelineConfig::default0();
    cfg.k = 6;
    cfg.grid_step = 50.0;
    cfg.gbt.n_estimators = 10;
    SharedModel {
        pipeline: Arc::new(TrainedPipeline::fit(&inputs, &split.train, &cfg)),
        features: FeatureEngine::default(),
    }
}

fn fresh_core(
    ds: &Dataset,
    model: &SharedModel,
    workers: usize,
    queue_capacity: usize,
) -> ServeCore {
    let snapshots: Vec<TenantSnapshot> =
        (0..TENANTS).map(|_| TenantSnapshot::from_dataset(ds.clone())).collect();
    let config = ServeConfig { workers, queue_capacity, ..ServeConfig::default() };
    ServeCore::new(config, WallClock::new(), model.clone(), snapshots)
}

/// What calibration learned about one data scale.
struct Calibration {
    /// Base inter-arrival gap in ms; offered-load multipliers divide it.
    base_gap: f64,
    /// Admission queue depth sized to a latency budget (see below).
    queue_capacity: usize,
}

/// Closed-loop calibration: mean per-request latency with the pool busy
/// but never queued behind an arrival process. Two numbers fall out:
///
/// * the base gap targets ~25% utilization at 1x offered load
///   (`4 * mean / workers`), so 1x is the healthy baseline the overload
///   runs are judged against;
/// * the queue capacity is sized to a *latency budget*, not a count —
///   worst-case queue wait is `capacity * mean / workers`, so capping
///   capacity at `4 * workers * p99_1x / mean` keeps the admitted tail
///   within the acceptance gate by construction. A deeper queue would
///   not serve more requests under overload, it would only make the
///   ones we do serve later.
fn calibrate(ds: &Dataset, model: &SharedModel, workers: usize) -> Calibration {
    let core = fresh_core(ds, model, workers, ServeConfig::default().queue_capacity);
    let cfg = LoadGenConfig { requests: 60, budget: u64::MAX / 2, ..LoadGenConfig::default() };
    let schedule = generate_schedule(&cfg, &[ds, ds, ds, ds]);
    let warmup: Vec<Request> =
        schedule.into_iter().map(|(_, mut r)| { r.submitted = 0; r }).collect();
    let (responses, _) = time_ms(|| core.run_batch(&warmup));
    let served: Vec<u64> =
        responses.iter().filter(|r| !r.is_shed()).map(|r| r.service).collect();
    let mean = if served.is_empty() {
        1.0
    } else {
        served.iter().sum::<u64>() as f64 / served.len() as f64
    };
    let base_gap = (4.0 * mean.max(0.25) / workers as f64).max(1.0);
    // Tick granularity floors the observable 1x p99 at 1 ms.
    let p99_floor = mean.max(1.0);
    let queue_capacity =
        ((4.0 * workers as f64 * p99_floor / mean.max(0.05)).round() as usize).clamp(8, 64);
    Calibration { base_gap, queue_capacity }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct LoadResult {
    load: u32,
    offered_qps: f64,
    requests: usize,
    admitted: usize,
    shed: usize,
    shed_rate: f64,
    p50_ms: u64,
    p99_ms: u64,
    sustained_qps: f64,
}

impl LoadResult {
    fn json(&self) -> String {
        format!(
            "{{\"load\":{},\"offered_qps\":{:.1},\"requests\":{},\"admitted\":{},\"shed\":{},\"shed_rate\":{:.4},\"p50_ms\":{},\"p99_ms\":{},\"sustained_qps\":{:.1}}}",
            self.load,
            self.offered_qps,
            self.requests,
            self.admitted,
            self.shed,
            self.shed_rate,
            self.p50_ms,
            self.p99_ms,
            self.sustained_qps
        )
    }
}

fn bench_load(
    ds: &Dataset,
    model: &SharedModel,
    workers: usize,
    cal: &Calibration,
    load: u32,
    requests: usize,
    runs: usize,
) -> LoadResult {
    let gap = (cal.base_gap / load as f64).max(0.05);
    let budget = ((cal.base_gap * 40.0) as u64).max(200);
    let cfg = LoadGenConfig { requests, mean_gap: gap, budget, ..LoadGenConfig::default() };

    let mut p50_ms = u64::MAX;
    let mut p99_ms = u64::MAX;
    let mut best_qps = 0.0f64;
    let mut total_admitted = 0usize;
    let mut total_shed = 0usize;
    for _ in 0..runs {
        // A fresh core per run: ingests in the mix publish epochs, and
        // runs must not observe each other's mutations.
        let core = fresh_core(ds, model, workers, cal.queue_capacity);
        let schedule = generate_schedule(&cfg, &[ds, ds, ds, ds]);
        let (responses, wall_ms) = time_ms(|| core.run_scheduled(&schedule));
        let mut latencies: Vec<u64> = responses
            .iter()
            .filter(|r| !r.is_shed())
            .map(|r| r.queued + r.service)
            .collect();
        latencies.sort_unstable();
        let shed = responses.len() - latencies.len();
        total_admitted += latencies.len();
        total_shed += shed;
        p50_ms = p50_ms.min(percentile(&latencies, 0.50));
        p99_ms = p99_ms.min(percentile(&latencies, 0.99));
        best_qps = best_qps.max(latencies.len() as f64 / (wall_ms / 1e3));
    }
    let total = runs * requests;
    LoadResult {
        load,
        offered_qps: 1e3 / gap,
        requests,
        admitted: total_admitted / runs,
        shed: total_shed / runs,
        shed_rate: total_shed as f64 / total as f64,
        p50_ms,
        p99_ms,
        sustained_qps: best_qps,
    }
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1).map(|v| v.trim().to_string()))
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let parse_list = |flag: &str, default: &str| -> Vec<u32> {
        get(flag)
            .unwrap_or_else(|| default.to_string())
            .split(',')
            .map(|s| s.trim().parse().expect("comma-separated integers"))
            .collect()
    };
    let scales = parse_list("--scales", "1,5,20");
    let loads = parse_list("--loads", "1,2,5,10");
    let requests: usize =
        get("--requests").map(|v| v.parse().expect("--requests takes a number")).unwrap_or(300);
    let runs: usize = get("--runs").map(|v| v.parse().expect("--runs takes a number")).unwrap_or(2);
    let workers: usize =
        get("--workers").map(|v| v.parse().expect("--workers takes a number")).unwrap_or(4);
    let out_path = get("--out");

    eprintln!(
        "bench_serve: scales={scales:?}, loads={loads:?}, requests={requests}, runs={runs}, workers={workers}"
    );
    let (model, train_ms) = time_ms(model);
    eprintln!("  model trained in {train_ms:.0} ms");

    let mut scale_blocks = Vec::new();
    let mut gate_failures = 0usize;
    for &scale in &scales {
        let ds = serve_dataset(scale);
        let cal = calibrate(&ds, &model, workers);
        eprintln!(
            "  scale {:>2}x  ({} RCCs, {} tenants)  base gap {:.2} ms ({:.0} qps at 1x)  queue {}",
            scale,
            ds.rccs().len(),
            TENANTS,
            cal.base_gap,
            1e3 / cal.base_gap,
            cal.queue_capacity
        );
        let mut load_blocks = Vec::new();
        let mut p99_at_1x = None;
        let mut p99_at_max = None;
        for &load in &loads {
            let r = bench_load(&ds, &model, workers, &cal, load, requests, runs);
            eprintln!(
                "    load {:>2}x  offered {:>7.0} qps  sustained {:>7.0} qps  shed {:>5.1}%  p50 {:>4} ms  p99 {:>4} ms",
                r.load,
                r.offered_qps,
                r.sustained_qps,
                r.shed_rate * 100.0,
                r.p50_ms,
                r.p99_ms
            );
            if load == loads[0] {
                p99_at_1x = Some(r.p99_ms.max(1));
            }
            p99_at_max = Some(r.p99_ms.max(1));
            load_blocks.push(r.json());
        }
        let (base, worst) = (p99_at_1x.unwrap_or(1), p99_at_max.unwrap_or(1));
        let ratio = worst as f64 / base as f64;
        if ratio > 5.0 {
            gate_failures += 1;
            eprintln!(
                "  WARNING: admitted-request p99 at {}x load is {ratio:.1}x the 1x p99 (target <= 5x) at scale {scale}x",
                loads.last().copied().unwrap_or(1)
            );
        } else {
            eprintln!("    p99 ratio max-load/1x = {ratio:.2} (target <= 5)");
        }
        scale_blocks.push(format!(
            "{{\"scale\":{},\"n_rccs\":{},\"tenants\":{},\"base_gap_ms\":{:.3},\"queue_capacity\":{},\"p99_ratio_max_vs_1x\":{:.3},\"loads\":[{}]}}",
            scale,
            ds.rccs().len(),
            TENANTS,
            cal.base_gap,
            cal.queue_capacity,
            ratio,
            load_blocks.join(",")
        ));
    }

    let json = format!(
        "{{\"bench\":\"serve_overload\",\"cpu\":{{\"model\":\"{}\"}},\"runs\":{},\"requests\":{},\"workers\":{},\"gate_p99_within_5x\":{},\"scales\":[{}]}}\n",
        cpu_model().replace('"', "'"),
        runs,
        requests,
        workers,
        if gate_failures == 0 { "true" } else { "false" },
        scale_blocks.join(",")
    );
    match out_path {
        Some(p) => {
            std::fs::write(&p, &json).expect("writing bench output");
            eprintln!("wrote {p}");
        }
        None => print!("{json}"),
    }
}
