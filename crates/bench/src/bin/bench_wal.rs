//! `bench_wal` — wall-clock cost of the PR-4 durability layer on the
//! dynamic-maintenance path: the same mutation stream applied to a plain
//! in-memory [`FlatAvlIndex`] (baseline), to a [`DurableIndex`] with the
//! WAL only (no checkpoints), and to a [`DurableIndex`] with the default
//! auto-checkpoint cadence — plus the time to recover the store afterward.
//!
//! The WAL-only arm is the headline number: the issue's acceptance target
//! is <10% mutation-throughput overhead versus the in-memory baseline.
//! Fsyncs are *not* on the per-mutation path — durability is group-
//! committed at sync/checkpoint boundaries — so the mutation loop
//! (including its 32 KiB batch writes) and the final `sync` are timed as
//! separate columns: `wal_ms` is the append overhead the target bounds,
//! `wal_sync_ms` the once-per-interval boundary cost. Both durable arms
//! are bit-identity-checked against the baseline's final entry set and
//! retrieval results before any timing is reported. Each arm reports its
//! minimum over `--runs` repetitions — the interference-free estimate on
//! a shared container, where one background-writeback stall would
//! otherwise poison a mean.
//!
//! ```text
//! bench_wal [--scales 1,4] [--mutations N] [--runs N] [--out FILE]
//! ```

use domd_bench::util::{scaled_dataset, time_ms};
use domd_index::durable::DurableIndex;
use domd_index::{project_dataset, FlatAvlIndex, LogicalRcc, LogicalTimeIndex, MaintainableIndex};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Deterministic SplitMix64 stream driving the mutation mix.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One step of the mutation stream, pre-generated so every arm replays the
/// exact same sequence.
#[derive(Clone, Copy)]
enum Step {
    Insert(LogicalRcc),
    Settle(u32, f64),
    Remove(u32),
    Reopen(u32, f64),
}

fn make_steps(projected: &[LogicalRcc], mutations: usize) -> Vec<Step> {
    let n = projected.len() as u32;
    let mut rng = Mix(0xD04D);
    let mut next_id = n;
    (0..mutations)
        .map(|_| {
            let r = rng.next();
            let id = (r >> 8) as u32 % n;
            match r % 4 {
                0 => {
                    let start = (r >> 40) as f64 % 90.0;
                    next_id += 1;
                    Step::Insert(LogicalRcc {
                        id: next_id,
                        avail: projected[id as usize].avail,
                        start,
                        end: start + 25.0,
                    })
                }
                1 => Step::Settle(id, (r >> 40) as f64 % 120.0),
                2 => Step::Remove(id),
                _ => Step::Reopen(id, 100.0 + (r >> 40) as f64 % 60.0),
            }
        })
        .collect()
}

/// The in-memory baseline: identical bookkeeping (entry map + index
/// maintenance) with no durability. `mutate_baseline` is the timed phase.
fn run_baseline(projected: &[LogicalRcc], steps: &[Step]) -> (Vec<LogicalRcc>, f64) {
    let mut index = FlatAvlIndex::build(projected);
    let mut entries: BTreeMap<u32, LogicalRcc> = projected.iter().map(|r| (r.id, *r)).collect();
    let (_, ms) = time_ms(|| mutate_baseline(&mut index, &mut entries, steps));
    (entries.into_values().collect(), ms)
}

fn mutate_baseline(
    index: &mut FlatAvlIndex,
    entries: &mut BTreeMap<u32, LogicalRcc>,
    steps: &[Step],
) {
    for s in steps {
        match *s {
            Step::Insert(rcc) => {
                if let std::collections::btree_map::Entry::Vacant(slot) = entries.entry(rcc.id) {
                    index.insert_logical(&rcc);
                    slot.insert(rcc);
                }
            }
            Step::Remove(id) => {
                if let Some(old) = entries.remove(&id) {
                    index.remove_logical(&old);
                }
            }
            Step::Settle(id, end) | Step::Reopen(id, end) => {
                if let Some(old) = entries.get_mut(&id) {
                    index.remove_logical(&LogicalRcc { ..*old });
                    old.end = end;
                    index.insert_logical(&LogicalRcc { ..*old });
                }
            }
        }
    }
}

/// Store initialization (epoch-0 checkpoint write, index build) is setup,
/// not the per-mutation path. The mutation loop (including the 32 KiB
/// group-commit batch writes it triggers) and the final durability `sync`
/// are timed separately: the loop is the per-mutation append overhead the
/// acceptance target bounds, the fsync is a boundary cost paid once per
/// sync/checkpoint interval and reported in its own column.
fn run_durable(
    dir: &PathBuf,
    projected: &[LogicalRcc],
    steps: &[Step],
    checkpoint_every: Option<u64>,
) -> (Vec<LogicalRcc>, f64, f64) {
    let _ = std::fs::remove_dir_all(dir);
    let mut di: DurableIndex<FlatAvlIndex> = DurableIndex::create(dir, projected).unwrap();
    di.set_checkpoint_every(checkpoint_every);
    let (_, loop_ms) = time_ms(|| {
        for s in steps {
            match *s {
                Step::Insert(rcc) => drop(di.insert(&rcc).unwrap()),
                Step::Remove(id) => drop(di.remove(id).unwrap()),
                Step::Settle(id, end) => drop(di.settle(id, end).unwrap()),
                Step::Reopen(id, end) => drop(di.reopen(id, end).unwrap()),
            }
        }
    });
    let (_, sync_ms) = time_ms(|| di.sync().unwrap());
    (di.entries(), loop_ms, sync_ms)
}

fn identical(a: &[LogicalRcc], b: &[LogicalRcc]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.id == y.id
                && x.avail == y.avail
                && x.start.to_bits() == y.start.to_bits()
                && x.end.to_bits() == y.end.to_bits()
        })
}

struct ScaleResult {
    scale: u32,
    n_rccs: usize,
    mutations: usize,
    baseline_ms: f64,
    wal_ms: f64,
    overhead_pct: f64,
    wal_sync_ms: f64,
    wal_ckpt_ms: f64,
    recover_ms: f64,
    recovered_rows: usize,
}

impl ScaleResult {
    fn json(&self) -> String {
        format!(
            "{{\"scale\":{},\"n_rccs\":{},\"mutations\":{},\"baseline_ms\":{:.3},\"wal_ms\":{:.3},\"wal_overhead_pct\":{:.2},\"wal_sync_ms\":{:.3},\"wal_checkpoint_ms\":{:.3},\"recover_ms\":{:.3},\"recovered_rows\":{}}}",
            self.scale,
            self.n_rccs,
            self.mutations,
            self.baseline_ms,
            self.wal_ms,
            self.overhead_pct,
            self.wal_sync_ms,
            self.wal_ckpt_ms,
            self.recover_ms,
            self.recovered_rows
        )
    }
}

fn bench_scale(scale: u32, mutations: usize, runs: usize) -> ScaleResult {
    let ds = scaled_dataset(scale);
    let projected = project_dataset(&ds);
    let steps = make_steps(&projected, mutations);
    let dir = std::env::temp_dir().join(format!("domd-bench-wal-{}-{scale}", std::process::id()));

    // Bit-identity gate: both durable arms must reproduce the baseline's
    // final entry set exactly before any timing counts.
    let (expect, _) = run_baseline(&projected, &steps);
    let (wal_only, _, _) = run_durable(&dir, &projected, &steps, None);
    assert!(identical(&expect, &wal_only), "WAL-only arm diverged at scale {scale}");
    let (with_ckpt, _, _) = run_durable(&dir, &projected, &steps, Some(4096));
    assert!(identical(&expect, &with_ckpt), "checkpointing arm diverged at scale {scale}");
    let rebuilt = FlatAvlIndex::build(&wal_only);
    let reference = FlatAvlIndex::build(&expect);
    for t in [0.0, 25.0, 50.0, 100.0] {
        assert_eq!(rebuilt.active_at(t), reference.active_at(t), "retrieval diverged");
    }

    // Interleaved rounds: container load comes in sustained phases
    // (neighbor writeback, CI churn), so sampling one arm's runs back to
    // back would let a load phase bias a whole arm. Each round samples
    // every arm under near-identical conditions. The per-arm ms columns
    // are minima (interference-free floor); the headline overhead is the
    // *median of per-round paired ratios* — within a round both arms see
    // the same phase, so the ratio cancels load that a cross-round
    // min-vs-min comparison would misattribute to the WAL.
    let mut baseline_ms = f64::INFINITY;
    let mut wal_ms = f64::INFINITY;
    let mut wal_sync_ms = f64::INFINITY;
    let mut wal_ckpt_ms = f64::INFINITY;
    let mut ratios = Vec::with_capacity(runs);
    for _ in 0..runs {
        let base = run_baseline(&projected, &steps).1;
        baseline_ms = baseline_ms.min(base);
        let (_, loop_ms, sync_ms) = run_durable(&dir, &projected, &steps, None);
        wal_ms = wal_ms.min(loop_ms);
        wal_sync_ms = wal_sync_ms.min(sync_ms);
        ratios.push(loop_ms / base);
        wal_ckpt_ms = wal_ckpt_ms.min(run_durable(&dir, &projected, &steps, Some(4096)).1);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let overhead_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    // The last checkpointing run left a real store behind; time recovery.
    let (recovered, recover_ms) =
        time_ms(|| DurableIndex::<FlatAvlIndex>::recover(&dir).unwrap());
    let recovered_rows = recovered.0.len();
    assert!(identical(&expect, &recovered.0.entries()), "recovery diverged at scale {scale}");
    let _ = std::fs::remove_dir_all(&dir);

    ScaleResult {
        scale,
        n_rccs: projected.len(),
        mutations,
        baseline_ms,
        wal_ms,
        overhead_pct,
        wal_sync_ms,
        wal_ckpt_ms,
        recover_ms,
        recovered_rows,
    }
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1).map(|v| v.trim().to_string()))
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let scales: Vec<u32> = get("--scales")
        .unwrap_or_else(|| "1,4".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("--scales takes comma-separated integers"))
        .collect();
    let mutations: usize = get("--mutations")
        .map(|v| v.parse().expect("--mutations takes a number"))
        .unwrap_or(100_000);
    let runs: usize = get("--runs").map(|v| v.parse().expect("--runs takes a number")).unwrap_or(3);
    let out_path = get("--out");

    eprintln!("bench_wal: scales={scales:?}, mutations={mutations}, runs={runs}");
    let mut blocks = Vec::new();
    for &scale in &scales {
        let r = bench_scale(scale, mutations, runs);
        eprintln!(
            "  scale {:>2}x  baseline {:>8.1} ms  wal {:>8.1} ms ({:+.2}%)  sync {:>6.1} ms  wal+ckpt {:>8.1} ms  recover {:>7.1} ms ({} rows)",
            r.scale, r.baseline_ms, r.wal_ms, r.overhead_pct, r.wal_sync_ms, r.wal_ckpt_ms,
            r.recover_ms, r.recovered_rows
        );
        if r.overhead_pct >= 10.0 {
            eprintln!(
                "  WARNING: WAL overhead {:.2}% exceeds the 10% acceptance target at {scale}x",
                r.overhead_pct
            );
        }
        blocks.push(r.json());
    }
    let json = format!(
        "{{\"bench\":\"pr4_wal_durability\",\"cpu\":{{\"model\":\"{}\"}},\"runs\":{},\"mutations\":{},\"scales\":[{}]}}\n",
        cpu_model().replace('"', "'"),
        runs,
        mutations,
        blocks.join(",")
    );
    match out_path {
        Some(p) => {
            std::fs::write(&p, &json).expect("writing bench output");
            eprintln!("wrote {p}");
        }
        None => print!("{json}"),
    }
}
