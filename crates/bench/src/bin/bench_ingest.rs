//! `bench_ingest` — ingest-to-queryable latency of the delta-maintained
//! path versus the full re-sweep it replaced.
//!
//! Each batch of fresh RCC rows must become visible to Status Queries and
//! to the feature tensor before the next epoch can publish. The `full`
//! arm pays what the pre-delta serving code paid: re-sort the dataset
//! (`Dataset::new`), rebuild the Status-Query engine from scratch (the
//! index and both group-by trees), and regenerate the feature tensor. The
//! `delta` arm pays what `TenantSnapshot::ingest_batch` pays now: clone
//! the standing state copy-on-write, apply the batch as a typed
//! [`RccDelta`] stream (each insert touches only its SWLIN/type
//! root-to-leaf paths), merge the dataset in one `O(n + k)` pass
//! (`Dataset::with_rccs_merged`), and patch only the touched avails' rows
//! of the maintained tensor (`MaintainedTensor::patch_avails`).
//!
//! Before any timing counts, every batch is gated on bit-identity: the
//! maintained engine's aggregates must equal a from-scratch
//! `StatusQueryEngine::from_arena_rows` over the same arena to the bit,
//! and the patched tensor must equal a full `generate_tensor_threaded`
//! over the merged dataset to the bit.
//!
//! Per-arm columns report minima over `--runs` interleaved rounds; the
//! headline speedup is the *median of per-round paired ratios* (both arms
//! of a ratio saw the same container load phase). The acceptance target
//! is a ≥10x delta-vs-full speedup at the largest scale.
//!
//! ```text
//! bench_ingest [--scales 1,2,4] [--batches 6] [--batch-rows 8]
//!              [--runs 3] [--threads 1] [--out FILE]
//! ```

use std::sync::Arc;

use domd_bench::util::time_ms;
use domd_data::rcc::{Rcc, RccId, RccStatus, RccType};
use domd_data::{generate, AvailId, Dataset, GeneratorConfig};
use domd_features::{FeatureEngine, FeatureTensor, MaintainedTensor};
use domd_index::{
    project_dataset, FlatAvlIndex, RccArena, RccDelta, RowId, StatusQuery, StatusQueryEngine,
};

/// Deterministic SplitMix64 stream for batch synthesis.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

type Engine = StatusQueryEngine<FlatAvlIndex>;

/// Fresh RCC rows for the batch, templated off each touched avail's own
/// rows so types and SWLINs stay in-distribution.
fn batch_rows(
    rng: &mut Mix,
    ds: &Dataset,
    touched: &[AvailId],
    n: usize,
    next_id: &mut u32,
) -> Vec<Rcc> {
    (0..n)
        .map(|i| {
            let avail = touched[i % touched.len()];
            let pool = ds.rccs_of(avail);
            let template = &pool[rng.below(pool.len() as u64) as usize];
            let start = ds.avail(avail).expect("touched avails exist").actual_start;
            let created = start + rng.below(70) as i32;
            *next_id += 1;
            Rcc {
                id: RccId(*next_id),
                avail,
                rcc_type: template.rcc_type,
                swlin: template.swlin,
                created,
                settled: created + 1 + rng.below(80) as i32,
                amount: 40.0 + rng.below(4000) as f64,
            }
        })
        .collect()
}

/// The probe set both engines must agree on to the bit: every status at
/// three timestamps, plus one type-filtered group.
fn probe_queries() -> Vec<StatusQuery> {
    let mut qs = Vec::new();
    for status in [RccStatus::Active, RccStatus::Settled, RccStatus::Created, RccStatus::NotCreated]
    {
        for t_star in [25.0, 60.0, 110.0] {
            qs.push(StatusQuery { rcc_type: None, swlin_prefix: None, status, t_star });
            qs.push(StatusQuery {
                rcc_type: Some(RccType::NewWork),
                swlin_prefix: None,
                status,
                t_star,
            });
        }
    }
    qs
}

/// Bit-identity gate: the maintained engine against a from-scratch
/// rebuild over the same arena (same ascending-id aggregation order).
fn assert_engine_matches_scratch(eng: &Engine, scale: u32, batch: usize) {
    let live: Vec<RowId> = (0..eng.arena().len() as RowId).collect();
    let scratch = Engine::from_arena_rows(Arc::clone(eng.arena()), &live);
    for q in probe_queries() {
        let (a, b) = (eng.aggregate(&q), scratch.aggregate(&q));
        assert_eq!(a.count, b.count, "scale {scale} batch {batch}: count diverged on {q:?}");
        assert_eq!(
            a.sum_amount.to_bits(),
            b.sum_amount.to_bits(),
            "scale {scale} batch {batch}: sum_amount diverged on {q:?}"
        );
        assert_eq!(
            a.sum_duration.to_bits(),
            b.sum_duration.to_bits(),
            "scale {scale} batch {batch}: sum_duration diverged on {q:?}"
        );
    }
}

fn assert_tensor_bits(a: &FeatureTensor, b: &FeatureTensor, scale: u32, batch: usize) {
    for s in 0..a.n_steps() {
        let (xs, ys) = (a.slice(s).as_slice(), b.slice(s).as_slice());
        assert_eq!(xs.len(), ys.len(), "scale {scale} batch {batch}: slice {s} size");
        for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "scale {scale} batch {batch}: tensor slice {s} flat index {i}"
            );
        }
    }
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

struct ScaleResult {
    scale: u32,
    n_rccs: usize,
    n_avails: usize,
    full_ms: f64,
    delta_ms: f64,
    engine_ms: f64,
    merge_ms: f64,
    patch_ms: f64,
    speedup: f64,
}

impl ScaleResult {
    fn json(&self) -> String {
        format!(
            "{{\"scale\":{},\"n_rccs\":{},\"n_avails\":{},\"full_ms\":{:.3},\"delta_ms\":{:.3},\"engine_ms\":{:.3},\"merge_ms\":{:.3},\"patch_ms\":{:.3},\"speedup\":{:.2},\"bit_identical\":true}}",
            self.scale,
            self.n_rccs,
            self.n_avails,
            self.full_ms,
            self.delta_ms,
            self.engine_ms,
            self.merge_ms,
            self.patch_ms,
            self.speedup
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn bench_scale(
    scale: u32,
    batches: usize,
    rows_per_batch: usize,
    runs: usize,
    threads: usize,
) -> ScaleResult {
    let mut rng = Mix(0x001A_6E57 ^ u64::from(scale));
    let ds0 = generate(&GeneratorConfig {
        n_avails: 120,
        target_rccs: 12_000,
        scale,
        seed: 0xD0_4D,
    });
    let all: Vec<AvailId> = ds0.avails().iter().map(|a| a.id).collect();
    let grid: Vec<f64> = (0..=6).map(|i| f64::from(i) * 20.0).collect();
    let fe = FeatureEngine::default();
    let mut next_id = ds0.rccs().iter().map(|r| r.id.0).max().unwrap_or(0);

    // Standing state the delta arm maintains across batches.
    let mut ds = Arc::new(ds0);
    let mut eng = Engine::from_arena(Arc::new(RccArena::from_dataset(&ds)));
    let mut maintained =
        MaintainedTensor::from_tensor(&fe.generate_tensor_threaded(&ds, &all, &grid, threads));

    let mut full_total = 0.0;
    let mut delta_total = 0.0;
    // Delta-arm stage minima summed over batches: [engine, merge, patch].
    let mut stage_totals = [0.0f64; 3];
    let mut ratios = Vec::with_capacity(batches * runs);
    for batch in 0..batches {
        // 1–3 distinct touched avails, rows spread round-robin.
        let mut touched: Vec<AvailId> = (0..1 + rng.below(3))
            .map(|_| all[rng.below(all.len() as u64) as usize])
            .collect();
        touched.sort_unstable_by_key(|a| a.0);
        touched.dedup();
        let fresh = batch_rows(&mut rng, &ds, &touched, rows_per_batch, &mut next_id);
        let deltas: Vec<RccDelta> = fresh
            .iter()
            .map(|rcc| RccDelta::Insert {
                rcc: rcc.clone(),
                avail: ds.avail(rcc.avail).expect("touched avails exist").clone(),
            })
            .collect();

        // The delta arm pays the whole copy-on-write epoch build: clone
        // the standing state, apply the stream, merge, patch.
        let delta_epoch = || {
            let mut next_eng = eng.clone();
            next_eng.apply_deltas(&deltas);
            let next_ds = Arc::new(ds.with_rccs_merged(fresh.clone()));
            let mut next_mt = maintained.clone();
            next_mt.patch_avails(&fe, &next_ds, &touched, threads);
            (next_eng, next_ds, next_mt)
        };
        // The full arm pays what the pre-delta code paid for the same
        // visibility: re-sort, rebuild, regenerate.
        let avail_vec = ds.avails().to_vec();
        let full_epoch = || {
            let mut rccs = ds.rccs().to_vec();
            rccs.extend(fresh.iter().cloned());
            let next_ds = Dataset::new(avail_vec.clone(), rccs);
            let projected = project_dataset(&next_ds);
            let next_eng = Engine::build(&next_ds, &projected);
            let tensor = fe.generate_tensor_threaded(&next_ds, &all, &grid, threads);
            (next_eng, next_ds, tensor)
        };

        // Bit-identity gates before any timing counts.
        let (next_eng, next_ds, next_mt) = delta_epoch();
        assert_engine_matches_scratch(&next_eng, scale, batch);
        let regenerated = fe.generate_tensor_threaded(&next_ds, &all, &grid, threads);
        assert_tensor_bits(&next_mt.to_tensor(), &regenerated, scale, batch);

        // Interleaved rounds: per-arm minima + paired per-round ratios.
        // The delta arm is additionally timed per stage (engine clone +
        // delta application / dataset merge / tensor patch) so a
        // regression in one stage is visible in the report.
        let mut full_min = f64::INFINITY;
        let mut delta_min = f64::INFINITY;
        let mut stage_min = [f64::INFINITY; 3];
        for _ in 0..runs {
            let (_, f_ms) = time_ms(full_epoch);
            let (stages, d_ms) = time_ms(|| {
                let (_, e_ms) = time_ms(|| {
                    let mut next_eng = eng.clone();
                    next_eng.apply_deltas(&deltas);
                    next_eng
                });
                let (next_ds, m_ms) = time_ms(|| Arc::new(ds.with_rccs_merged(fresh.clone())));
                let (_, p_ms) = time_ms(|| {
                    let mut next_mt = maintained.clone();
                    next_mt.patch_avails(&fe, &next_ds, &touched, threads);
                    next_mt
                });
                [e_ms, m_ms, p_ms]
            });
            full_min = full_min.min(f_ms);
            delta_min = delta_min.min(d_ms);
            for (acc, s) in stage_min.iter_mut().zip(stages) {
                *acc = acc.min(s);
            }
            ratios.push(f_ms / d_ms);
        }
        full_total += full_min;
        delta_total += delta_min;
        for (acc, s) in stage_totals.iter_mut().zip(stage_min) {
            *acc += s;
        }

        // Commit the batch: the next batch mutates the grown state.
        eng = next_eng;
        ds = next_ds;
        maintained = next_mt;
    }

    ScaleResult {
        scale,
        n_rccs: ds.rccs().len(),
        n_avails: all.len(),
        full_ms: full_total,
        delta_ms: delta_total,
        engine_ms: stage_totals[0],
        merge_ms: stage_totals[1],
        patch_ms: stage_totals[2],
        speedup: median(ratios),
    }
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1).map(|v| v.trim().to_string()))
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let scales: Vec<u32> = get("--scales")
        .unwrap_or_else(|| "1,2,4".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("--scales takes comma-separated integers"))
        .collect();
    let batches: usize =
        get("--batches").map(|v| v.parse().expect("--batches takes a number")).unwrap_or(6);
    let rows_per_batch: usize =
        get("--batch-rows").map(|v| v.parse().expect("--batch-rows takes a number")).unwrap_or(8);
    let runs: usize = get("--runs").map(|v| v.parse().expect("--runs takes a number")).unwrap_or(3);
    let threads: usize =
        get("--threads").map(|v| v.parse().expect("--threads takes a number")).unwrap_or(1);
    let out_path = get("--out");

    eprintln!(
        "bench_ingest: scales={scales:?}, batches={batches}, batch_rows={rows_per_batch}, runs={runs}, threads={threads}"
    );
    let largest = scales.iter().copied().max().unwrap_or(1);
    let mut blocks = Vec::new();
    for &scale in &scales {
        let r = bench_scale(scale, batches, rows_per_batch, runs, threads);
        eprintln!(
            "  scale {:>2}x ({:>6} rccs, {} avails)  full {:>8.1} ms  delta {:>6.1} ms ({:.1}x; engine {:.1} merge {:.1} patch {:.1})",
            r.scale, r.n_rccs, r.n_avails, r.full_ms, r.delta_ms, r.speedup, r.engine_ms,
            r.merge_ms, r.patch_ms
        );
        if scale == largest && r.speedup < 10.0 {
            eprintln!(
                "  WARNING: delta speedup {:.2}x misses the 10x acceptance target at {scale}x",
                r.speedup
            );
        }
        blocks.push(r.json());
    }
    let json = format!(
        "{{\"bench\":\"ingest_delta\",\"cpu\":{{\"model\":\"{}\"}},\"runs\":{},\"batches\":{},\"batch_rows\":{},\"threads\":{},\"scales\":[{}]}}\n",
        cpu_model().replace('"', "'"),
        runs,
        batches,
        rows_per_batch,
        threads,
        blocks.join(",")
    );
    match out_path {
        Some(p) => {
            std::fs::write(&p, &json).expect("writing bench output");
            eprintln!("wrote {p}");
        }
        None => print!("{json}"),
    }
}
