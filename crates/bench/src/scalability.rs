//! Scalability experiments of Section 5.1: index creation cost (Figure 5a,
//! Table 6), query processing cost (Figure 5b), and total cost (Figure 5c)
//! across RCC scaling factors.
//!
//! The workload per scale is the pipeline's own access pattern: advance the
//! logical timeline 0%..100% in 10% windows maintaining per-(RCC type ×
//! SWLIN first digit) aggregates of active / settled / created RCCs — the
//! Status Queries Algorithm StatusQ answers. The naive and interval-tree
//! arms recompute each grid point from scratch; the AVL arm runs the
//! incremental `StatStructure` computation of Section 4.3.

use crate::util::{mb, mean_time_ms, scaled_dataset, time_ms};
use domd_data::Dataset;
use domd_index::{
    project_dataset, sweep_from_scratch, sweep_incremental, AvlIndex, EytzingerIndex,
    FlatAvlIndex, HeapSize, IntervalTreeIndex, LogicalTimeIndex, NaiveJoinIndex, RowColumns,
    SortedArrayIndex,
};

/// The scaling factors of Table 6 / Figure 5.
pub const SCALES: [u32; 5] = [1, 5, 10, 15, 20];

/// Number of timed repetitions (the paper averages 3 runs).
pub const RUNS: usize = 3;

/// One measurement row.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Scaling factor.
    pub scale: u32,
    /// RCC count at this scale.
    pub n_rccs: usize,
    /// Per-index `(name, creation ms, memory MB, query ms)`.
    pub arms: Vec<(String, f64, f64, f64)>,
}

/// Workload columns shared by all arms at one scale.
struct Workload {
    projected: Vec<domd_index::LogicalRcc>,
    amounts: Vec<f64>,
    durations: Vec<f64>,
    groups: Vec<usize>,
    grid: Vec<f64>,
}

impl Workload {
    fn build(ds: &Dataset) -> Self {
        let projected = project_dataset(ds);
        let rccs = ds.rccs();
        Workload {
            projected,
            amounts: rccs.iter().map(|r| r.amount).collect(),
            durations: rccs.iter().map(|r| f64::from(r.duration_days())).collect(),
            groups: rccs
                .iter()
                .map(|r| r.rcc_type.index() * 10 + r.swlin.digit(1) as usize)
                .collect(),
            grid: (0..=10).map(|i| f64::from(i) * 10.0).collect(),
        }
    }

    fn cols(&self) -> RowColumns<'_> {
        RowColumns { amounts: &self.amounts, durations: &self.durations, groups: &self.groups }
    }
}

/// Measures all three index designs at every scale in `scales`.
pub fn measure(scales: &[u32]) -> Vec<ScaleRow> {
    scales
        .iter()
        .map(|&scale| {
            let ds = scaled_dataset(scale);
            let w = Workload::build(&ds);
            let mut arms = Vec::new();

            // Naive materialized join (Pandas-merge baseline): creation is
            // the join itself; queries rescan per grid point.
            let (naive, _) = time_ms(|| NaiveJoinIndex::build_from_dataset(&ds, &w.projected));
            let naive_build =
                mean_time_ms(RUNS, || NaiveJoinIndex::build_from_dataset(&ds, &w.projected));
            let naive_query = mean_time_ms(RUNS, || {
                sweep_from_scratch(&naive, w.cols(), 30, &w.grid, |_, _, _| {})
            });
            arms.push(("naive-join".to_string(), naive_build, mb(naive.heap_bytes()), naive_query));

            // Centered interval tree: from-scratch queries.
            let (itree, _) = time_ms(|| IntervalTreeIndex::build(&w.projected));
            let itree_build = mean_time_ms(RUNS, || IntervalTreeIndex::build(&w.projected));
            let itree_query = mean_time_ms(RUNS, || {
                sweep_from_scratch(&itree, w.cols(), 30, &w.grid, |_, _, _| {})
            });
            arms.push((
                "interval-tree".to_string(),
                itree_build,
                mb(itree.heap_bytes()),
                itree_query,
            ));

            // Sorted event arrays (extension arm: the static-workload
            // optimum the trees trade against dynamic maintenance).
            let (sa, _) = time_ms(|| SortedArrayIndex::build(&w.projected));
            let sa_build = mean_time_ms(RUNS, || SortedArrayIndex::build(&w.projected));
            let sa_query = mean_time_ms(RUNS, || {
                sweep_from_scratch(&sa, w.cols(), 30, &w.grid, |_, _, _| {})
            });
            arms.push(("sorted-array".to_string(), sa_build, mb(sa.heap_bytes()), sa_query));

            // Eytzinger (implicit BFS) event arrays: same static workload as
            // the sorted array, cache-friendly descent instead of binary
            // search hops.
            let (ey, _) = time_ms(|| EytzingerIndex::build(&w.projected));
            let ey_build = mean_time_ms(RUNS, || EytzingerIndex::build(&w.projected));
            let ey_query = mean_time_ms(RUNS, || {
                sweep_from_scratch(&ey, w.cols(), 30, &w.grid, |_, _, _| {})
            });
            arms.push(("eytzinger".to_string(), ey_build, mb(ey.heap_bytes()), ey_query));

            // Dual AVL + incremental computation (the paper's winner).
            let (avl, _) = time_ms(|| AvlIndex::build(&w.projected));
            let avl_build = mean_time_ms(RUNS, || AvlIndex::build(&w.projected));
            let avl_query = mean_time_ms(RUNS, || {
                sweep_incremental(&avl, w.cols(), 30, &w.grid, |_, _, _| {})
            });
            arms.push(("avl+incremental".to_string(), avl_build, mb(avl.heap_bytes()), avl_query));

            // Arena-backed dual AVL: identical algorithm in contiguous Vec
            // storage with u32 child links (no per-node allocation).
            let (favl, _) = time_ms(|| FlatAvlIndex::build(&w.projected));
            let favl_build = mean_time_ms(RUNS, || FlatAvlIndex::build(&w.projected));
            let favl_query = mean_time_ms(RUNS, || {
                sweep_incremental(&favl, w.cols(), 30, &w.grid, |_, _, _| {})
            });
            arms.push((
                "flat-avl+incr".to_string(),
                favl_build,
                mb(favl.heap_bytes()),
                favl_query,
            ));

            ScaleRow { scale, n_rccs: w.projected.len(), arms }
        })
        .collect()
}

fn render(rows: &[ScaleRow], col: impl Fn(&(String, f64, f64, f64)) -> f64, unit: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>6} | {:>9}", "scale", "rccs"));
    for (name, ..) in &rows[0].arms {
        out.push_str(&format!(" | {name:>15}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(19 + 18 * rows[0].arms.len()));
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:>5}x | {:>9}", r.scale, r.n_rccs));
        for arm in &r.arms {
            out.push_str(&format!(" | {:>13.1}{unit}", col(arm)));
        }
        out.push('\n');
    }
    out
}

/// Table 6: index construction memory.
pub fn table6(rows: &[ScaleRow]) -> String {
    format!(
        "Table 6 — index construction cost, space (paper @20x: naive 1090 MB, AVL 556, interval 579)\n{}",
        render(rows, |a| a.2, "MB")
    )
}

/// Figure 5a: index creation time.
pub fn fig5a(rows: &[ScaleRow]) -> String {
    format!("Figure 5a — index creation time\n{}", render(rows, |a| a.1, "ms"))
}

/// Figure 5b: query processing time over the 11-step timeline workload.
pub fn fig5b(rows: &[ScaleRow]) -> String {
    let mut out = format!("Figure 5b — query processing time\n{}", render(rows, |a| a.3, "ms"));
    if let Some(last) = rows.last() {
        let avl = last.arms.iter().position(|a| a.0.starts_with("avl")).expect("avl arm");
        let speedup = last.arms[0].3 / last.arms[avl].3;
        out.push_str(&format!(
            "speedup of avl+incremental over naive rescan at {}x: {:.1}x (paper reports ~5x)\n",
            last.scale, speedup
        ));
    }
    out
}

/// Figure 5c: creation + query total time.
pub fn fig5c(rows: &[ScaleRow]) -> String {
    format!("Figure 5c — index creation + query processing total\n{}", render(rows, |a| a.1 + a.3, "ms"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_have_expected_shape() {
        let rows = measure(&[1]);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.arms.len(), 6);
        // Memory ordering of Table 6: both trees well under the join.
        let naive_mb = r.arms[0].2;
        let itree_mb = r.arms[1].2;
        let avl_mb = r.arms[4].2;
        let flat_avl_mb = r.arms[5].2;
        assert!(avl_mb < naive_mb * 0.7, "AVL {avl_mb} vs naive {naive_mb}");
        assert!(itree_mb < naive_mb * 0.7, "interval {itree_mb} vs naive {naive_mb}");
        // The flat layouts stay in the compact band: no pointer overhead.
        assert!(r.arms[2].2 < avl_mb, "sorted array must beat pointer AVL");
        assert!(flat_avl_mb <= avl_mb * 1.05, "flat AVL {flat_avl_mb} vs AVL {avl_mb}");
        // Incremental queries beat per-step rescans (both AVL variants).
        assert!(r.arms[4].3 < r.arms[0].3, "incremental must beat naive rescan");
        assert!(r.arms[5].3 < r.arms[0].3, "flat incremental must beat naive rescan");
    }

    #[test]
    fn renderers_include_labels() {
        let rows = measure(&[1]);
        assert!(table6(&rows).contains("Table 6"));
        assert!(fig5a(&rows).contains("creation"));
        assert!(fig5b(&rows).contains("speedup"));
        assert!(fig5c(&rows).contains("total"));
    }
}
