//! Dataset-description experiments: Figure 1 (SWLIN hierarchy), Figure 2
//! (delay distribution), and Table 5 (dataset statistics).

use crate::util::{bar, standard_dataset};
use domd_index::SwlinTree;

/// Table 5: statistics of the (synthetic) dataset vs. the paper's values.
pub fn table5() -> String {
    let ds = standard_dataset();
    let st = ds.stats();
    let mut out = String::new();
    out.push_str("Table 5 — dataset statistics (synthetic NMD vs paper)\n");
    out.push_str("table                      | this run | paper\n");
    out.push_str("---------------------------+----------+-------\n");
    out.push_str(&format!("avail rows                 | {:>8} | 200\n", st.n_avails));
    out.push_str(&format!("avail attributes           | {:>8} | 73\n", st.n_avail_attrs));
    out.push_str(&format!("RCC rows                   | {:>8} | 52,959\n", st.n_rccs));
    out.push_str(&format!("RCC attributes             | {:>8} | 187\n", st.n_rcc_attrs));
    out
}

/// Figure 2: histogram of delays over all (closed) availabilities.
pub fn fig2() -> String {
    let ds = standard_dataset();
    let hist = ds.delay_histogram(30);
    let max = hist.iter().map(|(_, c)| *c).max().unwrap_or(1) as f64;
    let mut out = String::new();
    out.push_str("Figure 2 — delay distribution for all availabilities (bin = 30 days)\n");
    out.push_str("delay bin (days) | count\n");
    out.push_str("-----------------+------------------------------------------\n");
    for (lo, c) in &hist {
        if *c == 0 {
            continue;
        }
        out.push_str(&format!("{:>7}..{:<6} | {:>3} {}\n", lo, lo + 29, c, bar(*c as f64, max, 40)));
    }
    let delays: Vec<i32> = ds.closed_avails().filter_map(|a| a.delay()).collect();
    out.push_str(&format!(
        "range {}..{} days; {} on-time, {} early, {} tardy (paper: 0 to multiple years,\nmajority within a few months of projected end)\n",
        delays.iter().min().unwrap(),
        delays.iter().max().unwrap(),
        delays.iter().filter(|d| **d == 0).count(),
        delays.iter().filter(|d| **d < 0).count(),
        delays.iter().filter(|d| **d > 0).count(),
    ));
    out
}

/// Figure 1: a walk of the SWLIN hierarchy present in the data.
pub fn swlin_hierarchy() -> String {
    let ds = standard_dataset();
    let tree = SwlinTree::build(
        ds.rccs().iter().enumerate().map(|(i, r)| (r.swlin, i as u32)),
    );
    let mut out = String::new();
    out.push_str("Figure 1 — SWLIN 8-digit hierarchy (first digit = general subsystem)\n");
    for d1 in tree.child_prefixes(0, 0) {
        let n1 = tree.ids_for_prefix(d1, 1).len();
        out.push_str(&format!("subsystem {d1}: {n1} RCCs\n"));
        // Show the three largest second-level modules under this subsystem.
        let mut children: Vec<(u32, usize)> = tree
            .child_prefixes(d1, 1)
            .into_iter()
            .map(|p| (p, tree.ids_for_prefix(p, 2).len()))
            .collect();
        children.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        for (p, n) in children.into_iter().take(3) {
            out.push_str(&format!("  module {:02}x: {n} RCCs\n", p % 10));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_mentions_counts() {
        let s = table5();
        assert!(s.contains("200"));
        assert!(s.contains("52,959"));
        assert!(s.contains("avail rows"));
    }

    #[test]
    fn fig2_has_bins_and_summary() {
        let s = fig2();
        assert!(s.contains("delay bin"));
        assert!(s.contains("tardy"));
        assert!(s.lines().count() > 10, "histogram should have many bins");
    }

    #[test]
    fn swlin_walk_lists_subsystems() {
        let s = swlin_hierarchy();
        // Generated data uses first digits 1..=9.
        for d in 1..=9 {
            assert!(s.contains(&format!("subsystem {d}:")), "missing subsystem {d}");
        }
    }
}
