//! Shared helpers for the experiment harness: timing, table formatting,
//! and the standard dataset/workload constructions every experiment uses.

use domd_data::{generate, Dataset, GeneratorConfig};
use std::time::Instant;

/// Seed used by every experiment unless overridden — one dataset, every
/// figure, exactly as the paper evaluates one NMD snapshot.
pub const EXPERIMENT_SEED: u64 = 0xD0_4D;

/// The default synthetic NMD (paper cardinalities).
pub fn standard_dataset() -> Dataset {
    generate(&GeneratorConfig::default())
}

/// The scaled RCC dataset of Section 5.1.
pub fn scaled_dataset(scale: u32) -> Dataset {
    generate(&GeneratorConfig { scale, ..GeneratorConfig::default() })
}

/// Milliseconds spent running `f`, with the result.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// Mean of `runs` timed repetitions (the paper averages 3 runs).
pub fn mean_time_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(runs > 0);
    let mut total = 0.0;
    for _ in 0..runs {
        let (_, ms) = time_ms(&mut f);
        total += ms;
    }
    total / runs as f64
}

/// Bytes rendered as MB with one decimal.
pub fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Renders a simple ASCII bar of proportional width.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_is_positive() {
        let (v, ms) = time_ms(|| (0..10_000).sum::<u64>());
        assert_eq!(v, 49_995_000);
        assert!(ms >= 0.0);
        assert!(mean_time_ms(2, || 1 + 1) >= 0.0);
    }

    #[test]
    fn mb_conversion() {
        assert_eq!(mb(1024 * 1024), 1.0);
        assert_eq!(mb(0), 0.0);
    }

    #[test]
    fn bar_shapes() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########"); // clamped
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
