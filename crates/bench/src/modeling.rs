//! Modeling experiments of Section 5.2: the Figure 6a–6f pipeline-design
//! studies and the Table 7 test-set evaluation.
//!
//! The paper presents results as the average of 3 runs; the figure
//! renderers here correspondingly average each measurement over three
//! validation splits (`AVG_SEEDS`) unless a single split is forced via the
//! `DOMD_SPLIT_SEED` environment variable. The dataset and the feature
//! tensor are shared across splits, so the extra cost is only in model
//! training.

use crate::util::standard_dataset;
use domd_core::optimizer::{panel, task2_panel};
use domd_core::{
    optimize, task3_base_model, task3_stacking, task4_loss, task5_hyperparameters, task6_fusion,
    EvalTable, LabelledSeries, OptimizationReport, OptimizerSettings, PipelineConfig,
    PipelineInputs, TrainedPipeline,
};
use domd_data::{Dataset, Split};

/// Default split seed (first panel member; also used by `pipeline`).
pub const SPLIT_SEED: u64 = 7;

/// The three split seeds averaged by the figure renderers.
pub const AVG_SEEDS: [u64; 3] = [7, 8, 12];

/// The standard modeling context: dataset, inputs (x = 10%), split panel.
pub struct ModelingContext {
    /// The synthetic NMD.
    pub dataset: Dataset,
    /// Tensor + statics + targets (shared across splits).
    pub inputs: PipelineInputs,
    /// One or more train/validation/test partitions; figures average over
    /// all of them, `pipeline`/Table 7 use the first.
    pub splits: Vec<Split>,
}

impl ModelingContext {
    /// Builds the paper-scale context (200 avails, 11 timeline models).
    /// `DOMD_SPLIT_SEED` forces a single split; otherwise the 3-seed panel
    /// is used.
    pub fn standard() -> Self {
        let dataset = standard_dataset();
        let inputs = PipelineInputs::build(&dataset, 10.0);
        let seeds: Vec<u64> = match std::env::var("DOMD_SPLIT_SEED") {
            Ok(s) => vec![s.parse().unwrap_or(SPLIT_SEED)],
            Err(_) => AVG_SEEDS.to_vec(),
        };
        let splits = seeds.iter().map(|&s| dataset.split(s)).collect();
        ModelingContext { dataset, inputs, splits }
    }

    /// The first (primary) split.
    pub fn split(&self) -> &Split {
        &self.splits[0]
    }
}

fn averaged<F>(ctx: &ModelingContext, f: F) -> Vec<LabelledSeries>
where
    F: Fn(&Split) -> Vec<LabelledSeries>,
{
    panel(&ctx.splits, f)
}

fn render_series(title: &str, series: &[LabelledSeries], grid: &[f64], paper_note: &str) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!("{:>22} |", "validation MAE at t*"));
    for t in grid {
        out.push_str(&format!("{t:>7.0}"));
    }
    out.push_str("  |   mean\n");
    out.push_str(&"-".repeat(26 + 7 * grid.len() + 10));
    out.push('\n');
    for s in series {
        out.push_str(&format!("{:>22} |", s.label));
        for v in &s.series {
            out.push_str(&format!("{v:>7.1}"));
        }
        out.push_str(&format!("  | {:>6.1}\n", s.mean()));
    }
    out.push_str(paper_note);
    out.push('\n');
    out
}

/// Figure 6a: feature selection methods × k at the 50% model, averaged
/// over the split panel.
pub fn fig6a(ctx: &ModelingContext, settings: &OptimizerSettings, config: &PipelineConfig) -> String {
    let result = task2_panel(&ctx.inputs, &ctx.splits, settings, config);
    let table = &result.table;

    let mut out = String::from(
        "Figure 6a — feature selection methods vs k (validation MAE at 50% planned duration)\n",
    );
    out.push_str(&format!("{:>12} |", "method \\ k"));
    for k in &settings.k_grid {
        out.push_str(&format!("{k:>7}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(15 + 7 * settings.k_grid.len()));
    out.push('\n');
    for (m, row) in table {
        out.push_str(&format!("{:>12} |", m.name()));
        for (_, mae) in row {
            out.push_str(&format!("{mae:>7.1}"));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "winner: {} with k = {} (paper: pearson, k = 60)\n",
        result.best_method.name(),
        result.best_k
    ));
    out
}

/// Figure 6b: base model family comparison.
pub fn fig6b(ctx: &ModelingContext, config: &PipelineConfig) -> String {
    let series = averaged(ctx, |split| task3_base_model(&ctx.inputs, split, config));
    render_series(
        "Figure 6b — base model family (validation MAE over the timeline)",
        &series,
        ctx.inputs.grid(),
        "(paper: XGBoost preferred over elastic-net linear regression)",
    )
}

/// Figure 6c: stacked vs non-stacked architecture.
pub fn fig6c(ctx: &ModelingContext, config: &PipelineConfig) -> String {
    let series = averaged(ctx, |split| task3_stacking(&ctx.inputs, split, config));
    render_series(
        "Figure 6c — stacking vs non-stacking",
        &series,
        ctx.inputs.grid(),
        "(paper: non-stacked architecture wins)",
    )
}

/// Figure 6d: loss functions.
pub fn fig6d(ctx: &ModelingContext, settings: &OptimizerSettings, config: &PipelineConfig) -> String {
    let series = averaged(ctx, |split| task4_loss(&ctx.inputs, split, settings, config));
    render_series(
        "Figure 6d — loss functions",
        &series,
        ctx.inputs.grid(),
        "(paper: pseudo-Huber with delta = 18 wins)",
    )
}

/// Figure 6e: AutoHPT budget study (primary split; a TPE run is itself an
/// average over many model fits).
pub fn fig6e(ctx: &ModelingContext, settings: &OptimizerSettings, config: &PipelineConfig) -> String {
    let r = task5_hyperparameters(&ctx.inputs, ctx.split(), settings, config);
    let mut out =
        String::from("Figure 6e — # hyperparameter tuning trials vs best validation MAE\n");
    out.push_str("trials | best MAE within budget\n");
    out.push_str("-------+-----------------------\n");
    for (budget, best) in &r.table {
        out.push_str(&format!("{budget:>6} | {best:>10.2}\n"));
    }
    out.push_str(&format!(
        "adopted the best configuration within {} trials (paper adopts 30 to avoid\nvalidation overfitting): {} trees, lr {:.3}, depth {}, min_child {:.1}, lambda {:.2}\n",
        settings.chosen_trials,
        r.chosen.n_estimators,
        r.chosen.learning_rate,
        r.chosen.max_depth,
        r.chosen.min_child_weight,
        r.chosen.lambda,
    ));
    out
}

/// Figure 6f: fusion techniques.
pub fn fig6f(ctx: &ModelingContext, config: &PipelineConfig) -> String {
    let series = averaged(ctx, |split| task6_fusion(&ctx.inputs, split, config));
    render_series(
        "Figure 6f — fusion techniques",
        &series,
        ctx.inputs.grid(),
        "(paper: average fusion wins)",
    )
}

/// Table 7: test-set evaluation of a configuration on the primary split.
pub fn table7(ctx: &ModelingContext, config: &PipelineConfig) -> String {
    let split = ctx.split();
    let pipeline = TrainedPipeline::fit(&ctx.inputs, &split.train, config);
    let table = EvalTable::compute(&pipeline, &ctx.inputs, &split.test);
    format!(
        "Table 7 — estimation quality over the timeline on the test set\n{}\n(paper averages: MAE80 19.99, MAE90 27.52, MAE100 38.97, MSE 3159.96, RMSE 56.14, R2 0.88)\n",
        table.render()
    )
}

/// Runs the full greedy optimization (Tasks 2–6) over the split panel.
pub fn full_optimization(
    ctx: &ModelingContext,
    settings: &OptimizerSettings,
    base: &PipelineConfig,
) -> OptimizationReport {
    optimize(&ctx.inputs, &ctx.splits, settings, base)
}

/// Renders the selected pipeline parameters (Section 5.2.2's summary).
pub fn render_final_config(c: &PipelineConfig) -> String {
    format!(
        "Selected modeling pipeline parameters (paper: pearson k=60, XGBoost, non-stacked,\npseudo-huber(d=18), 30 HPT trials, average fusion):\n  selection: {} (k = {})\n  family   : {}\n  stacked  : {}\n  loss     : {}\n  fusion   : {}\n  gbt      : {} trees, lr {:.3}, depth {}\n",
        c.selection.name(),
        c.k,
        c.family.name(),
        c.stacked,
        c.loss.name(),
        c.fusion.name(),
        c.gbt.n_estimators,
        c.gbt.learning_rate,
        c.gbt.max_depth,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use domd_data::{generate, GeneratorConfig};

    /// A tiny context so tests stay fast.
    fn tiny() -> ModelingContext {
        let dataset =
            generate(&GeneratorConfig { n_avails: 40, target_rccs: 3000, scale: 1, seed: 3 });
        let inputs = PipelineInputs::build(&dataset, 25.0);
        let splits = vec![dataset.split(SPLIT_SEED), dataset.split(8)];
        ModelingContext { dataset, inputs, splits }
    }

    fn tiny_config() -> PipelineConfig {
        let mut c = PipelineConfig::default0();
        c.gbt.n_estimators = 30;
        c.k = 8;
        c.grid_step = 25.0;
        c
    }

    #[test]
    fn figure_renderers_emit_tables() {
        let ctx = tiny();
        let settings = OptimizerSettings::quick();
        let cfg = tiny_config();
        assert!(fig6a(&ctx, &settings, &cfg).contains("winner:"));
        assert!(fig6b(&ctx, &cfg).contains("xgboost"));
        assert!(fig6c(&ctx, &cfg).contains("non-stacked"));
        assert!(fig6d(&ctx, &settings, &cfg).contains("pseudo-huber"));
        assert!(fig6e(&ctx, &settings, &cfg).contains("trials"));
        assert!(fig6f(&ctx, &cfg).contains("average"));
    }

    #[test]
    fn table7_render_contains_paper_reference() {
        let ctx = tiny();
        let mut cfg = tiny_config();
        cfg.fusion = domd_core::Fusion::Average;
        let s = table7(&ctx, &cfg);
        assert!(s.contains("paper averages"));
        assert!(s.contains("Average"));
    }


}
