//! Ablation studies beyond the paper's figures:
//!
//! * **fusion-ablation** — the extended fusion set (median,
//!   recency-weighted) the paper leaves as future work (Task 6);
//! * **delta-sweep** — sensitivity of the pseudo-Huber threshold δ around
//!   the paper's tuned value of 18 (Section 5.2.2 reports tuning δ);
//! * **dynamic-index** — streaming insert/delete maintenance cost of the
//!   dual-AVL index (Section 4.1 motivates O(log n) dynamic updates);
//! * **incremental-ablation** — the Section 4.3 claim isolated: identical
//!   index, identical queries, incremental vs from-scratch processing.

use crate::modeling::ModelingContext;
use crate::util::{mean_time_ms, scaled_dataset};
use domd_core::{timeline_mae_series, Fusion, PipelineConfig, TrainedPipeline};
use domd_index::{
    project_dataset, sweep_from_scratch, sweep_incremental, AvlIndex, LogicalTimeIndex,
    RowColumns, StatusQuery, StatusQueryEngine,
};
use domd_data::rcc::RccStatus;
use domd_ml::{
    DenseMatrix, ElasticNetModel, ElasticNetParams, ForestModel, ForestParams, GbtModel,
    GbtParams, Loss, SelectionMethod,
};

/// Extended fusion comparison (one training run, five fusion operators).
pub fn fusion_ablation(ctx: &ModelingContext, config: &PipelineConfig) -> String {
    let p = TrainedPipeline::fit(&ctx.inputs, &ctx.split().train, config);
    let mut out = String::from(
        "Ablation — extended fusion set (validation mean MAE; median & recency are\nthis repo's implementations of the paper's future-work ensembling)\n",
    );
    for fusion in Fusion::EXTENDED {
        let mut p2 = p.clone();
        p2.config.fusion = fusion;
        let series = timeline_mae_series(&p2, &ctx.inputs, &ctx.split().validation);
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        out.push_str(&format!("  {:<14} {:>8.2}\n", fusion.name(), mean));
    }
    out
}

/// Pseudo-Huber δ sensitivity around the paper's tuned δ = 18.
pub fn delta_sweep(ctx: &ModelingContext, config: &PipelineConfig) -> String {
    let mut out = String::from(
        "Ablation — pseudo-Huber delta sweep (validation mean MAE; paper tunes delta to 18)\n",
    );
    for delta in [6.0, 12.0, 18.0, 30.0, 60.0, 120.0] {
        let c = PipelineConfig { loss: Loss::PseudoHuber(delta), ..config.clone() };
        let p = TrainedPipeline::fit(&ctx.inputs, &ctx.split().train, &c);
        let series = timeline_mae_series(&p, &ctx.inputs, &ctx.split().validation);
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        out.push_str(&format!("  delta = {delta:>5.0}: {mean:>8.2}\n"));
    }
    out
}

/// Streaming maintenance: time to insert / remove a 10% batch of RCCs into
/// a live dual-AVL index, with correctness spot-checks.
pub fn dynamic_index() -> String {
    let ds = scaled_dataset(1);
    let projected = project_dataset(&ds);
    let n = projected.len();
    let split = n - n / 10;
    let (bulk, stream) = projected.split_at(split);

    let mut out = String::from(
        "Ablation — dynamic maintenance of the dual-AVL index (Section 4.1's O(log n)\ninsert/delete story; the batch is 10% of the RCC table)\n",
    );
    let insert_ms = mean_time_ms(3, || {
        let mut idx = AvlIndex::build(bulk);
        for r in stream {
            idx.insert(r);
        }
        idx
    }) - mean_time_ms(3, || AvlIndex::build(bulk));
    let mut idx = AvlIndex::build(bulk);
    for r in stream {
        idx.insert(r);
    }
    // Queries over the streamed index match a bulk build of everything.
    let full = AvlIndex::build(&projected);
    for t in [10.0, 50.0, 90.0] {
        assert_eq!(idx.active_at(t), full.active_at(t), "stream/bulk divergence at {t}");
    }
    let remove_ms = mean_time_ms(3, || {
        let mut idx2 = idx.clone();
        for r in stream {
            idx2.remove(r);
        }
        idx2
    });
    out.push_str(&format!(
        "  incremental insert of {} RCCs: {:.1} ms ({:.2} us/insert)\n",
        stream.len(),
        insert_ms.max(0.0),
        insert_ms.max(0.0) * 1e3 / stream.len() as f64,
    ));
    out.push_str(&format!(
        "  remove of the same batch:      {:.1} ms ({:.2} us/remove)\n",
        remove_ms,
        remove_ms * 1e3 / stream.len() as f64,
    ));
    out.push_str("  streamed index answers identical to a bulk rebuild: verified\n");
    out
}

/// Incremental vs from-scratch processing on the *same* AVL index — the
/// Section 4.3 effect isolated from the index-design comparison.
pub fn incremental_ablation() -> String {
    let mut out = String::from(
        "Ablation — incremental StatStructure vs from-scratch on the same AVL index\n scale |  incremental ms | from-scratch ms | speedup\n",
    );
    for scale in [1u32, 5, 10] {
        let ds = scaled_dataset(scale);
        let projected = project_dataset(&ds);
        let amounts: Vec<f64> = ds.rccs().iter().map(|r| r.amount).collect();
        let durations: Vec<f64> =
            ds.rccs().iter().map(|r| f64::from(r.duration_days())).collect();
        let groups: Vec<usize> = ds
            .rccs()
            .iter()
            .map(|r| r.rcc_type.index() * 10 + r.swlin.digit(1) as usize)
            .collect();
        let cols = RowColumns { amounts: &amounts, durations: &durations, groups: &groups };
        let grid: Vec<f64> = (0..=10).map(|i| f64::from(i) * 10.0).collect();
        let avl = AvlIndex::build(&projected);
        let inc = mean_time_ms(3, || sweep_incremental(&avl, cols, 30, &grid, |_, _, _| {}));
        let scr = mean_time_ms(3, || sweep_from_scratch(&avl, cols, 30, &grid, |_, _, _| {}));
        out.push_str(&format!(
            "{:>5}x | {:>14.1} | {:>14.1} | {:>6.1}x\n",
            scale,
            inc,
            scr,
            scr / inc
        ));
    }
    out
}

/// Base-model family ablation beyond Figure 6b's pair: random forest joins
/// the comparison (the paper's candidate set M is open-ended — "Linear
/// Regression, Gradient Boosted Trees, etc."). Evaluated at the 50% model
/// with the paper's Pearson-k selection, averaged over the split panel.
pub fn model_ablation(ctx: &ModelingContext, config: &PipelineConfig) -> String {
    let step = ctx.inputs.grid().len() / 2;
    let mut sums = [0.0f64; 3];
    for split in &ctx.splits {
        let train_rows = ctx.inputs.rows_for(&split.train);
        let val_rows = ctx.inputs.rows_for(&split.validation);
        let y_train = ctx.inputs.targets_of(&train_rows);
        let y_val = ctx.inputs.targets_of(&val_rows);
        let slice_train = ctx.inputs.tensor.slice(step).select_rows(&train_rows);
        let slice_val = ctx.inputs.tensor.slice(step).select_rows(&val_rows);
        let selected =
            SelectionMethod::Pearson.select(&slice_train, &y_train, config.k, config.seed);
        let x_train: DenseMatrix = ctx
            .inputs
            .statics
            .select_rows(&train_rows)
            .hstack(&slice_train.select_cols(&selected));
        let x_val: DenseMatrix = ctx
            .inputs
            .statics
            .select_rows(&val_rows)
            .hstack(&slice_val.select_cols(&selected));

        let gbt = GbtModel::fit(&x_train, &y_train, &GbtParams {
            loss: Loss::PseudoHuber(18.0),
            seed: config.seed,
            ..config.gbt
        });
        sums[0] += domd_ml::mae(&y_val, &gbt.predict(&x_val));
        let forest = ForestModel::fit(&x_train, &y_train, &ForestParams {
            seed: config.seed,
            ..Default::default()
        });
        sums[1] += domd_ml::mae(&y_val, &forest.predict(&x_val));
        let enet = ElasticNetModel::fit(&x_train, &y_train, &ElasticNetParams::default());
        sums[2] += domd_ml::mae(&y_val, &enet.predict(&x_val));
    }
    let n = ctx.splits.len() as f64;
    format!(
        "Ablation — base model families at the 50% model (validation MAE, split panel)
  gbt (pseudo-huber)   {:>8.2}
  random-forest        {:>8.2}
  elastic-net          {:>8.2}
(the paper's M contains GBT and linear regression; the forest isolates what
boosting adds over bagging here)
",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
    )
}

/// Feature-catalog depth ablation: does descending one SWLIN level (the
/// extended 5810-feature catalog) beat the paper's 1490 subsystem-level
/// features? Evaluated with the paper's selection protocol at the 50%
/// model over the split panel.
pub fn feature_depth_ablation(ctx: &ModelingContext, config: &PipelineConfig) -> String {
    use domd_features::{static_matrix, FeatureCatalog, FeatureEngine};
    let mut out = String::from(
        "Ablation — feature catalog depth at the 50% model (validation MAE, split panel)
",
    );
    for (label, catalog) in [
        ("subsystem (1490 features)", FeatureCatalog::standard()),
        ("module    (5810 features)", FeatureCatalog::extended()),
    ] {
        let engine = FeatureEngine::new(catalog);
        let ids: Vec<domd_data::AvailId> =
            ctx.dataset.closed_avails().map(|a| a.id).collect();
        let tensor = engine.generate_tensor(&ctx.dataset, &ids, &[50.0]);
        let statics = static_matrix(&ctx.dataset, &ids);
        let row_of = |id: &domd_data::AvailId| tensor.row_of(*id).expect("closed avail");
        let mut total = 0.0;
        for split in &ctx.splits {
            let train_rows: Vec<usize> = split.train.iter().map(row_of).collect();
            let val_rows: Vec<usize> = split.validation.iter().map(row_of).collect();
            let delay = |rows: &[usize]| -> Vec<f64> {
                rows.iter()
                    .map(|&r| {
                        let id = tensor.avail_ids()[r];
                        f64::from(ctx.dataset.avail(id).unwrap().delay().expect("closed"))
                    })
                    .collect()
            };
            let y_train = delay(&train_rows);
            let y_val = delay(&val_rows);
            let slice_train = tensor.slice(0).select_rows(&train_rows);
            let slice_val = tensor.slice(0).select_rows(&val_rows);
            let selected = SelectionMethod::Pearson
                .select(&slice_train, &y_train, config.k, config.seed);
            let x_train =
                statics.select_rows(&train_rows).hstack(&slice_train.select_cols(&selected));
            let x_val = statics.select_rows(&val_rows).hstack(&slice_val.select_cols(&selected));
            let m = GbtModel::fit(&x_train, &y_train, &GbtParams {
                loss: Loss::PseudoHuber(18.0),
                seed: config.seed,
                ..config.gbt
            });
            total += domd_ml::mae(&y_val, &m.predict(&x_val));
        }
        out.push_str(&format!("  {label}  {:>8.2}
", total / ctx.splits.len() as f64));
    }
    out.push_str(
        "(both pick the same k; deeper groups only help if module-level spend carries
signal the subsystem totals hide)
",
    );
    out
}

/// Status Query latency as the GROUP BY descends the SWLIN hierarchy
/// (Figure 3 groups by `SWLIN_Level_no`): at depth `d` the workload runs
/// one aggregate query per (hierarchy node at depth d x status) over the
/// 11-step grid.
pub fn groupby_depth_ablation() -> String {
    groupby_depth_ablation_to(4)
}

/// As [`groupby_depth_ablation`] but stopping at `max_depth` (tests use a
/// shallow sweep; depth 4 alone runs ~300k queries).
pub fn groupby_depth_ablation_to(max_depth: u32) -> String {
    let ds = scaled_dataset(1);
    let projected = project_dataset(&ds);
    let engine = StatusQueryEngine::<AvlIndex>::build(&ds, &projected);
    let grid: Vec<f64> = (0..=10).map(|i| f64::from(i) * 10.0).collect();

    let mut out = String::from(
        "Ablation — Status Query latency vs SWLIN GROUP BY depth (AVL engine, 11-step grid)
 depth | groups |  queries | total ms | us/query
",
    );
    for depth in 1u32..=max_depth {
        // Enumerate the hierarchy nodes present in the data at this depth.
        let mut nodes = vec![(0u32, 0u32)]; // (prefix, len); start at root
        for _ in 0..depth {
            nodes = nodes
                .iter()
                .flat_map(|&(p, l)| {
                    engine.swlin_children(p, l).into_iter().map(move |c| (c, l + 1))
                })
                .collect();
        }
        let mut n_queries = 0usize;
        let ms = mean_time_ms(3, || {
            let mut acc = 0.0;
            for &t_star in &grid {
                for &(prefix, len) in &nodes {
                    for status in RccStatus::FEATURE_STATUSES {
                        let q = StatusQuery {
                            rcc_type: None,
                            swlin_prefix: Some((prefix, len)),
                            status,
                            t_star,
                        };
                        acc += engine.aggregate(&q).sum_amount;
                    }
                }
            }
            acc
        });
        n_queries += grid.len() * nodes.len() * 3;
        out.push_str(&format!(
            "{:>6} | {:>6} | {:>8} | {:>8.1} | {:>8.1}
",
            depth,
            nodes.len(),
            n_queries,
            ms,
            ms * 1e3 / n_queries as f64,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use domd_core::PipelineInputs;
    use domd_data::{generate, GeneratorConfig};

    fn tiny_ctx() -> ModelingContext {
        let dataset =
            generate(&GeneratorConfig { n_avails: 30, target_rccs: 2000, scale: 1, seed: 4 });
        let inputs = PipelineInputs::build(&dataset, 50.0);
        let splits = vec![dataset.split(1)];
        ModelingContext { dataset, inputs, splits }
    }

    fn tiny_cfg() -> PipelineConfig {
        let mut c = PipelineConfig::default0();
        c.gbt.n_estimators = 25;
        c.k = 6;
        c.grid_step = 50.0;
        c
    }

    #[test]
    fn fusion_ablation_lists_all_five() {
        let s = fusion_ablation(&tiny_ctx(), &tiny_cfg());
        for name in ["none", "min", "average", "median", "recency(0.7)"] {
            assert!(s.contains(name), "missing {name} in:\n{s}");
        }
    }

    #[test]
    fn delta_sweep_covers_paper_value() {
        let s = delta_sweep(&tiny_ctx(), &tiny_cfg());
        assert!(s.contains("delta =    18"));
        assert_eq!(s.matches("delta =").count(), 6);
    }

    #[test]
    fn groupby_depth_renders_requested_rows() {
        let s = groupby_depth_ablation_to(2);
        assert!(s.contains("depth"));
        assert_eq!(s.lines().count(), 2 + 2, "{s}");
    }

    #[test]
    fn incremental_ablation_reports_speedup() {
        // Only check the renderer at scale 1 via the public function would
        // regenerate the full dataset; keep it to a format check on a
        // stripped-down call.
        let s = incremental_ablation();
        assert!(s.contains("speedup"));
        assert!(s.contains("1x"));
    }
}
