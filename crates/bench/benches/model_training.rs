//! Criterion bench: base model training cost — one GBT fit and one
//! elastic-net fit at the pipeline's working shape (~150 rows x 68 cols),
//! plus the TPE suggestion loop. These dominate the wall-clock of the
//! greedy pipeline optimization (Tasks 2-6).

use criterion::{criterion_group, criterion_main, Criterion};
use domd_ml::{
    tpe_minimize, DenseMatrix, ElasticNetModel, ElasticNetParams, GbtModel, GbtParams, Loss,
    ParamDomain, ParamSpec, TpeConfig,
};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn training_data() -> (DenseMatrix, Vec<f64>) {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
    let n = 150;
    let p = 68;
    let rows: Vec<Vec<f64>> =
        (0..n).map(|_| (0..p).map(|_| rng.gen_range(-2.0..2.0)).collect()).collect();
    let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] + r[1] * r[2] + r[3].powi(2)).collect();
    (DenseMatrix::from_vec_of_rows(&rows), y)
}

fn bench_model_training(c: &mut Criterion) {
    let (x, y) = training_data();
    let mut group = c.benchmark_group("model_training");
    group.sample_size(10);
    group.bench_function("gbt_200_trees", |b| {
        let params = GbtParams { loss: Loss::PseudoHuber(18.0), ..Default::default() };
        b.iter(|| black_box(GbtModel::fit(&x, &y, &params)))
    });
    group.bench_function("elastic_net", |b| {
        let params = ElasticNetParams::default();
        b.iter(|| black_box(ElasticNetModel::fit(&x, &y, &params)))
    });
    group.bench_function("tpe_30_trials_cheap_objective", |b| {
        let specs = vec![
            ParamSpec { name: "a", domain: ParamDomain::Float { lo: -5.0, hi: 5.0, log: false } },
            ParamSpec { name: "b", domain: ParamDomain::Int { lo: 1, hi: 100 } },
        ];
        b.iter(|| {
            black_box(tpe_minimize(
                &specs,
                &TpeConfig { n_trials: 30, seed: 3, ..Default::default() },
                |p| (p[0] - 1.0).powi(2) + (p[1] - 42.0).abs(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_model_training);
criterion_main!(benches);
