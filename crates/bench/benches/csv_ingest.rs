//! Ingest-hardening overhead bench: strict CSV ingest vs. lenient ingest
//! (row-level quarantine checks) vs. lenient ingest plus the full semantic
//! validation pass, on a full extract at 1x scale.
//!
//! Hand-timed rather than criterion-driven: the comparison is a ratio of
//! multi-millisecond whole-file parses, so interleaved rounds over
//! `std::time::Instant` are plenty — and it keeps the bench runnable in
//! offline environments where criterion cannot be fetched. The variants
//! run round-robin within each round (not in per-variant blocks) so
//! machine-load drift lands on all three equally.

use domd_bench::util::{scaled_dataset, time_ms};
use domd_data::csv as nmd_csv;
use domd_data::read_dataset_lenient;
use std::hint::black_box;

fn main() {
    let ds = scaled_dataset(1);
    let avails = nmd_csv::write_avails(&ds);
    let rccs = nmd_csv::write_rccs(&ds);
    println!(
        "csv_ingest: {} avails, {} RCCs ({} KiB of extract text)",
        ds.avails().len(),
        ds.rccs().len(),
        (avails.len() + rccs.len()) / 1024
    );

    let strict = || black_box(nmd_csv::read_dataset(&avails, &rccs).expect("clean extract"));
    let lenient = || {
        let (ds, report) = read_dataset_lenient(&avails, &rccs).expect("headers intact");
        black_box(report.len());
        black_box(ds)
    };
    let lenient_validated = || {
        let (ds, report) = read_dataset_lenient(&avails, &rccs).expect("headers intact");
        black_box(report.len());
        black_box(ds.validate().counts());
        black_box(ds)
    };

    // Warm-up: fault the extract text into cache before timing anything.
    strict();
    lenient_validated();

    let rounds = 50;
    let mut totals = [0.0f64; 3];
    for _ in 0..rounds {
        totals[0] += time_ms(strict).1;
        totals[1] += time_ms(lenient).1;
        totals[2] += time_ms(lenient_validated).1;
    }
    let [t_strict, t_lenient, t_validated] = totals.map(|t| t / rounds as f64);

    let pct = |t: f64| (t / t_strict - 1.0) * 100.0;
    println!("strict ingest:                {t_strict:8.3} ms");
    println!(
        "lenient (quarantine checks):  {t_lenient:8.3} ms  ({:+.2}% vs strict)",
        pct(t_lenient)
    );
    println!(
        "lenient + Dataset::validate:  {t_validated:8.3} ms  ({:+.2}% vs strict)",
        pct(t_validated)
    );
}
