//! Criterion bench: index creation cost (Figure 5a / Table 6) — building
//! each of the three index designs over the 1x and 5x RCC tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domd_bench::util::scaled_dataset;
use domd_index::{project_dataset, AvlIndex, IntervalTreeIndex, LogicalTimeIndex, NaiveJoinIndex};
use std::hint::black_box;

fn bench_index_creation(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_creation");
    group.sample_size(10);
    for scale in [1u32, 5] {
        let ds = scaled_dataset(scale);
        let projected = project_dataset(&ds);
        group.bench_with_input(BenchmarkId::new("naive-join", scale), &projected, |b, p| {
            b.iter(|| black_box(NaiveJoinIndex::build_from_dataset(&ds, p)))
        });
        group.bench_with_input(BenchmarkId::new("interval-tree", scale), &projected, |b, p| {
            b.iter(|| black_box(IntervalTreeIndex::build(p)))
        });
        group.bench_with_input(BenchmarkId::new("avl", scale), &projected, |b, p| {
            b.iter(|| black_box(AvlIndex::build(p)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_creation);
criterion_main!(benches);
