//! Criterion bench: generating the 1490-feature tensor (Section 3.1's
//! transformation T) over the 11-point logical grid — the feature
//! engineering cost the Status Query machinery exists to keep low.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domd_data::{generate, AvailId, GeneratorConfig};
use domd_features::FeatureEngine;
use std::hint::black_box;

fn bench_feature_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_generation");
    group.sample_size(10);
    for n_avails in [50usize, 200] {
        let ds = generate(&GeneratorConfig {
            n_avails,
            target_rccs: n_avails * 265,
            scale: 1,
            seed: 1,
        });
        let ids: Vec<AvailId> = ds.avails().iter().map(|a| a.id).collect();
        let grid: Vec<f64> = (0..=10).map(|i| f64::from(i) * 10.0).collect();
        let engine = FeatureEngine::default();
        group.bench_with_input(BenchmarkId::new("tensor", n_avails), &(), |b, ()| {
            b.iter(|| black_box(engine.generate_tensor(&ds, &ids, &grid)))
        });
        group.bench_with_input(BenchmarkId::new("online-single-avail", n_avails), &(), |b, ()| {
            b.iter(|| black_box(engine.features_for_avail_at(&ds, ids[0], 50.0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_feature_generation);
criterion_main!(benches);
