//! Criterion bench: Status Query processing cost (Figure 5b) — the
//! 11-step timeline workload, per-step rescans (naive / interval tree)
//! against the incremental StatStructure sweep on the dual-AVL index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domd_bench::util::scaled_dataset;
use domd_index::{
    project_dataset, sweep_from_scratch, sweep_incremental, AvlIndex, IntervalTreeIndex,
    LogicalTimeIndex, NaiveJoinIndex, RowColumns,
};
use std::hint::black_box;

fn bench_query_processing(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_processing");
    group.sample_size(10);
    for scale in [1u32, 5] {
        let ds = scaled_dataset(scale);
        let projected = project_dataset(&ds);
        let amounts: Vec<f64> = ds.rccs().iter().map(|r| r.amount).collect();
        let durations: Vec<f64> =
            ds.rccs().iter().map(|r| f64::from(r.duration_days())).collect();
        let groups: Vec<usize> = ds
            .rccs()
            .iter()
            .map(|r| r.rcc_type.index() * 10 + r.swlin.digit(1) as usize)
            .collect();
        let cols = RowColumns { amounts: &amounts, durations: &durations, groups: &groups };
        let grid: Vec<f64> = (0..=10).map(|i| f64::from(i) * 10.0).collect();

        let naive = NaiveJoinIndex::build_from_dataset(&ds, &projected);
        group.bench_with_input(BenchmarkId::new("naive-rescan", scale), &(), |b, ()| {
            b.iter(|| black_box(sweep_from_scratch(&naive, cols, 30, &grid, |_, _, _| {})))
        });
        let itree = IntervalTreeIndex::build(&projected);
        group.bench_with_input(BenchmarkId::new("interval-rescan", scale), &(), |b, ()| {
            b.iter(|| black_box(sweep_from_scratch(&itree, cols, 30, &grid, |_, _, _| {})))
        });
        let avl = AvlIndex::build(&projected);
        group.bench_with_input(BenchmarkId::new("avl-incremental", scale), &(), |b, ()| {
            b.iter(|| black_box(sweep_incremental(&avl, cols, 30, &grid, |_, _, _| {})))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_processing);
criterion_main!(benches);
