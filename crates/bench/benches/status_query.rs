//! Criterion bench: Algorithm StatusQ latency for single queries — the
//! GROUP BY intersection plus index retrieval that the paper's Figure 3
//! query shape repeats throughout the pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domd_bench::util::scaled_dataset;
use domd_data::rcc::{RccStatus, RccType};
use domd_index::{project_dataset, AvlIndex, StatusQuery, StatusQueryEngine};
use std::hint::black_box;

fn bench_status_query(c: &mut Criterion) {
    let ds = scaled_dataset(1);
    let projected = project_dataset(&ds);
    let engine = StatusQueryEngine::<AvlIndex>::build(&ds, &projected);
    let mut group = c.benchmark_group("status_query");
    group.sample_size(20);

    let cases = [
        ("type-only", StatusQuery {
            rcc_type: Some(RccType::Growth),
            swlin_prefix: None,
            status: RccStatus::Settled,
            t_star: 50.0,
        }),
        ("subsystem-only", StatusQuery {
            rcc_type: None,
            swlin_prefix: Some((4, 1)),
            status: RccStatus::Active,
            t_star: 50.0,
        }),
        ("type-and-module", StatusQuery {
            rcc_type: Some(RccType::NewGrowth),
            swlin_prefix: Some((43, 2)),
            status: RccStatus::Created,
            t_star: 75.0,
        }),
        ("ungrouped", StatusQuery {
            rcc_type: None,
            swlin_prefix: None,
            status: RccStatus::Created,
            t_star: 100.0,
        }),
    ];
    for (name, q) in cases {
        group.bench_with_input(BenchmarkId::new("aggregate", name), &q, |b, q| {
            b.iter(|| black_box(engine.aggregate(q)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_status_query);
criterion_main!(benches);
